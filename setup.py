"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
the package can be installed in editable mode on environments whose
setuptools/pip combination lacks the ``wheel`` package required by the
PEP 517 editable path (``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
