#!/usr/bin/env python
"""Scaling study: regenerate the paper's Section-6 running-time table.

Two tables are produced:

* the calibrated analytic model's prediction for the paper's own workload
  (480 million items, 3-48 processors of a 400 MHz Origin), printed next to
  the paper's measured numbers;
* a measured table from the real implementation (thread backend) at a size
  that runs in seconds on a laptop, showing the same qualitative behaviour:
  an overhead factor of a few over the sequential reference and diminishing
  returns once the shared memory system saturates.

Run with::

    python examples/scaling_study.py
"""

from repro.bench.paper_claims import PAPER_CLAIMS
from repro.bench.scaling import (
    crossover_processors,
    format_scaling_rows,
    measured_scaling_table,
    overhead_factor,
    predicted_scaling_table,
)


def main() -> None:
    print("Paper workload, calibrated cost model (T1)")
    predicted = predicted_scaling_table()
    print(format_scaling_rows(predicted, seconds_key="predicted_seconds",
                              title="480e6 items on a 400 MHz Origin (model vs paper)"))
    print(f"\n  parallel overhead factor : {overhead_factor(predicted):.2f}  "
          f"(paper: {PAPER_CLAIMS['T1']['overhead_factor_range']})")
    print(f"  crossover processor count: {crossover_processors(predicted)}  "
          f"(paper: {PAPER_CLAIMS['T1']['crossover_processors']})")

    print("\nMeasured on this machine (thread backend, NumPy reference)")
    measured = measured_scaling_table(400_000, proc_counts=(2, 4, 8), repeats=1)
    print(format_scaling_rows(measured, seconds_key="measured_seconds",
                              title="400k int64 items, in-process"))
    print("\nNote: absolute times are not comparable to the paper's hardware;")
    print("the point of the reproduction is the shape (overhead factor and the")
    print("diminishing returns of the exchange phase).")


if __name__ == "__main__":
    main()
