#!/usr/bin/env python
"""Regenerate Figure 1 of the paper: a vector and a permuted copy on 6 processors.

The figure in the paper is schematic; here we produce the real thing -- an
unevenly block-distributed vector, its uniformly permuted copy, the
communication matrix that the permutation realised, and a small text
rendering of both layouts.

Run with::

    python examples/figure1_layout.py
"""

from repro.bench.figure1 import figure1_layout, render_layout
from repro.util.tables import format_table


def main() -> None:
    layout = figure1_layout(n_items=60, n_procs=6, seed=2003, uneven=True)

    print("Block sizes")
    print("  source m_i :", layout["source_sizes"].tolist())
    print("  target m'_j:", layout["target_sizes"].tolist())

    print("\nLayout (each cell shows a processor id)")
    print(render_layout(layout))

    matrix = layout["communication_matrix"]
    headers = ["from \\ to"] + [f"P{j}" for j in range(matrix.shape[1])]
    rows = [[f"P{i}"] + matrix[i].tolist() for i in range(matrix.shape[0])]
    print()
    print(format_table(headers, rows, title="Realised communication matrix a_ij"))

    print("\nEvery row sums to the source block size and every column to the")
    print("target block size -- equations (2) and (3) of the paper.")


if __name__ == "__main__":
    main()
