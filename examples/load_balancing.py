#!/usr/bin/env python
"""Load balancing: the paper's first motivating application.

A batch of work items arrives heavily skewed across the processors (the
first processor holds several times more items than the last) and the items
themselves have heavy-tailed costs.  Randomly permuting the items into a
balanced layout fixes both problems at once: every processor ends up with
the same number of items, and because the permutation is *uniform*, the
expensive items are spread evenly in expectation -- no adversarial or
accidental clustering survives.

Run with::

    python examples/load_balancing.py
"""

import numpy as np

from repro import PROMachine, permute_distributed
from repro.workloads.generators import load_balancing_scenario


def imbalance(per_processor_costs: list[float]) -> float:
    """Max/mean ratio of per-processor total cost (1.0 = perfectly balanced)."""
    values = np.asarray(per_processor_costs, dtype=float)
    return float(values.max() / values.mean())


def main() -> None:
    n_items, n_procs = 40_000, 8
    blocks, balanced_target = load_balancing_scenario(n_items, n_procs, skew=6.0, seed=42)

    print("Before redistribution")
    print("  items per processor:", [len(b) for b in blocks])
    costs_before = [float(np.sum(b)) for b in blocks]
    print("  cost per processor :", [f"{c:.0f}" for c in costs_before])
    print(f"  cost imbalance     : {imbalance(costs_before):.2f}x")

    machine = PROMachine(n_procs, seed=7)
    new_blocks, run = permute_distributed(blocks, machine=machine, target_sizes=balanced_target)

    print("\nAfter one uniform random permutation (Algorithm 1)")
    print("  items per processor:", [len(b) for b in new_blocks])
    costs_after = [float(np.sum(b)) for b in new_blocks]
    print("  cost per processor :", [f"{c:.0f}" for c in costs_after])
    print(f"  cost imbalance     : {imbalance(costs_after):.2f}x")

    print("\nResources consumed by the permutation (per processor maxima)")
    report = run.cost_report
    print(f"  words sent          : {report.max_over_ranks('words_sent')}")
    print(f"  compute operations  : {report.max_over_ranks('compute_ops')}")
    print(f"  supersteps          : {report.n_supersteps()}")

    assert imbalance(costs_after) < imbalance(costs_before)
    print("\nThe expensive items are now spread across all processors.")


if __name__ == "__main__":
    main()
