#!/usr/bin/env python
"""Quickstart: permute a vector uniformly at random on a coarse-grained machine.

Run with::

    python examples/quickstart.py

The example shows the three levels of the API:

1. the one-liner ``random_permutation`` for in-memory vectors,
2. the distributed form ``permute_distributed`` that keeps the data in
   per-processor blocks and reports per-processor resource usage,
3. the underlying communication matrix (Problem 2 of the paper) sampled on
   its own,
4. the pluggable execution backends: the same seed gives bit-identical
   results whether the ranks run inline, on threads or on real OS
   processes.
"""

import numpy as np

from repro import (
    PROMachine,
    permute_distributed,
    random_permutation,
    sample_communication_matrix,
)
from repro.core.blocks import BlockDistribution


def main() -> None:
    # ------------------------------------------------------------------ 1 --
    print("1) In-memory one-liner")
    data = np.arange(20)
    shuffled = random_permutation(data, n_procs=4, seed=2003)
    print("   input :", data.tolist())
    print("   output:", shuffled.tolist())
    assert sorted(shuffled.tolist()) == data.tolist()

    # ------------------------------------------------------------------ 2 --
    print("\n2) Distributed blocks with a reusable machine and cost report")
    machine = PROMachine(4, seed=7, count_random_variates=True)
    distribution = BlockDistribution.balanced(1_000, 4)
    blocks = [b.copy() for b in distribution.split(np.arange(1_000))]
    permuted_blocks, run = permute_distributed(blocks, machine=machine)
    print(f"   output block sizes: {[len(b) for b in permuted_blocks]}")
    print(f"   wall clock: {run.wall_clock_seconds * 1e3:.2f} ms")
    print(run.cost_report.summary_table())

    # ------------------------------------------------------------------ 3 --
    print("\n3) The communication matrix on its own (Problem 2)")
    matrix = sample_communication_matrix([250, 250, 250, 250], seed=11)
    print("   row sums   :", matrix.sum(axis=1).tolist())
    print("   column sums:", matrix.sum(axis=0).tolist())
    print(matrix)

    # ------------------------------------------------------------------ 4 --
    print("\n4) Execution backends: identical results for a fixed seed")
    for backend in ("thread", "process"):
        out = random_permutation(data, n_procs=4, backend=backend, seed=2003)
        print(f"   {backend:7s}: {out[:10].tolist()} ...")
        assert np.array_equal(out, shuffled), "backends must agree for one seed"


if __name__ == "__main__":
    main()
