#!/usr/bin/env python
"""External-memory permutation: the outlook of the paper, made concrete.

Section 6 of the paper suggests that the coarse-grained algorithm also pays
off out of core (and for cache efficiency): the blocks of the virtual
processors become disk blocks, and the all-to-all exchange becomes two
sequential passes.  This example permutes a vector stored block-by-block and
compares the number of block transfers against naive Fisher-Yates running
through a small cache -- the "cache misses of the straightforward algorithm"
the paper refers to.

Run with::

    python examples/external_memory.py
"""

import numpy as np

from repro.extmem import (
    MemoryBlockStore,
    external_random_permutation,
    naive_external_permutation,
)
from repro.util.tables import format_table


def run_case(n_items: int, block_size: int, cache_blocks: int, seed: int) -> list:
    source = MemoryBlockStore()
    source.load_vector(np.arange(n_items), block_size=block_size)
    source.io.reset()
    two_pass = external_random_permutation(source, MemoryBlockStore(), seed=seed)

    source2 = MemoryBlockStore()
    source2.load_vector(np.arange(n_items), block_size=block_size)
    source2.io.reset()
    naive = naive_external_permutation(source2, MemoryBlockStore(), cache_blocks=cache_blocks, seed=seed)

    return [
        n_items,
        n_items // block_size,
        two_pass.block_transfers,
        naive.block_transfers,
        f"{naive.block_transfers / max(two_pass.block_transfers, 1):.1f}x",
    ]


def main() -> None:
    rows = [
        run_case(2_000, 250, 2, seed=1),
        run_case(8_000, 500, 2, seed=2),
        run_case(20_000, 1_000, 4, seed=3),
    ]
    print(format_table(
        ["items", "blocks", "two-pass transfers", "naive transfers", "naive / two-pass"],
        rows,
        title="Block transfers: two-pass coarse-grained permutation vs naive Fisher-Yates",
    ))
    print("\nThe two-pass algorithm reads and writes every block a constant number")
    print("of times; the naive shuffle touches a random block per swap and loses")
    print("exactly the factor the paper attributes to the memory bottleneck.")


if __name__ == "__main__":
    main()
