#!/usr/bin/env python
"""Statistical permutation test driven by the coarse-grained shuffler.

The paper lists "statistical tests" and "good generation of random samples"
among the motivations for fast random permutations.  This example implements
a classic two-sample permutation test (is the difference of means between
treatment and control significant?) where the thousands of required
re-shufflings are produced by the parallel algorithm.

Run with::

    python examples/permutation_testing.py
"""

import numpy as np

from repro import PROMachine, random_permutation


def permutation_test(treatment: np.ndarray, control: np.ndarray, *, rounds: int, machine: PROMachine) -> float:
    """Two-sided p-value of the difference in means under label permutation."""
    pooled = np.concatenate([treatment, control])
    observed = abs(treatment.mean() - control.mean())
    n_treat = len(treatment)
    hits = 0
    for _ in range(rounds):
        shuffled = random_permutation(pooled, machine=machine)
        stat = abs(shuffled[:n_treat].mean() - shuffled[n_treat:].mean())
        if stat >= observed:
            hits += 1
    # add-one smoothing keeps the estimate away from an impossible p = 0
    return (hits + 1) / (rounds + 1)


def main() -> None:
    rng = np.random.default_rng(0)
    control = rng.normal(loc=10.0, scale=2.0, size=400)
    treatment_null = rng.normal(loc=10.0, scale=2.0, size=400)       # no effect
    treatment_effect = rng.normal(loc=10.4, scale=2.0, size=400)     # small real effect

    machine = PROMachine(4, seed=99)
    rounds = 400

    p_null = permutation_test(treatment_null, control, rounds=rounds, machine=machine)
    p_effect = permutation_test(treatment_effect, control, rounds=rounds, machine=machine)

    print(f"permutation rounds per test : {rounds}")
    print(f"p-value, no real effect     : {p_null:.3f}   (should be large)")
    print(f"p-value, +0.4 mean shift    : {p_effect:.3f}   (should be small)")

    assert p_null > 0.05
    assert p_effect < 0.05
    print("\nThe test keeps its level under the null and detects the real effect,")
    print("so the parallel shuffler is statistically sound enough to drive it.")


if __name__ == "__main__":
    main()
