"""Repository-level pytest configuration.

Ensures that ``src/`` is importable even when the package has not been
installed (e.g. on offline machines where ``pip install -e .`` cannot build
its editable wheel).  When the package *is* installed this is a harmless
no-op because the installed location takes precedence only if it appears
earlier on ``sys.path``; tests always exercise the checkout.

Also registers the suite's markers; select with ``pytest -m``:

``slow``
    Multi-second tests (statistical calibration, big sweeps, subprocess
    lifecycles).  CI runs ``-m "not slow"`` on every push and the full
    suite on the matrix job; the tier-1 command runs everything.
``subprocess``
    Tests that spawn OS processes (the process backend, worker pools,
    ``-W error`` leak checks) -- the ones to skip in environments where
    fork/spawn is restricted.
``sim``
    Deterministic-simulation tests (``tests/simulation/``): schedule
    sweeps and fault injection on the sim backend.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: multi-second test; excluded from the fast CI set (-m 'not slow')"
    )
    config.addinivalue_line(
        "markers", "subprocess: spawns OS processes (process backend, pools, -W error checks)"
    )
    config.addinivalue_line(
        "markers", "sim: deterministic-simulation suite (schedule sweeps, fault injection)"
    )
