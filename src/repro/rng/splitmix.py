"""SplitMix64: a tiny, exactly reproducible pseudo-random generator.

Some tests and micro-benchmarks need a generator whose output is identical
bit-for-bit across NumPy versions and platforms (NumPy's bit generators are
stable too, but their *jumped*/spawned streams and the float conversion have
changed across releases in the past).  SplitMix64 (Steele, Lea & Flood 2014)
is the 64-bit finaliser-based generator used to seed xoshiro/xoroshiro
families; it passes BigCrush when used on its own for the modest amounts of
randomness the tests draw.

This is *not* the generator used for production sampling -- that is NumPy's
PCG64 through :mod:`repro.rng.streams` -- it exists so that "given seed S,
the k-th variate equals X" style regression tests stay valid forever.
"""

from __future__ import annotations

from repro.util.validation import check_nonnegative_int

__all__ = ["SplitMix64"]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


class SplitMix64:
    """A 64-bit SplitMix generator with a NumPy-free, pure-Python core.

    Parameters
    ----------
    seed:
        Non-negative integer seed (values >= 2**64 are reduced modulo 2**64).

    Examples
    --------
    >>> rng = SplitMix64(0)
    >>> hex(rng.next_uint64())
    '0xe220a8397b1dcdaf'
    """

    def __init__(self, seed: int = 0):
        seed = check_nonnegative_int(seed, "seed")
        self._state = seed & _MASK64
        self.draws = 0

    def next_uint64(self) -> int:
        """Return the next 64-bit unsigned integer."""
        self._state = (self._state + _GOLDEN_GAMMA) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        z = z ^ (z >> 31)
        self.draws += 1
        return z

    def random(self) -> float:
        """Return a uniform float in [0, 1) with 53 bits of precision."""
        return (self.next_uint64() >> 11) * (1.0 / (1 << 53))

    def integers(self, low: int, high: int) -> int:
        """Return a uniform integer in ``[low, high)`` by rejection (unbiased)."""
        if high <= low:
            raise ValueError(f"integers() requires high > low, got [{low}, {high})")
        span = high - low
        # Rejection sampling over the largest multiple of span below 2**64.
        limit = (1 << 64) - ((1 << 64) % span)
        while True:
            x = self.next_uint64()
            if x < limit:
                return low + (x % span)

    def shuffle(self, items) -> None:
        """In-place Fisher-Yates shuffle using this generator."""
        n = len(items)
        for i in range(n - 1, 0, -1):
            j = self.integers(0, i + 1)
            items[i], items[j] = items[j], items[i]

    def spawn(self) -> "SplitMix64":
        """Derive a child generator (uses one draw of this generator as seed)."""
        return SplitMix64(self.next_uint64())
