"""A ``Generator`` wrapper that counts consumed random variates.

The paper measures the efficiency of hypergeometric sampling in terms of the
number of uniform random numbers consumed per sample (Section 6: "the amount
of random numbers per sample of h(,) was always less than 1.5 on average and
10 for the worst case").  :class:`CountingRNG` makes that measurement a
one-liner: wrap any NumPy ``Generator``, run the sampler, read
``rng.uniforms_drawn``.

Only the small surface of the ``Generator`` API used by this library is
exposed; each method forwards to the wrapped generator and increments the
counters by the number of variates produced.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["CountingRNG"]


def _size_to_count(size) -> int:
    """Number of scalar variates implied by a NumPy ``size`` argument."""
    if size is None:
        return 1
    if np.isscalar(size):
        return int(size)
    return int(np.prod(size))


class CountingRNG:
    """Wrap a NumPy ``Generator`` and count the variates drawn through it.

    Attributes
    ----------
    uniforms_drawn:
        Number of scalar uniform(0,1) variates produced by :meth:`random`.
    integers_drawn:
        Number of scalar integer variates produced by :meth:`integers`.
    calls:
        Total number of method calls (regardless of the vector size).

    Notes
    -----
    The wrapper also forwards ``permutation``/``shuffle``/``hypergeometric``
    so it can be used as a drop-in replacement for a plain generator inside
    the library.  A Fisher-Yates shuffle of ``k`` items is charged ``k - 1``
    integer variates, the textbook count.
    """

    def __init__(self, generator: np.random.Generator | int | None = None):
        if generator is None or isinstance(generator, (int, np.integer)):
            generator = np.random.default_rng(generator)
        if not isinstance(generator, np.random.Generator):
            raise ValidationError(
                f"CountingRNG wraps a numpy Generator or a seed, got {type(generator).__name__}"
            )
        self._generator = generator
        self.uniforms_drawn = 0
        self.integers_drawn = 0
        self.calls = 0

    # -- counters ---------------------------------------------------------
    @property
    def total_variates(self) -> int:
        """Total scalar variates of any kind drawn through the wrapper."""
        return self.uniforms_drawn + self.integers_drawn

    def reset(self) -> None:
        """Zero all counters (the underlying stream state is untouched)."""
        self.uniforms_drawn = 0
        self.integers_drawn = 0
        self.calls = 0

    # -- forwarded sampling methods ---------------------------------------
    @property
    def generator(self) -> np.random.Generator:
        """The wrapped NumPy generator."""
        return self._generator

    def random(self, size=None):
        """Uniform variates on [0, 1); counts ``size`` scalars."""
        self.calls += 1
        self.uniforms_drawn += _size_to_count(size)
        return self._generator.random(size)

    def integers(self, low, high=None, size=None, **kwargs):
        """Integer variates; counts ``size`` scalars."""
        self.calls += 1
        self.integers_drawn += _size_to_count(size)
        return self._generator.integers(low, high, size=size, **kwargs)

    def permutation(self, x):
        """Uniform random permutation; charged ``len(x) - 1`` integer variates."""
        self.calls += 1
        n = int(x) if np.isscalar(x) else len(x)
        self.integers_drawn += max(n - 1, 0)
        return self._generator.permutation(x)

    def shuffle(self, x):
        """In-place shuffle; charged ``len(x) - 1`` integer variates."""
        self.calls += 1
        self.integers_drawn += max(len(x) - 1, 0)
        self._generator.shuffle(x)

    def hypergeometric(self, ngood, nbad, nsample, size=None):
        """NumPy's hypergeometric sampler (oracle and batched-kernel path).

        Charged one uniform per scalar sample drawn -- always the broadcast
        size of the call: with ``size=None`` the broadcast shape of the
        three parameter arrays (the vectorized form the batched engine
        kernels and ``SamplerEngine.draw_many`` use), with an explicit
        ``size`` the broadcast of that shape with the parameters.  The true
        uniform consumption of the library's own scalar samplers is what
        :mod:`repro.core.hypergeometric` reports.
        """
        self.calls += 1
        param_shape = np.broadcast(
            np.asarray(ngood), np.asarray(nbad), np.asarray(nsample)
        ).shape
        if size is None:
            shape = param_shape
        elif np.isscalar(size):
            shape = np.broadcast_shapes(param_shape, (int(size),))
        else:
            shape = np.broadcast_shapes(param_shape, tuple(size))
        self.uniforms_drawn += int(np.prod(shape, dtype=np.int64)) if shape else 1
        return self._generator.hypergeometric(ngood, nbad, nsample, size)
