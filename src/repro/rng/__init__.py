"""Random-number substrate.

The paper's complexity statements charge the algorithms for every random
variate they consume ("random numbers" are one of the four resources in
Theorem 1), and Section 6 reports *how many* uniform variates each
hypergeometric sample costs (< 1.5 on average, <= 10 worst case).  To be able
to reproduce those measurements this subpackage provides

* :class:`~repro.rng.streams.StreamFactory` -- reproducible, statistically
  independent per-processor streams obtained by spawning a NumPy
  ``SeedSequence`` (one child per virtual processor), plus helpers to create
  a whole family of streams from a single user seed;
* :class:`~repro.rng.counting.CountingRNG` -- a thin wrapper around a NumPy
  ``Generator`` that counts every uniform variate handed to the caller, so
  samplers can report their exact random-number consumption;
* :class:`~repro.rng.splitmix.SplitMix64` -- a tiny, pure-Python, exactly
  reproducible generator used by tests that need bit-level determinism
  independent of the NumPy version.
"""

from repro.rng.streams import StreamFactory, spawn_streams, default_rng
from repro.rng.counting import CountingRNG
from repro.rng.splitmix import SplitMix64

__all__ = [
    "StreamFactory",
    "spawn_streams",
    "default_rng",
    "CountingRNG",
    "SplitMix64",
]
