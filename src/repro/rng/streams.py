"""Reproducible independent random streams for the virtual processors.

A coarse-grained algorithm runs the *same* program on every processor but
each processor must draw from its own, statistically independent stream --
otherwise processors would produce correlated "random" choices and the
uniformity proof of the paper breaks down.  NumPy's ``SeedSequence`` spawning
mechanism provides exactly this: a single user-facing seed is expanded into
an arbitrary number of child sequences with strong inter-stream independence
guarantees.

The :class:`StreamFactory` also hands out *named* streams (e.g. the stream
used by the root to sample the communication matrix) so that experiments stay
reproducible even when the set of participating processors changes.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError
from repro.util.validation import check_positive_int

__all__ = ["StreamFactory", "spawn_streams", "default_rng"]


def default_rng(seed=None) -> np.random.Generator:
    """Return a NumPy ``Generator``.

    Accepts the same seed types as :func:`numpy.random.default_rng` plus an
    already-constructed ``Generator`` (returned unchanged), which lets every
    public function of the library take ``seed-or-generator`` arguments.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class StreamFactory:
    """Factory of independent per-processor random streams.

    Parameters
    ----------
    seed:
        Anything acceptable to ``numpy.random.SeedSequence`` (``None`` gives
        OS entropy).  Factories constructed from the same seed produce the
        same streams in the same order.

    Examples
    --------
    >>> factory = StreamFactory(seed=42)
    >>> streams = factory.processor_streams(4)
    >>> len(streams)
    4
    >>> factory2 = StreamFactory(seed=42)
    >>> all(
    ...     np.array_equal(a.integers(0, 100, 5), b.integers(0, 100, 5))
    ...     for a, b in zip(streams, factory2.processor_streams(4))
    ... )
    True
    """

    def __init__(self, seed=None):
        if isinstance(seed, np.random.SeedSequence):
            self._seed_sequence = seed
        else:
            self._seed_sequence = np.random.SeedSequence(seed)
        self._spawned = 0

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """The root ``SeedSequence`` this factory spawns children from."""
        return self._seed_sequence

    def spawn(self, count: int) -> list[np.random.SeedSequence]:
        """Spawn ``count`` fresh child seed sequences (never reused)."""
        count = check_positive_int(count, "count")
        children = self._seed_sequence.spawn(count)
        self._spawned += count
        return children

    def processor_streams(self, n_procs: int, *, bit_generator=np.random.PCG64) -> list[np.random.Generator]:
        """Create one independent ``Generator`` per virtual processor.

        The streams are derived deterministically from the factory seed and
        the processor index, so re-running a parallel program with the same
        seed and the same number of processors reproduces the exact same
        permutation.
        """
        n_procs = check_positive_int(n_procs, "n_procs")
        children = self._seed_sequence.spawn(n_procs)
        return self.streams_from_children(children, bit_generator=bit_generator)

    @staticmethod
    def streams_from_children(
        children, *, bit_generator=np.random.PCG64
    ) -> list[np.random.Generator]:
        """Rebuild the generators :meth:`processor_streams` makes of ``children``.

        ``SeedSequence`` children are immutable, so building generators from
        them any number of times yields identical streams.  This is the
        replay hook of the resilience layer: the machine spawns the children
        *once* per ``run()`` call and rebuilds fresh, unadvanced generators
        from them for every retry attempt, which is what makes a retried
        epoch bit-identical to an unfailed one.
        """
        return [np.random.Generator(bit_generator(child)) for child in children]

    def named_stream(self, name: str, *, bit_generator=np.random.PCG64) -> np.random.Generator:
        """Create a stream keyed by a stable name (e.g. ``"matrix-root"``).

        Named streams are independent of the per-processor streams and of
        each other as long as the names differ.
        """
        if not isinstance(name, str) or not name:
            raise ValidationError(f"stream name must be a non-empty string, got {name!r}")
        # Derive entropy from the name in a stable way.
        name_words = np.frombuffer(name.encode("utf-8").ljust(4, b"\0"), dtype=np.uint8)
        extra = [int(x) for x in name_words]
        child = np.random.SeedSequence(
            entropy=self._seed_sequence.entropy,
            spawn_key=(*self._seed_sequence.spawn_key, 0xFEED, *extra),
        )
        return np.random.Generator(bit_generator(child))


def spawn_streams(seed, n_procs: int) -> list[np.random.Generator]:
    """Convenience wrapper: ``StreamFactory(seed).processor_streams(n_procs)``."""
    return StreamFactory(seed).processor_streams(n_procs)
