"""The paper's reported numbers and qualitative claims, in one place.

Keeping them as data (rather than scattering literals through the
benchmarks) lets every benchmark print a paper-vs-measured table from the
same source and lets ``EXPERIMENTS.md`` stay consistent with the code.
"""

from __future__ import annotations

#: Section 6: running times for permuting 480 million items on a 400 MHz SGI
#: Origin.  Key ``0`` denotes the sequential run.
PAPER_TABLE1_SECONDS: dict[int, float] = {
    0: 137.0,   # sequential
    3: 210.0,
    6: 107.0,
    12: 72.9,
    24: 60.9,
    48: 53.2,
}

#: Number of items of the Section 6 experiments.
PAPER_TABLE1_N_ITEMS: int = 480_000_000

#: Qualitative claims, keyed by experiment id (see DESIGN.md).
PAPER_CLAIMS: dict[str, dict] = {
    "T1": {
        "statement": "Parallel overhead factor 3-5 over sequential; speed-up beyond ~6 processors and continued gains up to 48.",
        "overhead_factor_range": (3.0, 5.0),
        "crossover_processors": 6,
        "table_seconds": PAPER_TABLE1_SECONDS,
        "n_items": PAPER_TABLE1_N_ITEMS,
    },
    "E2": {
        "statement": "Random numbers per h(,) sample: always < 1.5 on average, <= 10 worst case.",
        "mean_uniforms_max": 1.5,
        "worst_case_uniforms": 10,
    },
    "E3": {
        "statement": "Sequential matrix sampling costs O(p^2) operations and O(p^2) h(,) calls (Proposition 7 / Theorem 2).",
        "exponent": 2.0,
    },
    "E4": {
        "statement": "Algorithm 5 costs Theta(p log p) per processor, Algorithm 6 Theta(p) per processor (Propositions 8 and 9).",
    },
    "E5": {
        "statement": "Sequential permutation costs 60-100 cycles per item; 33%-80% of the wall clock is the CPU-memory bottleneck.",
        "cycles_per_item_range": (60.0, 100.0),
    },
    "E6": {
        "statement": "No prior coarse-grained method is simultaneously uniform, work-optimal and balanced: sorting pays a log n factor, iterating pays a log p factor, rejection loses work-optimality.",
    },
    "E7": {
        "statement": "Algorithm 1 with a matrix drawn per Problem 2 samples permutations uniformly (Theorem 1, Propositions 1-2).",
    },
    "F1": {
        "statement": "Figure 1: a vector and a permuted copy distributed on 6 processors.",
        "n_processors": 6,
    },
}
