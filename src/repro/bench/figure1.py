"""Figure F1: a vector and a permuted copy distributed on 6 processors.

Figure 1 of the paper is an illustration: a vector ``v`` laid out in blocks
``m_1 ... m_6`` over processors ``P_1 ... P_6`` and the permuted copy ``v'``
distributed alike.  The driver here regenerates the underlying data -- the
block boundaries of source and target and, for every item, which processor
it started on and which one it ended on -- and renders it as a small text
figure.  The same data feeds the ``examples/figure1_layout.py`` example.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import BlockDistribution
from repro.core.permutation import permute_distributed
from repro.pro.machine import PROMachine
from repro.util.validation import check_positive_int

__all__ = ["figure1_layout", "render_layout"]


def figure1_layout(
    n_items: int = 60,
    n_procs: int = 6,
    *,
    seed=2003,
    uneven: bool = True,
) -> dict:
    """Regenerate the data behind Figure 1.

    Returns a dictionary with the source block sizes, the target block
    sizes, the per-item source processor of every slot of the permuted
    vector, and the communication matrix implied by the permutation (how
    many items moved from each source block to each target block).
    """
    n_items = check_positive_int(n_items, "n_items")
    n_procs = check_positive_int(n_procs, "n_procs")
    if uneven:
        distribution = BlockDistribution.random_uneven(n_items, n_procs, seed=seed, min_size=max(1, n_items // (3 * n_procs)))
    else:
        distribution = BlockDistribution.balanced(n_items, n_procs)

    # Tag every item with its source processor so the destination layout can
    # be read off the permuted blocks directly.
    source_tags = np.concatenate([
        np.full(int(size), proc, dtype=np.int64) for proc, size in enumerate(distribution.sizes)
    ]) if n_items else np.empty(0, dtype=np.int64)
    blocks = distribution.split(source_tags)

    machine = PROMachine(n_procs, seed=seed)
    permuted_blocks, run = permute_distributed(blocks, machine=machine)

    realized_matrix = np.zeros((n_procs, n_procs), dtype=np.int64)
    for target_proc, block in enumerate(permuted_blocks):
        for source_proc in np.asarray(block, dtype=np.int64):
            realized_matrix[source_proc, target_proc] += 1

    return {
        "source_sizes": distribution.sizes.copy(),
        "target_sizes": np.asarray([len(b) for b in permuted_blocks], dtype=np.int64),
        "permuted_blocks": [np.asarray(b, dtype=np.int64) for b in permuted_blocks],
        "communication_matrix": realized_matrix,
        "cost_report": run.cost_report,
    }


def render_layout(layout: dict, *, max_width: int = 100) -> str:
    """Render the Figure-1 data as a small two-row text figure.

    The first row shows the source vector ``v`` (each cell printed as the id
    of the processor holding it -- trivially its own block), the second row
    the permuted copy ``v'`` (each cell printed as the processor the item
    *came from*), with block boundaries marked by ``|``.
    """
    def row(blocks_sizes, labels):
        cells = []
        idx = 0
        for size in blocks_sizes:
            cells.append("".join(str(int(labels[idx + k]) % 10) for k in range(int(size))))
            idx += int(size)
        return "|" + "|".join(cells) + "|"

    source_sizes = layout["source_sizes"]
    source_labels = np.concatenate([
        np.full(int(size), proc) for proc, size in enumerate(source_sizes)
    ]) if int(np.sum(source_sizes)) else np.empty(0, dtype=np.int64)
    target_labels = np.concatenate(layout["permuted_blocks"]) if layout["permuted_blocks"] else np.empty(0, dtype=np.int64)

    lines = [
        "v  (cell = owning processor): " + row(source_sizes, source_labels),
        "v' (cell = source processor): " + row(layout["target_sizes"], target_labels),
    ]
    return "\n".join(line[:max_width] for line in lines)
