"""Experiment E2: uniform variates consumed per hypergeometric sample.

Section 6 of the paper: "the amount of random numbers per sample of h(,)
was always less than 1.5 on average and 10 for the worst case."  The
measurement is taken *in the context of matrix sampling*: the parameter
regimes that actually occur when Algorithm 2/3 peels the marginals (many
tiny or forced draws, occasionally a large one).  The driver here reruns the
matrix sampler with a counting generator and an active
:class:`~repro.core.hypergeometric.SampleRecorder`, then reports the same
two statistics.
"""

from __future__ import annotations

import numpy as np

from repro.core import commmatrix
from repro.core.hypergeometric import SampleRecorder
from repro.rng.counting import CountingRNG
from repro.workloads.generators import matrix_marginals
from repro.util.validation import check_positive_int

__all__ = ["uniforms_per_h_call"]


def uniforms_per_h_call(
    n_procs: int = 16,
    items_per_proc: int = 10_000,
    *,
    n_matrices: int = 20,
    layout: str = "balanced",
    method: str = "auto",
    strategy: str = "sequential",
    seed=12345,
) -> dict:
    """Measure mean/worst uniforms per ``h(,)`` call during matrix sampling.

    Parameters
    ----------
    n_procs, items_per_proc, layout:
        Shape of the marginal vectors (see
        :func:`repro.workloads.generators.matrix_marginals`).
    n_matrices:
        Number of matrices sampled; all their ``h(,)`` calls are pooled.
    method:
        Hypergeometric sampling method (``"auto"`` reproduces the paper's
        regime; ``"hrua"`` forces the rejection sampler everywhere, which is
        the ablation showing why the automatic dispatch matters).
    strategy:
        ``"sequential"`` (Algorithm 3) or ``"recursive"`` (Algorithm 4).

    Returns
    -------
    dict with ``n_calls``, ``mean_uniforms``, ``max_uniforms``,
    ``total_uniforms`` and the parameters used.
    """
    n_procs = check_positive_int(n_procs, "n_procs")
    items_per_proc = check_positive_int(items_per_proc, "items_per_proc")
    n_matrices = check_positive_int(n_matrices, "n_matrices")

    rows, cols = matrix_marginals(n_procs, items_per_proc, layout=layout, seed=seed)
    rng = CountingRNG(np.random.default_rng(seed))
    recorder = SampleRecorder()
    with recorder:
        for _ in range(n_matrices):
            commmatrix.sample_matrix(rows, cols, rng, method=method, strategy=strategy)
    return {
        "n_procs": n_procs,
        "items_per_proc": items_per_proc,
        "layout": layout,
        "method": method,
        "strategy": strategy,
        "n_matrices": n_matrices,
        "n_calls": recorder.n_calls,
        "total_uniforms": recorder.total_uniforms,
        "mean_uniforms": recorder.mean_uniforms,
        "max_uniforms": recorder.max_uniforms,
    }
