"""Benchmark harness shared by ``benchmarks/`` and ``EXPERIMENTS.md``.

Each experiment of the paper (see the experiment index in ``DESIGN.md``) has
a driver here that produces plain data structures; the pytest-benchmark
targets under ``benchmarks/`` call these drivers, time what is meaningful to
time and print the paper-vs-measured tables.

Modules
-------
:mod:`repro.bench.harness`
    Timing helpers and record/report formatting.
:mod:`repro.bench.paper_claims`
    The numbers and qualitative claims extracted from the paper.
:mod:`repro.bench.scaling`
    Experiment T1 -- the scaling table (sequential vs p = 3..48).
:mod:`repro.bench.randoms`
    Experiment E2 -- uniform variates consumed per hypergeometric sample.
:mod:`repro.bench.figure1`
    Figure F1 -- the block-layout illustration.
"""

from repro.bench.harness import BenchRecord, measure_seconds, paper_vs_measured_table
from repro.bench.paper_claims import PAPER_CLAIMS, PAPER_TABLE1_SECONDS, PAPER_TABLE1_N_ITEMS
from repro.bench.scaling import (
    OriginScalingModel,
    ORIGIN_SCALING_MODEL,
    predicted_scaling_table,
    measured_scaling_table,
)
from repro.bench.randoms import uniforms_per_h_call
from repro.bench.figure1 import figure1_layout, render_layout

__all__ = [
    "BenchRecord",
    "measure_seconds",
    "paper_vs_measured_table",
    "PAPER_CLAIMS",
    "PAPER_TABLE1_SECONDS",
    "PAPER_TABLE1_N_ITEMS",
    "OriginScalingModel",
    "ORIGIN_SCALING_MODEL",
    "predicted_scaling_table",
    "measured_scaling_table",
    "uniforms_per_h_call",
    "figure1_layout",
    "render_layout",
]
