"""Experiment T1: the scaling table of Section 6.

The paper reports wall-clock times for permuting 480 million ``long int``'s
on a 400 MHz SGI Origin with 1-48 processors.  We do not have that machine,
so the experiment is reproduced at two levels (see the substitution table in
``DESIGN.md``):

1. **Calibrated analytic model** (:class:`OriginScalingModel`).  Algorithm 1
   does, per processor, two local shuffles of ``n/p`` items, one all-to-all
   exchange of ``n/p`` items and an ``O(p^2)`` matrix computation; on a
   shared-memory machine the exchange is limited by the aggregate memory
   bandwidth, which stops scaling beyond a few processors (the paper:
   "the main limitation ... is the communication phase, even when executed
   on a shared memory machine").  The model has exactly these terms.  Its
   constants are calibrated from two numbers of the paper (the sequential
   time and the 3-processor time); all the other entries of the table are
   *predictions* to be compared against the paper's measurements.

2. **Measured in-process runs** (:func:`measured_scaling_table`).  The real
   code path (thread backend) is timed for sizes that fit in a laptop run,
   demonstrating that the implementation's relative behaviour -- overhead
   factor over sequential, diminishing returns with p -- matches the model
   and the paper qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.fisher_yates import sequential_permutation
from repro.bench.harness import measure_seconds
from repro.bench.paper_claims import PAPER_TABLE1_N_ITEMS, PAPER_TABLE1_SECONDS
from repro.core.permutation import random_permutation
from repro.pro.machine import PROMachine
from repro.rng.streams import default_rng
from repro.util.errors import ValidationError
from repro.util.tables import format_table
from repro.util.validation import check_positive_int

__all__ = [
    "OriginScalingModel",
    "ORIGIN_SCALING_MODEL",
    "predicted_scaling_table",
    "measured_scaling_table",
    "overhead_factor",
    "crossover_processors",
]


@dataclass(frozen=True)
class OriginScalingModel:
    """Analytic running-time model of Algorithm 1 on a bandwidth-limited machine.

    Attributes
    ----------
    seconds_per_item_sequential:
        Per-item cost of the sequential reference permutation.
    seconds_per_item_shuffle:
        Per-item cost of one *local* shuffle inside the parallel algorithm
        (same order of magnitude as the sequential cost; the algorithm does
        two of them).
    seconds_per_item_exchange:
        Per-item cost of the all-to-all data exchange at full (single
        processor) memory bandwidth.
    memory_saturation:
        Number of processors beyond which the aggregate exchange bandwidth
        stops improving (shared-memory contention).
    seconds_per_matrix_entry:
        Cost per entry of the O(p^2) communication-matrix computation.
    """

    seconds_per_item_sequential: float
    seconds_per_item_shuffle: float
    seconds_per_item_exchange: float
    memory_saturation: float
    seconds_per_matrix_entry: float = 2.0e-6

    def sequential_time(self, n_items: int) -> float:
        """Predicted sequential permutation time."""
        return n_items * self.seconds_per_item_sequential

    def parallel_time(self, n_items: int, n_procs: int) -> float:
        """Predicted Algorithm 1 time on ``n_procs`` processors."""
        n_procs = check_positive_int(n_procs, "n_procs")
        per_proc = n_items / n_procs
        shuffle = 2.0 * per_proc * self.seconds_per_item_shuffle
        effective_bandwidth_procs = min(float(n_procs), self.memory_saturation)
        exchange = n_items * self.seconds_per_item_exchange / effective_bandwidth_procs
        matrix = (n_procs ** 2) * self.seconds_per_matrix_entry
        return shuffle + exchange + matrix

    def speedup(self, n_items: int, n_procs: int) -> float:
        """Predicted speed-up over the sequential reference."""
        return self.sequential_time(n_items) / self.parallel_time(n_items, n_procs)


def _calibrate_origin_model() -> OriginScalingModel:
    """Calibrate the model from the paper's sequential and 3-processor times.

    * ``T_seq = 137 s`` for 480e6 items fixes the sequential per-item cost.
    * The local shuffles inside the parallel algorithm are assumed to cost
      the same per item as the sequential shuffle (they are the same code).
    * The remaining budget of the 3-processor run (210 s) is attributed to
      the exchange; the asymptote of the paper's table (the times flatten
      around ~50 s at 24-48 processors) fixes the bandwidth saturation.
    """
    n = PAPER_TABLE1_N_ITEMS
    seq_per_item = PAPER_TABLE1_SECONDS[0] / n           # ~0.285 us/item
    shuffle_per_item = seq_per_item
    # Exchange budget at p=3: total minus the two local shuffles.
    t3 = PAPER_TABLE1_SECONDS[3]
    exchange_budget = t3 - 2.0 * (n / 3) * shuffle_per_item
    # At p=3 the exchange runs at min(3, s) ~ 3 effective processors.
    exchange_per_item = exchange_budget * 3.0 / n
    # The large-p plateau of the paper's table is ~50 s; the plateau of the
    # model is n * exchange_per_item / s.
    plateau = 45.0
    saturation = n * exchange_per_item / plateau
    return OriginScalingModel(
        seconds_per_item_sequential=seq_per_item,
        seconds_per_item_shuffle=shuffle_per_item,
        seconds_per_item_exchange=exchange_per_item,
        memory_saturation=saturation,
    )


#: Model calibrated against the paper's own numbers (see DESIGN.md, experiment T1).
ORIGIN_SCALING_MODEL = _calibrate_origin_model()


def predicted_scaling_table(
    n_items: int = PAPER_TABLE1_N_ITEMS,
    proc_counts: Sequence[int] = (3, 6, 12, 24, 48),
    model: OriginScalingModel = ORIGIN_SCALING_MODEL,
) -> list[dict]:
    """Model-predicted version of the paper's scaling table.

    Returns one row per entry: the sequential row (``n_procs=0`` in the
    paper's convention of "sequential"), then one row per processor count,
    each with the model prediction, the paper's measurement (when the
    parameters match the paper's run) and the speed-up.
    """
    rows = [{
        "n_procs": 0,
        "predicted_seconds": model.sequential_time(n_items),
        "paper_seconds": PAPER_TABLE1_SECONDS.get(0) if n_items == PAPER_TABLE1_N_ITEMS else None,
        "speedup": 1.0,
    }]
    for p in proc_counts:
        predicted = model.parallel_time(n_items, p)
        rows.append({
            "n_procs": int(p),
            "predicted_seconds": predicted,
            "paper_seconds": PAPER_TABLE1_SECONDS.get(int(p)) if n_items == PAPER_TABLE1_N_ITEMS else None,
            "speedup": model.sequential_time(n_items) / predicted,
        })
    return rows


def measured_scaling_table(
    n_items: int,
    proc_counts: Sequence[int] = (2, 4, 8),
    *,
    seed=0,
    repeats: int = 1,
    matrix_algorithm: str = "root",
    backend: str = "thread",
    transport: str | None = None,
) -> list[dict]:
    """Measured scaling of the real implementation on ``backend``.

    The sequential reference is NumPy's compiled Fisher-Yates
    (``Generator.permutation``), the same reference the PRO analysis uses.
    With the default thread backend the ranks share one memory system and
    one GIL for the non-NumPy parts, so like the paper's shared-memory runs
    the exchange does not scale linearly -- which is exactly the effect T1
    documents; the process backend removes the GIL from the equation at the
    price of per-run process start-up and serialised exchanges.
    """
    n_items = check_positive_int(n_items, "n_items")
    rng = default_rng(seed)
    data = np.arange(n_items, dtype=np.int64)

    seq = measure_seconds(sequential_permutation, data, rng, repeats=repeats)
    rows = [{
        "n_procs": 0,
        "measured_seconds": seq["best_seconds"],
        "speedup": 1.0,
    }]
    for p in proc_counts:
        p = check_positive_int(p, "proc count")
        options = {} if transport is None else {"transport": transport}
        machine = PROMachine(p, seed=seed, backend=backend, backend_options=options)

        def run_once():
            return random_permutation(
                data, n_procs=p, machine=machine, matrix_algorithm=matrix_algorithm
            )

        res = measure_seconds(run_once, repeats=repeats)
        rows.append({
            "n_procs": p,
            "measured_seconds": res["best_seconds"],
            "speedup": seq["best_seconds"] / res["best_seconds"],
        })
    return rows


def overhead_factor(rows: Sequence[dict], *, seconds_key: str = "predicted_seconds") -> float:
    """Parallel overhead factor: total parallel work at the smallest p versus sequential.

    Computed as ``p * T(p) / T_seq`` at the smallest parallel processor
    count in the table -- the quantity the paper brackets between 3 and 5.
    """
    sequential = next(r for r in rows if r["n_procs"] == 0)[seconds_key]
    parallel_rows = [r for r in rows if r["n_procs"] > 0]
    if not parallel_rows:
        raise ValidationError("the table has no parallel rows")
    smallest = min(parallel_rows, key=lambda r: r["n_procs"])
    return smallest["n_procs"] * smallest[seconds_key] / sequential


def crossover_processors(rows: Sequence[dict], *, seconds_key: str = "predicted_seconds") -> int | None:
    """Smallest processor count whose time beats the sequential reference (None if never)."""
    sequential = next(r for r in rows if r["n_procs"] == 0)[seconds_key]
    for row in sorted((r for r in rows if r["n_procs"] > 0), key=lambda r: r["n_procs"]):
        if row[seconds_key] < sequential:
            return int(row["n_procs"])
    return None


def format_scaling_rows(rows: Sequence[dict], *, seconds_key: str, title: str) -> str:
    """Pretty-print a scaling table (used by the benchmark and the examples)."""
    headers = ["processors", "seconds", "speedup", "paper seconds"]
    out_rows = []
    for row in rows:
        out_rows.append([
            "seq" if row["n_procs"] == 0 else row["n_procs"],
            row[seconds_key],
            row.get("speedup", ""),
            row.get("paper_seconds", "") if row.get("paper_seconds") is not None else "",
        ])
    return format_table(headers, out_rows, title=title)
