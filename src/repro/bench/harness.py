"""Timing helpers and report formatting for the benchmark drivers."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.util.tables import format_markdown_table, format_table
from repro.util.validation import check_positive_int

__all__ = ["measure_seconds", "BenchRecord", "paper_vs_measured_table"]


def measure_seconds(fn: Callable, *args, repeats: int = 3, **kwargs) -> dict:
    """Run ``fn(*args, **kwargs)`` ``repeats`` times; report best/mean seconds.

    The *best* time is the right statistic for throughput comparisons (it is
    the least noisy estimator of the cost without interference); the mean is
    reported as well for context.
    """
    repeats = check_positive_int(repeats, "repeats")
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        times.append(time.perf_counter() - start)
    return {
        "best_seconds": min(times),
        "mean_seconds": sum(times) / len(times),
        "repeats": repeats,
        "result": result,
    }


@dataclass
class BenchRecord:
    """One row of a paper-vs-measured comparison."""

    label: str
    paper_value: object
    measured_value: object
    unit: str = ""
    note: str = ""

    def as_row(self) -> list:
        return [self.label, self.paper_value, self.measured_value, self.unit, self.note]


def paper_vs_measured_table(
    records: Iterable[BenchRecord],
    *,
    title: str | None = None,
    markdown: bool = False,
) -> str:
    """Render a list of :class:`BenchRecord` as an aligned (or Markdown) table."""
    headers = ["quantity", "paper", "measured", "unit", "note"]
    rows = [rec.as_row() for rec in records]
    if markdown:
        return format_markdown_table(headers, rows)
    return format_table(headers, rows, title=title)
