"""Interconnect topology models.

The PRO model charges communication by the number of words crossing the
point-to-point network, with the constant depending on the bandwidth of the
interconnect.  To let the analytic time model distinguish a shared-memory
Origin-style machine (essentially fully connected, uniform latency) from a
cluster with a structured network, the machine can be configured with one of
the topologies below.  Each topology answers two questions:

* ``hops(src, dst)`` -- how many links does a message traverse, and
* ``bisection_width()`` -- how many links cross a balanced cut, which bounds
  the throughput of all-to-all phases such as the data exchange of
  Algorithm 1.

The topologies are purely analytic devices; messages are always delivered
regardless of topology (the thread backend is a full crossbar), only the
*predicted* time changes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.util.errors import ValidationError
from repro.util.validation import check_positive_int

__all__ = [
    "Topology",
    "FullyConnected",
    "Ring",
    "Mesh2D",
    "Hypercube",
    "topology_from_name",
]


class Topology(ABC):
    """Abstract interconnect with ``n_nodes`` processors."""

    def __init__(self, n_nodes: int):
        self.n_nodes = check_positive_int(n_nodes, "n_nodes")

    def _check_node(self, node: int, name: str) -> int:
        node = int(node)
        if not (0 <= node < self.n_nodes):
            raise ValidationError(f"{name} must be in [0, {self.n_nodes}), got {node}")
        return node

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of links a message from ``src`` to ``dst`` traverses."""

    @abstractmethod
    def bisection_width(self) -> int:
        """Number of links crossing a balanced bipartition of the nodes."""

    def diameter(self) -> int:
        """Maximum hop distance between any two nodes."""
        return max(
            self.hops(src, dst)
            for src in range(self.n_nodes)
            for dst in range(self.n_nodes)
        )

    def average_hops(self) -> float:
        """Average hop distance over ordered pairs of distinct nodes."""
        if self.n_nodes == 1:
            return 0.0
        total = sum(
            self.hops(src, dst)
            for src in range(self.n_nodes)
            for dst in range(self.n_nodes)
            if src != dst
        )
        return total / (self.n_nodes * (self.n_nodes - 1))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(n_nodes={self.n_nodes})"


class FullyConnected(Topology):
    """Every pair of processors is directly linked (crossbar / shared memory).

    This is the topology that matches the paper's experimental platforms
    (shared-memory Origin, SMP nodes): one hop between any two distinct
    processors and a bisection width of ``(p/2)**2`` links.
    """

    def hops(self, src: int, dst: int) -> int:
        src = self._check_node(src, "src")
        dst = self._check_node(dst, "dst")
        return 0 if src == dst else 1

    def bisection_width(self) -> int:
        half = self.n_nodes // 2
        return max(1, half * (self.n_nodes - half))


class Ring(Topology):
    """A bidirectional ring; messages take the shorter way around."""

    def hops(self, src: int, dst: int) -> int:
        src = self._check_node(src, "src")
        dst = self._check_node(dst, "dst")
        clockwise = (dst - src) % self.n_nodes
        return min(clockwise, self.n_nodes - clockwise)

    def bisection_width(self) -> int:
        return 2 if self.n_nodes > 2 else 1


class Mesh2D(Topology):
    """A (nearly) square 2-D mesh without wrap-around links.

    Nodes are numbered row-major on a ``rows x cols`` grid with
    ``rows = floor(sqrt(p))`` and ``cols = ceil(p / rows)``; the last row may
    be partially filled.
    """

    def __init__(self, n_nodes: int):
        super().__init__(n_nodes)
        self.rows = max(1, int(np.floor(np.sqrt(self.n_nodes))))
        self.cols = int(np.ceil(self.n_nodes / self.rows))

    def _coords(self, node: int) -> tuple[int, int]:
        return divmod(node, self.cols)

    def hops(self, src: int, dst: int) -> int:
        src = self._check_node(src, "src")
        dst = self._check_node(dst, "dst")
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def bisection_width(self) -> int:
        # Cutting the mesh across the longer dimension severs ~min(rows, cols) links.
        return max(1, min(self.rows, self.cols))


class Hypercube(Topology):
    """A binary hypercube; requires ``n_nodes`` to be a power of two."""

    def __init__(self, n_nodes: int):
        super().__init__(n_nodes)
        if n_nodes & (n_nodes - 1):
            raise ValidationError(f"Hypercube requires a power-of-two node count, got {n_nodes}")
        self.dimension = int(n_nodes).bit_length() - 1

    def hops(self, src: int, dst: int) -> int:
        src = self._check_node(src, "src")
        dst = self._check_node(dst, "dst")
        return int(bin(src ^ dst).count("1"))

    def bisection_width(self) -> int:
        return max(1, self.n_nodes // 2)


_NAMES = {
    "fully-connected": FullyConnected,
    "full": FullyConnected,
    "crossbar": FullyConnected,
    "ring": Ring,
    "mesh": Mesh2D,
    "mesh2d": Mesh2D,
    "hypercube": Hypercube,
}


def topology_from_name(name: str, n_nodes: int) -> Topology:
    """Build a topology by name: ``fully-connected``, ``ring``, ``mesh``, ``hypercube``."""
    key = name.strip().lower()
    if key not in _NAMES:
        raise ValidationError(f"unknown topology {name!r}; choose from {sorted(set(_NAMES))}")
    return _NAMES[key](n_nodes)
