"""Message passing between virtual processors.

The communicator offers an MPI-like interface (``send``/``recv`` plus the
usual collectives) but runs entirely in-process: messages travel through
per-destination mailboxes owned by a :class:`MessageFabric` that the backend
shares among all ranks of one machine run.

Two design points matter for faithfulness to the paper:

* **Cost accounting.**  Every payload word that crosses the communicator is
  recorded in the sending and receiving processor's
  :class:`~repro.pro.cost.CostRecorder`, so the bandwidth term of Theorem 1
  can be checked experimentally, including for the collectives (which are
  built from point-to-point messages, e.g. binomial trees for broadcast and
  reduce -- the extra words of the tree construction are charged to whoever
  sends them).

* **Non-blocking sends.**  Sends never block (mailboxes are unbounded), so
  the irregular all-to-all exchange of Algorithm 1 and the head-to-head
  messages of Algorithms 5/6 can be written in the natural order without
  deadlock, exactly as Proposition 1 assumes ("if the send and receive
  operations are done without blocking, the communication phase stays
  balanced").
"""

from __future__ import annotations

import queue
import threading
from operator import add
from typing import Any, Callable, Sequence

import numpy as np

from repro.pro.cost import CostRecorder
from repro.util.errors import CommunicationError, ValidationError, attach_wait_context

__all__ = ["MessageFabric", "Communicator", "payload_words"]


def payload_words(obj: Any) -> int:
    """Estimate the payload size of ``obj`` in machine words.

    NumPy arrays count one word per element, scalars one word, strings and
    byte strings one word per 8 characters, containers the sum of their
    elements.  The estimate is used purely for cost accounting; it does not
    affect message delivery.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.size)
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 1
    if isinstance(obj, (bytes, bytearray, str)):
        return max(1, (len(obj) + 7) // 8)
    if isinstance(obj, dict):
        return sum(payload_words(v) for v in obj.values()) + len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(payload_words(v) for v in obj)
    return 1


#: Sentinel tag deposited in every mailbox by :meth:`MessageFabric.abort` so
#: ranks blocked in a receive fail fast instead of waiting out the timeout.
#: An ``object()`` cannot collide with user tags, and the fabric is rebuilt
#: per attempt, so a pill never leaks into a later run.
_ABORT = object()


class MessageFabric:
    """Shared mailboxes and barrier for the ranks of one machine run."""

    def __init__(self, n_procs: int, *, timeout: float = 60.0):
        if n_procs < 1:
            raise ValidationError(f"n_procs must be >= 1, got {n_procs}")
        self.n_procs = n_procs
        self.timeout = timeout
        # _queues[dst][src] holds (tag, payload) tuples in sending order.
        self._queues = [
            [queue.SimpleQueue() for _ in range(n_procs)] for _ in range(n_procs)
        ]
        self._barrier = threading.Barrier(n_procs)

    def put(self, src: int, dst: int, tag, payload) -> None:
        """Deposit a message; never blocks."""
        self._queues[dst][src].put((tag, payload))

    def get(self, src: int, dst: int, tag, pending: list) -> Any:
        """Fetch the next message from ``src`` to ``dst`` carrying ``tag``.

        Messages with other tags that arrive first are parked in ``pending``
        (owned by the receiving communicator) and served to later receives.
        """
        for idx, (msg_tag, payload) in enumerate(pending):
            if msg_tag == tag:
                pending.pop(idx)
                return payload
        q = self._queues[dst][src]
        deadline = self.timeout
        while True:
            try:
                msg_tag, payload = q.get(timeout=deadline)
            except queue.Empty:
                raise attach_wait_context(
                    CommunicationError(
                        f"rank {dst} timed out after {self.timeout}s waiting for a message "
                        f"from rank {src} with tag {tag!r}"
                    ),
                    rank=dst, op="recv", src=src,
                ) from None
            if msg_tag is _ABORT:
                raise attach_wait_context(
                    CommunicationError(
                        f"rank {dst} abandoned a receive from rank {src}: "
                        "the run was aborted after a rank failure"
                    ),
                    rank=dst, op="recv", src=src,
                ) from None
            if msg_tag == tag:
                return payload
            pending.append((msg_tag, payload))

    def barrier_wait(self) -> None:
        """Block until all ranks reach the barrier."""
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            # The fabric does not know which rank is waiting; the
            # communicator's barrier() attaches the rank on the way out.
            raise attach_wait_context(
                CommunicationError(
                    f"barrier broken or timed out after {self.timeout}s "
                    "(a rank likely crashed or deadlocked)"
                ),
                op="barrier",
            ) from None

    def abort(self) -> None:
        """Make surviving ranks fail fast after a crash.

        Breaks the barrier and poisons every mailbox so ranks blocked in a
        receive abandon the wait immediately instead of burning the fabric
        timeout (the parent cannot join the run -- or start a recovery
        attempt -- until every rank thread has returned).
        """
        self._barrier.abort()
        for dst in range(self.n_procs):
            for src in range(self.n_procs):
                self._queues[dst][src].put((_ABORT, None))


class Communicator:
    """Point-to-point and collective communication for one rank.

    Parameters
    ----------
    fabric:
        The shared :class:`MessageFabric` of the run.
    rank:
        This processor's id in ``[0, size)``.
    cost:
        Optional :class:`CostRecorder`; when given, every word sent and
        received is recorded there.
    """

    def __init__(self, fabric: MessageFabric, rank: int, cost: CostRecorder | None = None):
        self._fabric = fabric
        self._rank = int(rank)
        self._cost = cost
        self._pending: list[list] = [[] for _ in range(fabric.n_procs)]
        self._collective_seq = 0

    # -- identity -----------------------------------------------------------
    @property
    def rank(self) -> int:
        """This processor's id."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of processors in the communicator."""
        return self._fabric.n_procs

    # -- internal helpers -----------------------------------------------------
    def _check_rank(self, other: int, name: str) -> int:
        other = int(other)
        if not (0 <= other < self.size):
            raise ValidationError(f"{name} must be in [0, {self.size}), got {other}")
        return other

    def _record_send(self, obj) -> None:
        if self._cost is not None:
            self._cost.record_send(payload_words(obj))

    def _record_receive(self, obj) -> None:
        if self._cost is not None:
            self._cost.record_receive(payload_words(obj))

    def _send_raw(self, obj, dest: int, tag) -> None:
        if dest == self._rank:
            # self-message still goes through the mailbox so recv() finds it,
            # but it is not charged as communication.
            self._fabric.put(self._rank, dest, tag, obj)
            return
        self._record_send(obj)
        self._fabric.put(self._rank, dest, tag, obj)

    def _recv_raw(self, source: int, tag):
        obj = self._fabric.get(source, self._rank, tag, self._pending[source])
        if source != self._rank:
            self._record_receive(obj)
        return obj

    def _collective_tag(self, opname: str):
        # All ranks execute the same sequence of collectives, so a shared
        # counter keeps concurrent collectives from mixing their messages.
        tag = ("__collective__", opname, self._collective_seq)
        self._collective_seq += 1
        return tag

    # -- point-to-point --------------------------------------------------------
    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to ``dest``; returns immediately (buffered)."""
        dest = self._check_rank(dest, "dest")
        self._send_raw(obj, dest, ("__p2p__", tag))

    def recv(self, source: int, tag: int = 0):
        """Receive the next message from ``source`` with matching ``tag``."""
        source = self._check_rank(source, "source")
        return self._recv_raw(source, ("__p2p__", tag))

    def sendrecv(self, obj, dest: int, source: int, send_tag: int = 0, recv_tag: int = 0):
        """Send to ``dest`` and receive from ``source`` (deadlock free)."""
        self.send(obj, dest, send_tag)
        return self.recv(source, recv_tag)

    # -- synchronisation --------------------------------------------------------
    def barrier(self) -> None:
        """Block until every rank has called :meth:`barrier`.

        Also closes the current superstep in the cost recorder so that
        BSP-style per-superstep analyses line up across ranks.
        """
        try:
            self._fabric.barrier_wait()
        except CommunicationError as exc:
            # Fabrics are rank-agnostic; stamp who was waiting (and make it
            # visible in the message) before the error leaves the rank.
            if getattr(exc, "rank", None) is None and exc.args:
                exc.args = (f"{exc.args[0]} [rank {self._rank} was waiting]",)
            raise attach_wait_context(exc, rank=self._rank, op="barrier") from None
        if self._cost is not None:
            self._cost.next_superstep()

    # -- collectives -------------------------------------------------------------
    def bcast(self, obj=None, root: int = 0):
        """Broadcast ``obj`` from ``root`` to every rank (binomial tree)."""
        root = self._check_rank(root, "root")
        p = self.size
        tag = self._collective_tag("bcast")
        if p == 1:
            return obj
        vrank = (self._rank - root) % p
        if vrank != 0:
            lowest = vrank & -vrank
            src = ((vrank ^ lowest) + root) % p
            obj = self._recv_raw(src, tag)
            child_mask = lowest >> 1
        else:
            mask = 1
            while mask < p:
                mask <<= 1
            child_mask = mask >> 1
        while child_mask >= 1:
            child = vrank | child_mask
            if child < p and child != vrank:
                self._send_raw(obj, (child + root) % p, tag)
            child_mask >>= 1
        return obj

    def reduce(self, value, op: Callable = add, root: int = 0):
        """Reduce ``value`` across ranks with ``op``; result only on ``root``."""
        root = self._check_rank(root, "root")
        p = self.size
        tag = self._collective_tag("reduce")
        if p == 1:
            return value
        vrank = (self._rank - root) % p
        acc = value
        mask = 1
        while mask < p:
            if (vrank & (mask - 1)) == 0:
                if vrank & mask:
                    parent = ((vrank ^ mask) + root) % p
                    self._send_raw(acc, parent, tag)
                    break
                child = vrank | mask
                if child < p:
                    acc = op(acc, self._recv_raw((child + root) % p, tag))
            mask <<= 1
        return acc if self._rank == root else None

    def allreduce(self, value, op: Callable = add):
        """Reduce across all ranks and broadcast the result to everyone."""
        reduced = self.reduce(value, op=op, root=0)
        return self.bcast(reduced, root=0)

    def gather(self, obj, root: int = 0):
        """Gather one object per rank into a list at ``root`` (None elsewhere)."""
        root = self._check_rank(root, "root")
        tag = self._collective_tag("gather")
        if self._rank != root:
            self._send_raw(obj, root, tag)
            return None
        out = [None] * self.size
        out[root] = obj
        for src in range(self.size):
            if src != root:
                out[src] = self._recv_raw(src, tag)
        return out

    def allgather(self, obj) -> list:
        """Gather one object per rank and deliver the full list to every rank."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, objs: Sequence | None, root: int = 0):
        """Scatter ``objs[i]`` from ``root`` to rank ``i``; returns the local item."""
        root = self._check_rank(root, "root")
        tag = self._collective_tag("scatter")
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise ValidationError(
                    f"scatter at root needs a sequence of length {self.size}, got "
                    f"{None if objs is None else len(objs)}"
                )
            local = objs[root]
            for dst in range(self.size):
                if dst != root:
                    self._send_raw(objs[dst], dst, tag)
            return local
        return self._recv_raw(root, tag)

    def alltoall(self, objs: Sequence) -> list:
        """Exchange ``objs[j]`` with every rank ``j``; return one object per source."""
        if len(objs) != self.size:
            raise ValidationError(
                f"alltoall needs exactly {self.size} payloads, got {len(objs)}"
            )
        tag = self._collective_tag("alltoall")
        out = [None] * self.size
        for dst in range(self.size):
            if dst == self._rank:
                out[dst] = objs[dst]
            else:
                self._send_raw(objs[dst], dst, tag)
        for src in range(self.size):
            if src != self._rank:
                out[src] = self._recv_raw(src, tag)
        return out

    def alltoallv(self, arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
        """All-to-all exchange of NumPy arrays of varying lengths.

        ``arrays[j]`` is sent to rank ``j``; the return value is a list whose
        ``i``-th entry is the array received from rank ``i``.  This is the
        primitive behind the data-exchange superstep of Algorithm 1.
        """
        if len(arrays) != self.size:
            raise ValidationError(
                f"alltoallv needs exactly {self.size} arrays, got {len(arrays)}"
            )
        converted = [np.asarray(a) for a in arrays]
        return self.alltoall(converted)

    def scan(self, value, op: Callable = add, *, inclusive: bool = True):
        """Prefix reduction across ranks ordered by rank id.

        With ``inclusive=True`` rank ``i`` receives ``op(value_0, ..., value_i)``;
        with ``inclusive=False`` rank 0 receives ``None`` and rank ``i > 0``
        receives the reduction of ranks ``0..i-1``.
        """
        gathered = self.allgather(value)
        if inclusive:
            acc = gathered[0]
            for i in range(1, self._rank + 1):
                acc = op(acc, gathered[i])
            return acc
        if self._rank == 0:
            return None
        acc = gathered[0]
        for i in range(1, self._rank):
            acc = op(acc, gathered[i])
        return acc
