"""Fleet-wide observability: repatriated telemetry and structured run events.

Per-rank transport counters, adaptive-ring geometry, kernel-tier choices,
pool lifecycle and resilience events all *exist* somewhere in the fleet --
but most of them are born inside worker processes and would die there.
This module repatriates them along the same path the cost contract already
guarantees for RNG accounting:

* **Per-rank data rides the CostRecorder.**  Workers on out-of-address-space
  backends snapshot their transport counters and sender-ring geometry onto
  ``ctx.cost.telemetry`` (see :func:`capture_rank_telemetry`) just before
  the result record is queued, so the existing ``(payload, cost, variates)``
  result tuple carries them to the parent with no wire-format change.
* **Parent-side events go to a process-wide log.**  The pool supervisor and
  the resilience layer call :func:`record_event` when a fleet is spawned,
  healed, poisoned or evicted, when an attempt is retried or degraded, and
  when a deadline clamps a timeout.  Events carry a monotonic ``seq`` so a
  run can be attributed the window of events observed while it executed.
* **The machine merges both into a** :class:`FleetReport`.  Pass a
  :class:`Telemetry` recorder as ``telemetry=`` to
  :class:`~repro.pro.machine.PROMachine`, ``resolve_machine`` or any driver
  and every ``run()`` appends one report with a stable :meth:`~FleetReport.to_dict`
  JSON schema and a human :meth:`~FleetReport.summary`.

Collection is passive: it never touches the per-rank random streams, so a
fixed seed is bit-identical with telemetry on or off (guarded by
``tests/unit/test_telemetry.py``), and the warm-dispatch overhead is gated
at <= 1.05x in ``benchmarks/check_bench_regression.py``.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Any

__all__ = [
    "Telemetry",
    "FleetReport",
    "TRANSPORT_COUNTERS",
    "RING_FIELDS",
    "EVENT_KINDS",
    "record_event",
    "event_seq",
    "events_since",
    "capture_rank_telemetry",
    "zeroed_transport_stats",
]

#: Counter names of one rank's transport section -- kept in lockstep with
#: ``TransportStats.__slots__`` (asserted by the unit tests).  Backends whose
#: ranks share the parent's address space (inline/thread/sim) have no
#: per-rank transport, so their section is *zeroed*, never omitted.
TRANSPORT_COUNTERS = (
    "encode_calls",
    "shared_encode_calls",
    "decode_calls",
    "segments_created",
    "multi_segments_created",
    "ring_messages",
    "oversize_fallbacks",
    "bytes_encoded",
)

#: Geometry fields of one rank's adaptive sender ring (``None`` when the
#: rank never opened a ring -- pickle transport, or payloads below the
#: shared-memory threshold).
RING_FIELDS = (
    "capacity",
    "max_capacity",
    "min_capacity",
    "resizes",
    "wraps",
    "reclaimed_bytes",
    "epoch_demand",
    "epoch_fallbacks",
)

#: The structured event taxonomy (every ``record_event`` kind in the tree).
EVENT_KINDS = (
    "pool-spawn",
    "pool-heal",
    "pool-poison",
    "pool-evict",
    "pool-close",
    "retry",
    "degraded",
    "deadline-clamp",
    "explore-start",
    "explore-divergence",
    "explore-shrink",
)

# Process-wide structured event log.  Bounded so long-lived services cannot
# leak; windowed by sequence number, so concurrent machines each attribute
# the events observed during their own run (documented as process-wide:
# two overlapping runs both see a heal that happened while both ran).
_EVENT_LOG: deque = deque(maxlen=512)
_EVENT_LOCK = threading.Lock()
_EVENT_SEQ = 0


def record_event(kind: str, **fields: Any) -> int:
    """Append one structured event to the process-wide log; returns its seq.

    ``kind`` is one of :data:`EVENT_KINDS`; ``fields`` are JSON-safe
    scalars/lists (epoch stamps, rank lists, backend names).  Emission is
    unconditional and cheap -- a dict append under a lock on lifecycle
    paths only, never per message.
    """
    global _EVENT_SEQ
    with _EVENT_LOCK:
        seq = _EVENT_SEQ
        _EVENT_SEQ += 1
        _EVENT_LOG.append({"seq": seq, "kind": str(kind), **fields})
        return seq


def event_seq() -> int:
    """The sequence number the *next* event will receive (a window anchor)."""
    with _EVENT_LOCK:
        return _EVENT_SEQ


def events_since(seq: int) -> list[dict]:
    """Copies of every logged event with ``seq >= seq``, oldest first."""
    with _EVENT_LOCK:
        return [dict(event) for event in _EVENT_LOG if event["seq"] >= seq]


def zeroed_transport_stats() -> dict:
    """An all-zero transport section (in-address-space ranks report this)."""
    return {name: 0 for name in TRANSPORT_COUNTERS}


def _ring_geometry(ring: Any) -> dict:
    return {name: int(getattr(ring, name, 0)) for name in RING_FIELDS}


def capture_rank_telemetry(fabric: Any, rank: int) -> dict | None:
    """Snapshot one worker rank's transport counters and ring geometry.

    Called by the process-backend workers (one-shot and pool) right before
    the result record is queued; the returned blob is attached to
    ``ctx.cost.telemetry`` so it repatriates through the existing result
    tuple.  Returns ``None`` for fabrics without a payload transport (the
    in-process fabrics), in which case the parent reports zeroed counters.
    """
    transport = getattr(fabric, "transport", None)
    stats = getattr(transport, "stats", None)
    if stats is None:
        return None
    blob: dict = {"transport": dict(stats.snapshot()), "ring": None}
    ring_names = getattr(fabric, "_ring_names", None)
    if ring_names:
        try:
            from repro.pro.backends.sharedmem import _SENDER_RINGS

            ring = _SENDER_RINGS.get((os.getpid(), ring_names[rank]))
        except Exception:  # pragma: no cover - sharedmem tier unavailable
            ring = None
        if ring is not None:
            blob["ring"] = _ring_geometry(ring)
    return blob


class FleetReport:
    """One run's merged observability view: per-rank counters plus events.

    Built by the machine after every telemetry-enabled ``run()``; the JSON
    shape of :meth:`to_dict` is versioned by :data:`FleetReport.SCHEMA` and
    documented in ``docs/observability.md``.

    Examples
    --------
    >>> report = FleetReport(backend="thread", n_procs=1,
    ...                      ranks=[{"rank": 0, "transport": zeroed_transport_stats(),
    ...                              "ring": None, "kernel_tier": None,
    ...                              "kernel_warmup_seconds": 0.0}])
    >>> sorted(report.to_dict())
    ['backend', 'events', 'n_procs', 'parent_transport', 'ranks', 'resilience', 'schema', 'transport', 'wall_clock_seconds']
    >>> report.to_dict()["ranks"][0]["transport"]["encode_calls"]
    0
    """

    #: Version stamp of the ``to_dict()`` JSON shape; bump on breaking change.
    SCHEMA = 1

    def __init__(
        self,
        *,
        backend: str,
        n_procs: int,
        transport: str | None = None,
        wall_clock_seconds: float = 0.0,
        ranks: list[dict] | None = None,
        parent_transport: dict | None = None,
        resilience: dict | None = None,
        events: list[dict] | None = None,
    ):
        self.backend = backend
        self.transport = transport
        self.n_procs = int(n_procs)
        self.wall_clock_seconds = float(wall_clock_seconds)
        self.ranks = list(ranks or [])
        self.parent_transport = dict(parent_transport or zeroed_transport_stats())
        self.resilience = dict(
            resilience
            or {"retries": 0, "recovery_seconds": 0.0, "degraded_to": None}
        )
        self.events = list(events or [])

    @classmethod
    def from_run(cls, machine: Any, result: Any, events: list[dict]) -> "FleetReport":
        """Merge one :class:`~repro.pro.machine.RunResult` into a report."""
        backend = machine.backend
        transport = getattr(backend, "transport", None)
        stats = getattr(transport, "stats", None)
        report = result.cost_report
        ranks = []
        for recorder in report.recorders:
            blob = getattr(recorder, "telemetry", None) or {}
            ranks.append({
                "rank": recorder.rank,
                "transport": dict(blob.get("transport") or zeroed_transport_stats()),
                "ring": blob.get("ring"),
                "kernel_tier": recorder.kernel_tier,
                "kernel_warmup_seconds": recorder.kernel_warmup_seconds,
            })
        return cls(
            backend=str(getattr(backend, "name", type(backend).__name__)),
            transport=getattr(transport, "name", None)
            if transport is not None else "in-process",
            n_procs=result.n_procs,
            wall_clock_seconds=result.wall_clock_seconds,
            ranks=ranks,
            parent_transport=dict(stats.snapshot()) if stats is not None
            else zeroed_transport_stats(),
            resilience={
                "retries": report.retries,
                "recovery_seconds": report.recovery_seconds,
                "degraded_to": report.degraded_to,
            },
            events=events,
        )

    def to_dict(self) -> dict:
        """The stable, JSON-serialisable shape of this report."""
        return {
            "schema": self.SCHEMA,
            "backend": self.backend,
            "transport": self.transport,
            "n_procs": self.n_procs,
            "wall_clock_seconds": self.wall_clock_seconds,
            "ranks": [dict(rank) for rank in self.ranks],
            "parent_transport": dict(self.parent_transport),
            "resilience": dict(self.resilience),
            "events": [dict(event) for event in self.events],
        }

    # -- human rendering -----------------------------------------------------
    def summary(self) -> str:
        """Human-readable fleet summary (the one formatting path the CLI uses)."""
        transport = self.transport or "in-process"
        lines = [
            f"fleet report: backend={self.backend} transport={transport} "
            f"p={self.n_procs} wall={self.wall_clock_seconds * 1e3:.1f}ms"
        ]
        for rank in self.ranks:
            tier = rank.get("kernel_tier")
            if tier is None:
                lines.append(f"rank {rank['rank']}: kernel tier not recorded")
            else:
                warmup = float(rank.get("kernel_warmup_seconds") or 0.0)
                lines.append(
                    f"rank {rank['rank']}: kernel tier {tier} "
                    f"(JIT warm-up {warmup * 1e3:.1f} ms)"
                )
            stats = rank.get("transport") or {}
            lines.append(
                f"rank {rank['rank']}: transport "
                f"{stats.get('encode_calls', 0)} encodes / "
                f"{stats.get('decode_calls', 0)} decodes / "
                f"{stats.get('ring_messages', 0)} ring messages / "
                f"{stats.get('oversize_fallbacks', 0)} fallbacks"
            )
            ring = rank.get("ring")
            if ring:
                lines.append(
                    f"rank {rank['rank']}: ring capacity {ring['capacity']} B "
                    f"(resizes {ring['resizes']}, wraps {ring['wraps']}, "
                    f"epoch fallbacks {ring['epoch_fallbacks']})"
                )
        retries = self.resilience.get("retries", 0)
        if retries:
            degraded = self.resilience.get("degraded_to")
            line = (f"resilience: {retries} failed attempt(s) absorbed in "
                    f"{self.resilience.get('recovery_seconds', 0.0):.2f}s")
            if degraded:
                line += f", degraded to the {degraded} backend"
            lines.append(line)
        else:
            lines.append("resilience: no retries")
        if self.events:
            counts: dict[str, int] = {}
            for event in self.events:
                counts[event["kind"]] = counts.get(event["kind"], 0) + 1
            rendered = " ".join(f"{kind}({n})" for kind, n in sorted(counts.items()))
            lines.append(f"events: {rendered}")
        else:
            lines.append("events: none")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"FleetReport(backend={self.backend!r}, p={self.n_procs}, "
                f"events={len(self.events)})")


class Telemetry:
    """A fleet-observability recorder that travels with a machine's runs.

    Pass one as ``telemetry=`` to :class:`~repro.pro.machine.PROMachine`,
    :func:`~repro.pro.machine.resolve_machine`, any driver
    (``permute_distributed``, ``random_permutation``,
    ``sample_communication_matrix(parallel=True)``,
    ``sample_matrix_parallel``) or :func:`repro.pro.backends.pool.pool`;
    every completed ``run()`` appends one :class:`FleetReport`.  Collection
    is passive -- results and RNG accounting are bit-identical with
    telemetry on or off.

    Examples
    --------
    >>> from repro.pro.machine import PROMachine
    >>> from repro.pro.telemetry import Telemetry
    >>> def program(ctx):
    ...     return ctx.comm.allreduce(ctx.rank)
    >>> tel = Telemetry()
    >>> machine = PROMachine(2, seed=0, telemetry=tel)
    >>> machine.run(program).results
    [1, 1]
    >>> machine.close()
    >>> tel.last.n_procs      # thread ranks share the parent's address space,
    2
    >>> tel.last.to_dict()["ranks"][0]["transport"]["encode_calls"]  # so: zeroed
    0
    """

    def __init__(self):
        self.reports: list[FleetReport] = []

    @property
    def last(self) -> FleetReport | None:
        """The most recent run's report (``None`` before the first run)."""
        return self.reports[-1] if self.reports else None

    def record(self, report: FleetReport) -> None:
        """Append one run's report (called by the machine)."""
        self.reports.append(report)

    def clear(self) -> None:
        """Drop every collected report (the recorder stays attachable)."""
        self.reports.clear()

    def __len__(self) -> int:
        return len(self.reports)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Telemetry(reports={len(self.reports)})"
