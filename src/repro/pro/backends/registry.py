"""Execution-backend registry: the pluggable substrate of the PRO machine.

The machine layer (:class:`~repro.pro.machine.PROMachine`), the drivers
(:func:`~repro.core.parallel_matrix.sample_matrix_parallel`,
:func:`~repro.core.permutation.permute_distributed`), the CLI and the bench
harness all select their execution substrate by *name* through this module,
so a new backend becomes available everywhere by registering it once.

Backend contract
----------------
A backend is any object with

``name``
    A short identifier (``"inline"``, ``"thread"``, ``"process"``, ...).
``capabilities``
    A :class:`BackendCapabilities` record the machine uses for validation
    (e.g. a backend with ``multirank=False`` is rejected for ``p > 1``).
``create_fabric(n_procs, *, timeout)``
    Build the message fabric the ranks of one run communicate through.  The
    returned object must implement the :class:`~repro.pro.communicator.
    MessageFabric` interface (``put`` / ``get`` / ``barrier_wait`` /
    ``abort`` plus ``n_procs`` and ``timeout`` attributes); the default of
    :class:`ExecutionBackend` returns the in-process fabric shared by the
    inline and thread backends.
``run(contexts, program, args, kwargs)``
    Execute ``program(ctx, *args, **kwargs)`` once per context and return
    the per-rank results ordered by rank.

Error-propagation rules (all backends mirror the thread backend):

* when any rank raises, the fabric's barrier is aborted so sibling ranks
  blocked in ``barrier()`` or a blocking receive fail fast instead of
  timing out;
* after all ranks have stopped, the *root cause* is re-raised in the
  caller's thread: the first rank (by rank order) that failed with a real
  error is preferred over ranks that merely observed the broken barrier
  (a :class:`~repro.util.errors.CommunicationError`);
* plain exceptions are wrapped in :class:`~repro.util.errors.BackendError`
  with the rank recorded in the message; ``KeyboardInterrupt`` and friends
  propagate unchanged where the backend can preserve them.

Backends that execute ranks outside the calling address space (the process
backend) must additionally ship each rank's :class:`~repro.pro.cost.
CostRecorder` state and random-variate counts back to the caller and fold
them into the contexts before ``run`` returns, so that cost reports stay
backend-independent.

Transport sub-contract (out-of-address-space backends)
------------------------------------------------------
How payload bytes cross the address-space gap is itself pluggable: such a
backend should accept a ``transport=`` option (a name resolved through
:mod:`repro.pro.backends.transport` or a duck-typed object with
``encode``/``decode``/``dispose``) and honour three rules:

* the queue/control channel carries only small records -- bulk array bytes
  go through the transport (``"sharedmem"`` ships them through
  ``multiprocessing.shared_memory`` segments with zero-copy receive views,
  ``"pickle"`` keeps the historic in-band buffer codec);
* transports never touch the random streams, so a fixed machine seed stays
  bit-identical across transports as well as across backends;
* every record that is *not* decoded (abort, timeout, crash) must be
  handed to ``transport.dispose`` during fabric shutdown so out-of-band
  resources are released (see ``ProcessFabric.shutdown``).

Persistence sub-contract (standing worker fleets)
-------------------------------------------------
A backend that can amortise its rank start-up across runs should accept a
``persistent=True`` factory option (the machine's ``persistent=True``
kwarg forwards it) and honour three rules, modelled by the process
backend's :class:`~repro.pro.backends.pool.WorkerPool`:

* per-rank RNG streams are still built by the machine in the parent for
  *every* run, so a fixed seed stays bit-identical between persistent and
  one-shot execution;
* a failed run poisons the standing fleet (subsequent runs raise
  :class:`~repro.util.errors.BackendError`) rather than silently reusing
  communication state that may hold stray messages; a *supervised* fleet
  may additionally offer ``heal()`` (see the resilience sub-contract) to
  lift the poison explicitly -- poison-by-default stays the contract;
* the backend exposes an idempotent ``close()`` (wired to
  ``PROMachine.close`` and an ``atexit`` hook) that releases every
  out-of-band resource the fleet held.

A backend may additionally accept ``pool_scope="process"`` to borrow its
fleets from the process-wide default pool cache
(:func:`repro.pro.backends.pool.get_default_pool`) instead of keeping
private ones -- this is what makes the drivers' repeated
``backend="process"`` calls warm by default.  Shared fleets survive the
backend's ``close()`` (the cache owns them: poison-on-failure eviction,
LRU cap, ``clear_default_pools()`` plus an ``atexit`` hook), and the
transport's ``cache_key()`` decides which configurations may share one.

Resilience sub-contract (retry, deadlines, self-healing)
--------------------------------------------------------
Backends do not orchestrate retries themselves -- that is the machine's
resilience layer (:mod:`repro.pro.resilience`, enabled by the machine's
``retry=`` kwarg).  What a backend must (and may) provide for the layer to
work:

* **Error taxonomy.**  Raise sites use
  :func:`~repro.util.errors.wrap_rank_failure`, which classifies the
  caller-side error as :class:`~repro.util.errors.TransientBackendError`
  when the root cause is a substrate failure (a dead rank, a broken
  barrier, a timed-out wait -- anything with a truthy ``transient``
  attribute) and as the plain, fatal
  :class:`~repro.util.errors.BackendError` for deterministic program
  bugs, which a bit-identical replay would simply reproduce.  Only
  transient failures are retried.
* **Deterministic replay.**  Because per-rank streams are built by the
  machine in the parent for every attempt (from the *same* captured
  seed-sequence children), a backend that ships streams correctly makes
  retried epochs bit-identical to a fault-free run automatically -- no
  backend code is involved.
* **Deadlines.**  The machine clamps the fabric timeout it passes to
  ``create_fabric`` to the attempt's remaining deadline budget, so a
  stuck barrier or receive surfaces as a typed error within bound; a
  backend whose parent-side collection loop can outlive the fabric
  timeout should additionally consult
  :func:`~repro.pro.resilience.current_deadline` and raise
  :class:`~repro.util.errors.DeadlineError` when it expires.
* **Self-healing (optional).**  A backend with standing state may expose
  ``heal() -> bool``, called between attempts: return True once the next
  run can proceed on a clean substrate (the process backend respawns only
  the dead ranks of its poisoned pools into the standing fabric,
  re-handshaking their transports -- see ``WorkerPool.heal``), or False
  to make the resilience layer fall through to its degradation chain
  (``fallback=("thread", "inline")``-style) instead of retrying.  Set
  ``self_healing=True`` in :class:`BackendCapabilities` when provided.
  Backends without the hook are retried on a best-effort basis (the
  machine rebuilds one-shot fabrics per attempt anyway).

Kernel-tier sub-contract (sampling hot paths)
---------------------------------------------
Orthogonal to *where* ranks execute, the programs they run select a
sampling **kernel tier** through :mod:`repro.core.kernels` (the machine's
``kernels=`` kwarg rides into the programs; ``REPRO_KERNELS`` is the
ambient default).  Backends never interpret the request -- they only have
to preserve two properties that make it backend-invariant:

* tiers draw raw words from the rank's own bit generator (see
  :mod:`repro.core.kernels.wordstream`), so a backend that ships per-rank
  streams correctly gets tier bit-exactness for free: a fixed seed is
  identical across every backend x transport x persistence x tier cell;
* each rank notes the tier it actually ran (and its one-time JIT warm-up
  cost) on its :class:`~repro.pro.cost.CostRecorder`
  (``note_kernel_tier``), so backends that repatriate recorder state --
  which out-of-address-space backends must do anyway, see above -- also
  repatriate the per-rank tier choice for ``CostReport.kernel_tiers()``.

Telemetry/repatriation sub-contract (fleet observability)
---------------------------------------------------------
The machine's ``telemetry=`` kwarg (a
:class:`~repro.pro.telemetry.Telemetry` recorder) merges one
:class:`~repro.pro.telemetry.FleetReport` per run from data the backends
repatriate.  The vehicle is the cost contract above: anything attached to
a rank's :class:`~repro.pro.cost.CostRecorder` crosses the address-space
gap with the existing result record, with no wire-format change.  Rules:

* an out-of-address-space backend snapshots each rank's transport
  counters and sender-ring geometry onto ``ctx.cost.telemetry``
  (:func:`~repro.pro.telemetry.capture_rank_telemetry`) just before the
  rank's result record is queued -- one-shot and persistent paths alike;
* in-address-space backends (inline/thread/sim) attach nothing; the
  parent reports a **zeroed** transport section for their ranks rather
  than omitting it, so the report schema is backend-invariant;
* parent-side lifecycle is *event-sourced*, not repatriated: the pool
  supervisor and the resilience layer call
  :func:`~repro.pro.telemetry.record_event` (spawn/heal/poison/evict,
  retry/degraded/deadline-clamp) and the machine attributes each run the
  events observed during its window;
* collection is passive -- it never touches the per-rank random streams,
  so a fixed seed is bit-identical with telemetry on or off (guarded by
  the determinism grid in ``tests/unit/test_telemetry.py``), and the
  warm-dispatch overhead is gated at <= 1.05x in
  ``benchmarks/check_bench_regression.py``.

Exploration sub-contract (schedule coverage)
--------------------------------------------
A backend that advertises ``deterministic_schedule=True`` is a *model
checker's substrate*, and :mod:`repro.pro.explore` drives it through four
surfaces the sim backend defines: a replayable decision trace published on
``last_schedule`` after **every** run -- completed, failed or interrupted,
reset to ``None`` when a new run starts so stale traces cannot masquerade
as current; a ``last_decisions`` log of ``(runnable ranks, their pending
fabric ops, choice)`` per decision, which is what lets the explorer flip
prefixes and prune flips between independent operations; a
``last_op_log`` of completed fabric operations in occurrence order (the
raw material of trace fingerprints); and the ``policy=`` /
``max_decisions=`` options -- a pluggable ``choose(step, runnable,
pending)`` scheduling policy (e.g. the PCT sampler) and a decision bound
that turns would-be hangs into immediate
:class:`~repro.pro.backends.sim.ScheduleLimitExceeded` failures.  Any
future deterministic backend (e.g. a recorded-schedule MPI harness)
should implement the same four surfaces to plug into ``repro explore``
unchanged.

Registering a backend
---------------------
::

    from repro.pro.backends.registry import (
        BackendCapabilities, ExecutionBackend, register_backend,
    )

    class MyBackend(ExecutionBackend):
        name = "my-backend"
        capabilities = BackendCapabilities(multirank=True, ...)
        def run(self, contexts, program, args, kwargs):
            ...

    register_backend("my-backend", MyBackend,
                     description="one rank per <whatever>")

    PROMachine(4, backend="my-backend")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.pro.communicator import MessageFabric
from repro.util.errors import ValidationError

__all__ = [
    "BackendCapabilities",
    "BackendSpec",
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "backend_capabilities",
    "available_backends",
    "resolve_backend",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What an execution backend can and cannot do.

    Attributes
    ----------
    multirank:
        The backend can execute programs with more than one rank.  Backends
        without it (inline) are rejected by the machine for ``p > 1``.
    blocking_p2p:
        Ranks may block in ``recv``/``barrier`` waiting for one another
        (required by the head/worker protocols of Algorithms 5 and 6).
    true_parallelism:
        Ranks run on separate OS schedulable entities that are not
        serialised by the CPython GIL for pure-Python work.
    shared_address_space:
        Ranks share the caller's address space: programs may close over
        arbitrary objects and mutate shared state.  Backends without it
        (process) require picklable programs/arguments and ship results,
        cost records and variate counts back explicitly.
    deterministic_schedule:
        The interleaving of rank execution is fully determined by the
        backend's configuration (sim, and trivially inline): two identical
        runs step their ranks in the identical order, so schedule-dependent
        failures replay exactly.  Backends whose ranks are scheduled by the
        OS (thread, process) cannot promise this.
    self_healing:
        The backend exposes a ``heal()`` hook that recovers its standing
        state (poisoned worker fleets) between retry attempts, per the
        resilience sub-contract above.  Backends without it are still
        retryable -- one-shot substrates are rebuilt per attempt -- but a
        failed heal cannot be distinguished from "nothing to heal".
    """

    multirank: bool = True
    blocking_p2p: bool = True
    true_parallelism: bool = False
    shared_address_space: bool = True
    deterministic_schedule: bool = False
    self_healing: bool = False


@dataclass(frozen=True)
class BackendSpec:
    """Registry entry: how to build a backend and what it promises."""

    name: str
    factory: Callable[..., "ExecutionBackend"]
    capabilities: BackendCapabilities
    description: str = ""


class ExecutionBackend:
    """Base class for execution backends (subclassing is optional).

    Provides the default in-process message fabric; subclasses override
    :meth:`run` and, when ranks live outside the calling address space,
    :meth:`create_fabric` as well.
    """

    name = "abstract"
    capabilities = BackendCapabilities()

    def create_fabric(self, n_procs: int, *, timeout: float) -> MessageFabric:
        """Build the message fabric one run's ranks communicate through."""
        return MessageFabric(n_procs, timeout=timeout)

    def run(self, contexts: Sequence, program: Callable, args: tuple, kwargs: dict) -> list:
        """Execute ``program`` once per context; return per-rank results."""
        raise NotImplementedError


# ----------------------------------------------------------------------------
# The registry proper
# ----------------------------------------------------------------------------
# The built-in backends register themselves at import time (each module
# calls register_backend at its bottom), and importing this module always
# executes the repro.pro.backends package __init__ first, which imports all
# three -- so by the time any lookup below can run, the builtins are there.
_REGISTRY: dict[str, BackendSpec] = {}


def register_backend(
    name: str,
    factory: Callable[..., ExecutionBackend],
    *,
    capabilities: BackendCapabilities | None = None,
    description: str = "",
    overwrite: bool = False,
) -> BackendSpec:
    """Register ``factory`` (usually the backend class) under ``name``.

    ``capabilities`` defaults to the factory's class-level ``capabilities``
    attribute.  Re-registering an existing name raises unless
    ``overwrite=True`` (useful in tests that stub a backend).
    """
    if not isinstance(name, str) or not name:
        raise ValidationError(f"backend name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise ValidationError(f"backend factory for {name!r} must be callable")
    if name in _REGISTRY and not overwrite:
        raise ValidationError(
            f"backend {name!r} is already registered; pass overwrite=True to replace it"
        )
    if capabilities is None:
        capabilities = getattr(factory, "capabilities", None)
    if not isinstance(capabilities, BackendCapabilities):
        raise ValidationError(
            f"backend {name!r} needs BackendCapabilities (given or as a factory attribute)"
        )
    spec = BackendSpec(
        name=name, factory=factory, capabilities=capabilities, description=description
    )
    _REGISTRY[name] = spec
    return spec


def unregister_backend(name: str) -> None:
    """Remove a registered backend (intended for test clean-up)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``.

    ``options`` are forwarded to the factory (e.g.
    ``get_backend("process", start_method="spawn")``).
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValidationError(
            f"unknown backend {name!r}; registered backends: {', '.join(available_backends())}"
        )
    return spec.factory(**options)


def backend_capabilities(name: str) -> BackendCapabilities:
    """Capability flags of the backend registered under ``name``."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValidationError(
            f"unknown backend {name!r}; registered backends: {', '.join(available_backends())}"
        )
    return spec.capabilities


def available_backends() -> tuple[str, ...]:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(backend: str | ExecutionBackend, **options) -> ExecutionBackend:
    """Turn a backend name or instance into a validated backend instance.

    This is what :class:`~repro.pro.machine.PROMachine` calls: strings go
    through the registry (with ``options`` forwarded to the factory, e.g.
    ``transport="sharedmem"`` for the process backend), objects are
    accepted as-is provided they expose a ``run()`` method (duck-typed
    custom backends remain supported).  Options that a backend's factory
    does not understand are rejected with a
    :class:`~repro.util.errors.ValidationError` rather than silently
    ignored.
    """
    if isinstance(backend, str):
        if not options:
            return get_backend(backend)
        try:
            return get_backend(backend, **options)
        except TypeError as exc:
            # Only a call with options can fail on an unexpected keyword;
            # factory-internal TypeErrors without options propagate as-is.
            raise ValidationError(
                f"backend {backend!r} does not accept the options "
                f"{sorted(options)}: {exc}"
            ) from None
    if options:
        raise ValidationError(
            "backend options (e.g. transport=) only apply when the backend is "
            "given by name; configure a backend instance directly instead"
        )
    if not hasattr(backend, "run"):
        raise ValidationError("a backend object must expose a run() method")
    return backend
