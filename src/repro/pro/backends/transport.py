"""Payload transports: how message payloads cross the process boundary.

The :class:`~repro.pro.backends.process.ProcessFabric` separates *control*
from *data*: the multiprocessing queues always carry small control records
``(src, tag, encoded_payload)``, and a pluggable :class:`PayloadTransport`
decides how the payload bytes themselves travel.  Two transports ship with
the library:

``"pickle"`` (:class:`PickleTransport`)
    The buffer-based codec the process backend has always used: NumPy
    arrays become ``(dtype, shape, bytes)`` triples inside the queue
    message (nested containers are walked recursively), everything else is
    pickled by the queue.  Every array payload is copied at least three
    times (``tobytes``, the queue pipe write, the queue pipe read) before
    the receiver rebuilds it.

``"sharedmem"`` (:class:`~repro.pro.backends.sharedmem.SharedMemoryTransport`)
    Bulk array payloads travel through ``multiprocessing.shared_memory``
    segments: the sender copies each large array into a dedicated segment
    exactly once and ships only ``(segment name, offset, dtype, shape)``
    control records through the queue; the receiver attaches the segment
    and hands out **zero-copy** NumPy views.  Small arrays and non-array
    payloads fall back to the pickle codec, as does everything when shared
    memory is unavailable on the platform.

Transport contract
------------------
A transport is any object with

``name``
    A short identifier (``"pickle"``, ``"sharedmem"``, ...).
``encode(payload, *, ring=None) -> record``
    Turn a payload into a picklable control record.  Called in the sending
    process; must not consume randomness or mutate the payload.  ``ring``
    is an optional fabric-provided name of a reusable per-sender buffer
    (see the shared-memory transport's ring segments); transports may
    ignore it.
``decode(record, *, ack=None) -> payload``
    Inverse of ``encode``; called exactly once per delivered record in the
    receiving process.  Arrays may be returned as views into transport
    owned buffers provided the buffer outlives every returned view.
    ``ack`` is an optional fabric-provided callable; a transport that
    allocated reclaimable out-of-band space for the record (a ring slot)
    calls ``ack(receipt)`` once the receiver is done with the payload (all
    zero-copy views garbage collected), and the fabric routes the receipt
    back to the sending process, which applies it via :meth:`ring_ack`.
    Transports may ignore ``ack``; fabrics only pass it to transports
    whose ``decode`` signature accepts it.
``ring_ack(receipt) -> None`` (optional)
    Apply a receiver acknowledgement in the *sending* process: the space
    named by ``receipt`` may be reused for future messages.  This is what
    lets the shared-memory ring segments wrap around instead of degrading
    to per-message segments on long runs.
``encode_shared(payload, n_consumers, *, ring=None) -> record | None`` (optional)
    Encode once for ``n_consumers`` independent receivers: the same record
    is delivered to (and decoded by) every consumer, so persistent pools
    can ship one run's bulk dispatch arguments with a single encode
    instead of one per rank.  The shared-memory transport backs this with
    a *refcounted* segment unlinked after the last consumer's ack;
    returning ``None`` declines and the caller falls back to per-consumer
    ``encode``.
``dispose(record) -> None``
    Release any out-of-band resources (e.g. shared-memory segments) held
    by a record that will *never* be decoded -- the fabric calls this when
    draining undelivered messages on shutdown, abort and timeout paths.
    For a multi-consumer record, one ``dispose`` call releases one
    undelivered copy's share of the refcount.
``retire_rings(names) -> None`` (optional)
    Unlink/release the named ring buffers at the end of a fabric run;
    only called by fabrics that handed out ring names.
``retire_shared() -> None`` (optional)
    Unlink every outstanding multi-consumer segment this process still
    tracks; called during fabric shutdown so crashed or abandoned runs
    leak nothing.
``ring_epoch(name) -> None`` (optional)
    Epoch boundary of the sender ring called ``name``: persistent-pool
    workers call it at the start of every dispatched run so the ring can
    adapt its logical capacity to the observed traffic (see the
    shared-memory transport's adaptive ring geometry).
``cache_key() -> tuple | None`` (optional)
    Hashable configuration identity; equal keys mean two instances are
    interchangeable, which is what lets the process-wide default pool
    cache reuse one warm worker fleet across driver calls.
``uses_shared_memory`` (optional attribute)
    True when the transport creates shared-memory segments; the fabric
    then starts the ``multiprocessing`` resource tracker in the parent
    before the rank processes fork, so every process shares one tracker.

Transports are deliberately independent of the random streams, so a fixed
machine seed produces bit-identical results on every transport (enforced by
``tests/integration/test_cross_backend_determinism.py``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.errors import ValidationError

__all__ = [
    "PayloadTransport",
    "PickleTransport",
    "TransportStats",
    "register_transport",
    "get_transport",
    "available_transports",
    "resolve_transport",
]

# Markers of the buffer-based payload encoding (shared by all transports).
_ND, _TUPLE, _LIST, _DICT, _RAW = "nd", "tuple", "list", "dict", "raw"
#: Marker of a zero-copy reference into a shared-memory segment.
SHMREF = "shmref"
#: Marker of a record whose bulk arrays live in one dedicated segment
#: (created per message, unlinked by the receiver on decode).
SHMSEG = "shmseg"
#: Marker of a record whose bulk arrays live in a per-sender ring segment
#: (created once per fabric, reclaimed slot-by-slot through receiver
#: acknowledgements, retired by the fabric at shutdown).
SHMRING = "shmring"
#: Marker of a *multi-consumer* record: one refcounted segment read by
#: ``n_consumers`` independent receivers (the worker pool's bulk dispatch
#: arguments), unlinked by the encoder once the last consumer has
#: acknowledged its attach (see ``PayloadTransport.encode_shared``).
SHMMULTI = "shmmulti"


class TransportStats:
    """Monotonic per-instance counters (observability, tests, bench gates).

    Every built-in transport exposes one as its ``stats`` attribute.  The
    interesting invariants they pin: persistent dispatch encodes bulk
    arguments **once per run** (``shared_encode_calls`` grows by one per
    ``run()``, not by ``p``), and a steady warm workload stops paying
    ``oversize_fallbacks`` once the adaptive ring has grown to fit.
    """

    __slots__ = ("encode_calls", "shared_encode_calls", "decode_calls",
                 "segments_created", "multi_segments_created",
                 "ring_messages", "oversize_fallbacks", "bytes_encoded")

    def __init__(self):
        self.encode_calls = 0
        self.shared_encode_calls = 0
        self.decode_calls = 0
        self.segments_created = 0
        self.multi_segments_created = 0
        self.ring_messages = 0
        self.oversize_fallbacks = 0
        self.bytes_encoded = 0

    def snapshot(self) -> dict:
        """Plain-dict copy of every counter (stable for test deltas)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        fields = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"TransportStats({fields})"


def walk_encode(obj, array_hook: Callable[[np.ndarray], tuple | None]):
    """Encode ``obj`` recursively; ``array_hook`` may claim arrays first.

    ``array_hook(arr)`` returns a record to use for ``arr`` or ``None`` to
    fall through to the inline ``(dtype, shape, bytes)`` encoding.  Object
    dtype arrays always travel as plain pickles (their buffers hold
    pointers that are meaningless in another address space).
    """
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            return (_RAW, obj)
        record = array_hook(obj)
        if record is not None:
            return record
        arr = np.ascontiguousarray(obj)
        # ascontiguousarray promotes 0-d to 1-d; keep the caller's shape.
        return (_ND, arr.dtype, obj.shape, arr.tobytes())
    if isinstance(obj, tuple):
        return (_TUPLE, tuple(walk_encode(v, array_hook) for v in obj))
    if isinstance(obj, list):
        return (_LIST, [walk_encode(v, array_hook) for v in obj])
    if isinstance(obj, dict):
        return (_DICT, {k: walk_encode(v, array_hook) for k, v in obj.items()})
    return (_RAW, obj)


def walk_decode(enc, ref_hook: Callable[[tuple], np.ndarray] | None = None):
    """Inverse of :func:`walk_encode`; ``ref_hook`` resolves SHMREF records."""
    kind, value = enc[0], enc[1]
    if kind == _ND:
        _, dtype, shape, data = enc
        return np.frombuffer(data, dtype=np.dtype(dtype)).reshape(shape).copy()
    if kind == SHMREF:
        if ref_hook is None:
            raise ValidationError(
                "shared-memory reference record outside a shared-memory segment"
            )
        return ref_hook(enc)
    if kind == _TUPLE:
        return tuple(walk_decode(v, ref_hook) for v in value)
    if kind == _LIST:
        return [walk_decode(v, ref_hook) for v in value]
    if kind == _DICT:
        return {k: walk_decode(v, ref_hook) for k, v in value.items()}
    return value


class PayloadTransport:
    """Base class for payload transports (subclassing is optional)."""

    name = "abstract"

    def encode(self, payload, *, ring: str | None = None):
        """Turn ``payload`` into a picklable control record."""
        raise NotImplementedError

    def decode(self, record, *, ack=None):
        """Rebuild the payload of a delivered control record.

        ``ack``, when given, is called with a receipt once the receiver has
        released the record's reclaimable out-of-band space (if any).
        """
        raise NotImplementedError

    def encode_shared(self, payload, n_consumers: int, *, ring: str | None = None):
        """Encode ``payload`` once for ``n_consumers`` independent receivers.

        Used by the worker pool to ship one run's bulk dispatch arguments:
        the same returned record is delivered to every rank, so the
        encoding must be safe to :meth:`decode` ``n_consumers`` times (the
        shared-memory transport backs it with one *refcounted* segment
        unlinked after the last consumer's acknowledgement).  Returning
        ``None`` declines -- the caller falls back to per-consumer
        :meth:`encode` -- which is what this base implementation does.
        """
        return None

    def dispose(self, record) -> None:
        """Release out-of-band resources of a record that won't be decoded.

        For multi-consumer records this is called once per *undelivered
        copy* and must release that copy's share of the refcount.
        """
        # In-band transports hold nothing outside the record itself.

    def ring_ack(self, receipt) -> None:
        """Apply a receiver acknowledgement in the sending process."""
        # In-band transports have no reclaimable out-of-band space.

    def retire_rings(self, names) -> None:
        """Release the named per-sender ring buffers (end of a fabric run)."""
        # In-band transports have no rings.

    def retire_shared(self) -> None:
        """Unlink every outstanding multi-consumer segment of this process."""
        # In-band transports have no shared segments.

    def ring_epoch(self, name: str) -> None:
        """Epoch boundary of the sender ring called ``name`` (adaptive hook)."""
        # In-band transports have no rings to adapt.

    def cache_key(self) -> tuple | None:
        """Hashable identity for pool-cache keying, or ``None``.

        Two transport instances with equal (non-``None``) keys are
        interchangeable: the process-wide default pool cache
        (:func:`repro.pro.backends.pool.get_default_pool`) reuses a warm
        worker fleet across driver calls only when the keys match.
        ``None`` (the default) opts out of sharing -- the backend then
        keeps a private fleet instead.
        """
        return None


class PickleTransport(PayloadTransport):
    """Queue-borne payloads: arrays as raw buffers, the rest pickled.

    This is the historic process-backend codec; receivers always get fresh
    writable copies.  It holds no out-of-band state, so :meth:`dispose` is
    a no-op and ``ring`` hints are ignored.
    """

    name = "pickle"

    def __init__(self):
        self.stats = TransportStats()

    def encode(self, payload, *, ring: str | None = None):
        self.stats.encode_calls += 1
        return walk_encode(payload, lambda arr: None)

    def encode_shared(self, payload, n_consumers: int, *, ring: str | None = None):
        """One in-band record, safely decodable by any number of consumers."""
        self.stats.shared_encode_calls += 1
        return walk_encode(payload, lambda arr: None)

    def decode(self, record, *, ack=None):
        self.stats.decode_calls += 1
        return walk_decode(record)

    def cache_key(self) -> tuple:
        return ("pickle",)


# ----------------------------------------------------------------------------
# Transport registry
# ----------------------------------------------------------------------------
_TRANSPORTS: dict[str, Callable[..., PayloadTransport]] = {}


def register_transport(name: str, factory: Callable[..., PayloadTransport],
                       *, overwrite: bool = False) -> None:
    """Register a transport factory (usually the class) under ``name``."""
    if not isinstance(name, str) or not name:
        raise ValidationError(f"transport name must be a non-empty string, got {name!r}")
    if name in _TRANSPORTS and not overwrite:
        raise ValidationError(
            f"transport {name!r} is already registered; pass overwrite=True to replace it"
        )
    _TRANSPORTS[name] = factory


def available_transports() -> tuple[str, ...]:
    """Sorted names of all registered transports."""
    return tuple(sorted(_TRANSPORTS))


def get_transport(name: str, **options) -> PayloadTransport:
    """Instantiate the transport registered under ``name``."""
    factory = _TRANSPORTS.get(name)
    if factory is None:
        raise ValidationError(
            f"unknown transport {name!r}; registered transports: "
            f"{', '.join(available_transports())}"
        )
    return factory(**options)


def resolve_transport(transport: str | PayloadTransport | None) -> PayloadTransport:
    """Turn a transport name, instance or ``None`` into a transport instance.

    ``None`` resolves to the default :class:`PickleTransport`; strings go
    through the registry; objects are accepted as-is provided they expose
    ``encode``/``decode`` (duck-typed custom transports remain supported).
    """
    if transport is None:
        return PickleTransport()
    if isinstance(transport, str):
        return get_transport(transport)
    if not (hasattr(transport, "encode") and hasattr(transport, "decode")):
        raise ValidationError(
            "a transport object must expose encode() and decode() methods"
        )
    return transport


register_transport("pickle", PickleTransport)

# The shared-memory transport registers itself on import; importing it here
# keeps the registry complete whenever any transport lookup is possible.
from repro.pro.backends import sharedmem as _sharedmem  # noqa: E402,F401  (self-registers)
