"""Payload transports: how message payloads cross the process boundary.

The :class:`~repro.pro.backends.process.ProcessFabric` separates *control*
from *data*: the multiprocessing queues always carry small control records
``(src, tag, encoded_payload)``, and a pluggable :class:`PayloadTransport`
decides how the payload bytes themselves travel.  Two transports ship with
the library:

``"pickle"`` (:class:`PickleTransport`)
    The buffer-based codec the process backend has always used: NumPy
    arrays become ``(dtype, shape, bytes)`` triples inside the queue
    message (nested containers are walked recursively), everything else is
    pickled by the queue.  Every array payload is copied at least three
    times (``tobytes``, the queue pipe write, the queue pipe read) before
    the receiver rebuilds it.

``"sharedmem"`` (:class:`~repro.pro.backends.sharedmem.SharedMemoryTransport`)
    Bulk array payloads travel through ``multiprocessing.shared_memory``
    segments: the sender copies each large array into a dedicated segment
    exactly once and ships only ``(segment name, offset, dtype, shape)``
    control records through the queue; the receiver attaches the segment
    and hands out **zero-copy** NumPy views.  Small arrays and non-array
    payloads fall back to the pickle codec, as does everything when shared
    memory is unavailable on the platform.

Transport contract
------------------
A transport is any object with

``name``
    A short identifier (``"pickle"``, ``"sharedmem"``, ...).
``encode(payload, *, ring=None) -> record``
    Turn a payload into a picklable control record.  Called in the sending
    process; must not consume randomness or mutate the payload.  ``ring``
    is an optional fabric-provided name of a reusable per-sender buffer
    (see the shared-memory transport's ring segments); transports may
    ignore it.
``decode(record, *, ack=None) -> payload``
    Inverse of ``encode``; called exactly once per delivered record in the
    receiving process.  Arrays may be returned as views into transport
    owned buffers provided the buffer outlives every returned view.
    ``ack`` is an optional fabric-provided callable; a transport that
    allocated reclaimable out-of-band space for the record (a ring slot)
    calls ``ack(receipt)`` once the receiver is done with the payload (all
    zero-copy views garbage collected), and the fabric routes the receipt
    back to the sending process, which applies it via :meth:`ring_ack`.
    Transports may ignore ``ack``; fabrics only pass it to transports
    whose ``decode`` signature accepts it.
``ring_ack(receipt) -> None`` (optional)
    Apply a receiver acknowledgement in the *sending* process: the space
    named by ``receipt`` may be reused for future messages.  This is what
    lets the shared-memory ring segments wrap around instead of degrading
    to per-message segments on long runs.
``dispose(record) -> None``
    Release any out-of-band resources (e.g. shared-memory segments) held
    by a record that will *never* be decoded -- the fabric calls this when
    draining undelivered messages on shutdown, abort and timeout paths.
``retire_rings(names) -> None`` (optional)
    Unlink/release the named ring buffers at the end of a fabric run;
    only called by fabrics that handed out ring names.
``uses_shared_memory`` (optional attribute)
    True when the transport creates shared-memory segments; the fabric
    then starts the ``multiprocessing`` resource tracker in the parent
    before the rank processes fork, so every process shares one tracker.

Transports are deliberately independent of the random streams, so a fixed
machine seed produces bit-identical results on every transport (enforced by
``tests/integration/test_cross_backend_determinism.py``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.errors import ValidationError

__all__ = [
    "PayloadTransport",
    "PickleTransport",
    "register_transport",
    "get_transport",
    "available_transports",
    "resolve_transport",
]

# Markers of the buffer-based payload encoding (shared by all transports).
_ND, _TUPLE, _LIST, _DICT, _RAW = "nd", "tuple", "list", "dict", "raw"
#: Marker of a zero-copy reference into a shared-memory segment.
SHMREF = "shmref"
#: Marker of a record whose bulk arrays live in one dedicated segment
#: (created per message, unlinked by the receiver on decode).
SHMSEG = "shmseg"
#: Marker of a record whose bulk arrays live in a per-sender ring segment
#: (created once per fabric, reclaimed slot-by-slot through receiver
#: acknowledgements, retired by the fabric at shutdown).
SHMRING = "shmring"


def walk_encode(obj, array_hook: Callable[[np.ndarray], tuple | None]):
    """Encode ``obj`` recursively; ``array_hook`` may claim arrays first.

    ``array_hook(arr)`` returns a record to use for ``arr`` or ``None`` to
    fall through to the inline ``(dtype, shape, bytes)`` encoding.  Object
    dtype arrays always travel as plain pickles (their buffers hold
    pointers that are meaningless in another address space).
    """
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            return (_RAW, obj)
        record = array_hook(obj)
        if record is not None:
            return record
        arr = np.ascontiguousarray(obj)
        # ascontiguousarray promotes 0-d to 1-d; keep the caller's shape.
        return (_ND, arr.dtype, obj.shape, arr.tobytes())
    if isinstance(obj, tuple):
        return (_TUPLE, tuple(walk_encode(v, array_hook) for v in obj))
    if isinstance(obj, list):
        return (_LIST, [walk_encode(v, array_hook) for v in obj])
    if isinstance(obj, dict):
        return (_DICT, {k: walk_encode(v, array_hook) for k, v in obj.items()})
    return (_RAW, obj)


def walk_decode(enc, ref_hook: Callable[[tuple], np.ndarray] | None = None):
    """Inverse of :func:`walk_encode`; ``ref_hook`` resolves SHMREF records."""
    kind, value = enc[0], enc[1]
    if kind == _ND:
        _, dtype, shape, data = enc
        return np.frombuffer(data, dtype=np.dtype(dtype)).reshape(shape).copy()
    if kind == SHMREF:
        if ref_hook is None:
            raise ValidationError(
                "shared-memory reference record outside a shared-memory segment"
            )
        return ref_hook(enc)
    if kind == _TUPLE:
        return tuple(walk_decode(v, ref_hook) for v in value)
    if kind == _LIST:
        return [walk_decode(v, ref_hook) for v in value]
    if kind == _DICT:
        return {k: walk_decode(v, ref_hook) for k, v in value.items()}
    return value


class PayloadTransport:
    """Base class for payload transports (subclassing is optional)."""

    name = "abstract"

    def encode(self, payload, *, ring: str | None = None):
        """Turn ``payload`` into a picklable control record."""
        raise NotImplementedError

    def decode(self, record, *, ack=None):
        """Rebuild the payload of a delivered control record.

        ``ack``, when given, is called with a receipt once the receiver has
        released the record's reclaimable out-of-band space (if any).
        """
        raise NotImplementedError

    def dispose(self, record) -> None:
        """Release out-of-band resources of a record that won't be decoded."""
        # In-band transports hold nothing outside the record itself.

    def ring_ack(self, receipt) -> None:
        """Apply a receiver acknowledgement in the sending process."""
        # In-band transports have no reclaimable out-of-band space.

    def retire_rings(self, names) -> None:
        """Release the named per-sender ring buffers (end of a fabric run)."""
        # In-band transports have no rings.


class PickleTransport(PayloadTransport):
    """Queue-borne payloads: arrays as raw buffers, the rest pickled.

    This is the historic process-backend codec; receivers always get fresh
    writable copies.  It holds no out-of-band state, so :meth:`dispose` is
    a no-op and ``ring`` hints are ignored.
    """

    name = "pickle"

    def encode(self, payload, *, ring: str | None = None):
        return walk_encode(payload, lambda arr: None)

    def decode(self, record, *, ack=None):
        return walk_decode(record)


# ----------------------------------------------------------------------------
# Transport registry
# ----------------------------------------------------------------------------
_TRANSPORTS: dict[str, Callable[..., PayloadTransport]] = {}


def register_transport(name: str, factory: Callable[..., PayloadTransport],
                       *, overwrite: bool = False) -> None:
    """Register a transport factory (usually the class) under ``name``."""
    if not isinstance(name, str) or not name:
        raise ValidationError(f"transport name must be a non-empty string, got {name!r}")
    if name in _TRANSPORTS and not overwrite:
        raise ValidationError(
            f"transport {name!r} is already registered; pass overwrite=True to replace it"
        )
    _TRANSPORTS[name] = factory


def available_transports() -> tuple[str, ...]:
    """Sorted names of all registered transports."""
    return tuple(sorted(_TRANSPORTS))


def get_transport(name: str, **options) -> PayloadTransport:
    """Instantiate the transport registered under ``name``."""
    factory = _TRANSPORTS.get(name)
    if factory is None:
        raise ValidationError(
            f"unknown transport {name!r}; registered transports: "
            f"{', '.join(available_transports())}"
        )
    return factory(**options)


def resolve_transport(transport: str | PayloadTransport | None) -> PayloadTransport:
    """Turn a transport name, instance or ``None`` into a transport instance.

    ``None`` resolves to the default :class:`PickleTransport`; strings go
    through the registry; objects are accepted as-is provided they expose
    ``encode``/``decode`` (duck-typed custom transports remain supported).
    """
    if transport is None:
        return PickleTransport()
    if isinstance(transport, str):
        return get_transport(transport)
    if not (hasattr(transport, "encode") and hasattr(transport, "decode")):
        raise ValidationError(
            "a transport object must expose encode() and decode() methods"
        )
    return transport


register_transport("pickle", PickleTransport)

# The shared-memory transport registers itself on import; importing it here
# keeps the registry complete whenever any transport lookup is possible.
from repro.pro.backends import sharedmem as _sharedmem  # noqa: E402,F401  (self-registers)
