"""Thread-per-rank execution backend.

Each virtual processor runs in its own Python thread.  Although the CPython
interpreter serialises pure-Python byte code, the bulk work of the
permutation algorithms (local shuffles, array slicing, the all-to-all data
exchange) happens inside NumPy which releases the GIL, so thread ranks do
overlap on real hardware; more importantly the backend gives each rank an
independent control flow, which the head/worker protocols of Algorithms 5
and 6 require.

Error handling: when any rank raises, the fabric's barrier is aborted so
that the remaining ranks fail fast instead of waiting for a timeout, and the
first exception (by rank order) is re-raised in the caller's thread with the
rank recorded in the message.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.pro.backends.registry import (
    BackendCapabilities,
    ExecutionBackend,
    register_backend,
)
from repro.util.errors import BackendError

__all__ = ["ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    """Run one thread per rank and collect per-rank results or errors."""

    name = "thread"
    capabilities = BackendCapabilities(
        multirank=True,
        blocking_p2p=True,
        true_parallelism=False,
        shared_address_space=True,
    )

    def run(self, contexts: Sequence, program: Callable, args: tuple, kwargs: dict) -> list:
        """Execute ``program(ctx, *args, **kwargs)`` for every context.

        Returns the list of per-rank return values, ordered by rank.
        Raises the first per-rank exception (wrapped only if it is not
        already a library error) after all threads have stopped.
        """
        n = len(contexts)
        results: list = [None] * n
        errors: list = [None] * n

        def worker(idx: int) -> None:
            ctx = contexts[idx]
            try:
                results[idx] = program(ctx, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - report any rank failure
                errors[idx] = exc
                # Break the barrier so sibling ranks blocked in barrier() fail fast.
                ctx.comm._fabric.abort()

        threads = [
            threading.Thread(target=worker, args=(idx,), name=f"pro-rank-{idx}", daemon=True)
            for idx in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        failed = [(rank, exc) for rank, exc in enumerate(errors) if exc is not None]
        if failed:
            # Prefer the root cause: a rank that died with a real error rather
            # than one that merely saw the barrier break afterwards.
            from repro.util.errors import CommunicationError

            primary = next(
                ((rank, exc) for rank, exc in failed if not isinstance(exc, CommunicationError)),
                failed[0],
            )
            rank, exc = primary
            if isinstance(exc, Exception):
                from repro.util.errors import wrap_rank_failure

                raise wrap_rank_failure(rank, exc) from exc
            raise exc  # KeyboardInterrupt and friends propagate unchanged
        return results


register_backend(
    "thread",
    ThreadBackend,
    description="one Python thread per rank sharing the caller's address space",
)
