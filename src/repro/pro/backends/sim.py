"""Deterministic multi-rank simulation backend (``"sim"``).

The thread and process backends exercise ``p > 1`` rank interleavings with
real concurrency: fast, but the interleaving changes from run to run, a
failure that depends on a particular schedule is irreproducible, and a
debugger session is ruined by ranks racing each other.  The sim backend
removes the nondeterminism instead of the concurrency: all ``p`` ranks of a
run step *cooperatively*, exactly one rank executing at any instant, and
every context switch happens at an explicit **yield point** -- a fabric
operation (``put`` / ``get`` / ``barrier_wait``).  Which runnable rank runs
next is decided by a seedable scheduler, so

* ``schedule_seed=None`` (default) gives *run-to-block* order: the lowest
  runnable rank executes until it blocks -- the "multi-rank inline
  scheduler" mode, ideal for single-step debugging of Algorithms 5/6;
* ``schedule_seed=k`` draws a pseudo-random interleaving from seed ``k``:
  two runs with the same seed replay the identical schedule, different
  seeds explore different interleavings (the scenario-diversity engine of
  ``tests/simulation/``);
* ``schedule=[...]`` replays a previously recorded schedule (the decision
  trace of every run is kept in :attr:`SimBackend.last_schedule`); a
  truncated or diverging schedule falls back to run-to-block order, which
  is what lets :func:`~repro.pro.backends.faults.shrink_schedule` minimise
  a failing interleaving.

Because execution is fully serialised, blocking never needs a wall clock:
when no rank can make progress the scheduler has *proved* a deadlock and
immediately injects :class:`~repro.util.errors.CommunicationError` into
every blocked rank -- the situation where the thread and process backends
would sit out their timeout.  A dropped message or a crashed sibling
therefore surfaces in microseconds instead of seconds, which is what makes
sweeping hundreds of interleavings per test affordable.

Determinism contract: the per-rank RNG streams are built by the machine
exactly as for every other backend, and the fabric preserves per-``(src,
dst)`` FIFO order under every schedule, so for a fixed machine seed the
*results* are bit-identical to the inline, thread and process backends --
under every schedule seed (``tests/integration/
test_cross_backend_determinism.py`` and ``tests/simulation/`` pin this).

Implementation note: each rank runs on a *carrier thread* that serves as a
suspendable continuation (plain generators cannot suspend an arbitrary call
stack mid-``recv``), but carriers hold the single execution baton one at a
time -- the scheduler wakes exactly one and waits for it to yield back, so
execution is logically single-threaded, schedules are exactly reproducible,
and ``pdb`` sessions see one active rank.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from typing import Callable, Sequence

from repro.pro.backends.registry import (
    BackendCapabilities,
    ExecutionBackend,
    register_backend,
)
from repro.util.errors import BackendError, CommunicationError, ValidationError

__all__ = ["SimBackend", "SimFabric", "ScheduleLimitExceeded"]


class ScheduleLimitExceeded(BackendError):
    """A sim run exceeded its ``max_decisions`` scheduling budget.

    Raised by the cooperative scheduler when a run keeps hitting yield
    points past the configured bound -- the deterministic analogue of a
    livelock (ranks that spin *without* fabric operations never yield and
    cannot be bounded this way).  The partial decision trace is still
    recorded on :attr:`SimBackend.last_schedule`, so the hang replays.
    """

#: Rank lifecycle states of the cooperative scheduler.
_RUNNABLE, _BLOCKED_RECV, _BLOCKED_BARRIER, _DONE, _FAILED = range(5)
_BLOCKED = (_BLOCKED_RECV, _BLOCKED_BARRIER)


class _RankState:
    """One rank's continuation: carrier thread, state and handshake events."""

    __slots__ = ("rank", "state", "resume", "yielded", "inject", "error",
                 "result", "wait_src", "pending_op")

    def __init__(self, rank: int):
        self.rank = rank
        self.state = _RUNNABLE
        self.resume = threading.Event()   # scheduler -> rank: you hold the baton
        self.yielded = threading.Event()  # rank -> scheduler: baton returned
        self.inject = None                # exception to raise at the resume point
        self.error = None
        self.result = None
        self.wait_src = None              # source rank a blocked receive waits on
        self.pending_op = None            # fabric op this rank is about to perform


class _SimScheduler:
    """Cooperative rank stepper: one baton, explicit yield points.

    Exactly one of {scheduler, some carrier} executes at any instant --
    the scheduler wakes one carrier and blocks until it yields -- so all
    scheduler/fabric state is mutated under mutual exclusion without
    locks, and the sequence of decisions (``trace``) fully determines the
    interleaving.
    """

    def __init__(self, n_procs: int, *, schedule_seed=None, schedule=None,
                 policy=None, max_decisions=None):
        self._ranks = [_RankState(rank) for rank in range(n_procs)]
        self._rng = None if schedule_seed is None else random.Random(schedule_seed)
        self._replay = [int(choice) for choice in schedule] if schedule else []
        self._replay_pos = 0
        self._policy = policy
        self._max_decisions = max_decisions
        self.trace: list[int] = []
        #: One entry per decision: (runnable ranks, their pending ops, choice).
        #: The pending ops let an explorer prune prefix flips between
        #: independent operations (see repro.pro.explore).
        self.decision_log: list[tuple] = []
        #: Completed fabric operations in occurrence order, each a
        #: ``(kind, src, dst)`` tuple (barriers use ``("barrier", r, r)``).
        self.op_log: list[tuple] = []
        self._ident_to_rank: dict[int, int] = {}

    # -- rank side (runs on carrier threads) --------------------------------
    def current_rank(self) -> int:
        """The rank whose carrier thread is calling (fabric ops need it)."""
        rank = self._ident_to_rank.get(threading.get_ident())
        if rank is None:
            raise BackendError(
                "sim fabric operations may only be performed by ranks inside "
                "a PROMachine.run on the sim backend"
            )
        return rank

    def _park(self, state: _RankState) -> None:
        """Hand the baton back and wait to be scheduled again."""
        state.yielded.set()
        state.resume.wait()
        state.resume.clear()
        if state.inject is not None:
            exc, state.inject = state.inject, None
            raise exc

    def yield_point(self, rank: int, op: tuple | None = None) -> None:
        """A scheduling opportunity: the rank stays runnable.

        ``op`` names the fabric operation the rank is about to perform,
        as a ``(kind, src, dst)`` tuple; it is surfaced to scheduling
        policies and recorded in :attr:`decision_log`.
        """
        state = self._ranks[rank]
        state.state = _RUNNABLE
        if op is not None:
            state.pending_op = op
        self._park(state)

    def record_op(self, op: tuple) -> None:
        """A fabric operation completed: append it to the occurrence log."""
        self.op_log.append(op)

    def block_on_recv(self, dst: int, src: int) -> None:
        """Block ``dst`` until a message from ``src`` arrives (or deadlock)."""
        state = self._ranks[dst]
        state.state = _BLOCKED_RECV
        state.wait_src = src
        self._park(state)

    def block_on_barrier(self, rank: int) -> None:
        """Block until the barrier completes (or is broken / deadlocked)."""
        state = self._ranks[rank]
        state.state = _BLOCKED_BARRIER
        self._park(state)

    def notify_message(self, dst: int, src: int) -> None:
        """A message ``src -> dst`` was deposited: wake a matching receive."""
        state = self._ranks[dst]
        if state.state == _BLOCKED_RECV and state.wait_src == src:
            state.state = _RUNNABLE
            state.wait_src = None

    def release_barrier(self) -> None:
        """The last rank arrived: every rank parked in the barrier resumes."""
        for state in self._ranks:
            if state.state == _BLOCKED_BARRIER:
                state.state = _RUNNABLE

    def break_barrier(self, message: str) -> None:
        """Abort: ranks parked in the barrier resume with an error."""
        for state in self._ranks:
            if state.state == _BLOCKED_BARRIER:
                state.inject = CommunicationError(message)
                state.state = _RUNNABLE

    def release_stragglers(self) -> None:
        """Tear-down path: resume every unfinished carrier with an error.

        Only reached when :meth:`drive` itself was interrupted (e.g. a
        ``KeyboardInterrupt`` delivered to the driving thread); on a
        completed run every rank is already DONE or FAILED and this is a
        no-op.  All stragglers are resumed at once -- the single-baton
        invariant is deliberately abandoned, each carrier raises at its
        park point and exits immediately.
        """
        for state in self._ranks:
            if state.state in (_RUNNABLE, *_BLOCKED):
                state.inject = CommunicationError(
                    "the sim run was torn down before this rank finished"
                )
                state.state = _RUNNABLE
                state.resume.set()

    def _carrier(self, rank: int, ctx, program, args, kwargs) -> None:
        """Body of one rank's carrier thread."""
        state = self._ranks[rank]
        self._ident_to_rank[threading.get_ident()] = rank
        state.resume.wait()
        state.resume.clear()
        try:
            if state.inject is not None:
                exc, state.inject = state.inject, None
                raise exc
            state.result = program(ctx, *args, **kwargs)
            state.state = _DONE
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            state.error = exc
            state.state = _FAILED
            try:
                # Break the barrier so parked siblings fail fast, exactly
                # like the thread backend's failing rank does.
                ctx.comm._fabric.abort()
            except Exception:
                pass
        finally:
            state.yielded.set()

    # -- scheduler side (runs on the calling thread) ------------------------
    def _choose(self, runnable: list[int]) -> int:
        if self._replay_pos < len(self._replay):
            wanted = self._replay[self._replay_pos]
            self._replay_pos += 1
            if wanted in runnable:
                return wanted
            # The replayed schedule diverged (shrunk/edited trace): fall
            # back deterministically so every prefix is a valid schedule.
            return runnable[0]
        if self._policy is not None:
            pending = {r: self._ranks[r].pending_op for r in runnable}
            choice = self._policy.choose(len(self.trace), runnable, pending)
            if choice in runnable:
                return choice
            return runnable[0]  # a confused policy degrades, never wedges
        if self._rng is not None:
            return runnable[self._rng.randrange(len(runnable))]
        return runnable[0]  # run-to-block: lowest runnable rank

    def drive(self, fabric: "SimFabric") -> None:
        """Step ranks until all are done or failed, resolving deadlocks."""
        while True:
            if (self._max_decisions is not None
                    and len(self.trace) >= self._max_decisions):
                raise ScheduleLimitExceeded(
                    f"sim run still scheduling after {self._max_decisions} "
                    "decisions: treating it as a hang (raise max_decisions "
                    "if the program legitimately needs more yield points)"
                )
            runnable = [s.rank for s in self._ranks if s.state == _RUNNABLE]
            if not runnable:
                blocked = [s for s in self._ranks if s.state in _BLOCKED]
                if not blocked:
                    return  # every rank is DONE or FAILED
                # No rank can make progress: this is a *proved* deadlock,
                # the situation real backends only discover by timeout.
                fabric._broken = True
                for state in blocked:
                    if state.state == _BLOCKED_RECV:
                        state.inject = CommunicationError(
                            f"rank {state.rank} deadlocked waiting for a "
                            f"message from rank {state.wait_src} (deterministic "
                            "deadlock: no rank can make progress; a real "
                            f"backend would time out after {fabric.timeout}s)"
                        )
                    else:
                        state.inject = CommunicationError(
                            f"rank {state.rank} deadlocked in barrier_wait: "
                            "the barrier can never complete (deterministic "
                            "deadlock; a real backend would time out after "
                            f"{fabric.timeout}s)"
                        )
                    state.state = _RUNNABLE
                continue
            ordered = sorted(runnable)
            choice = self._choose(ordered)
            self.decision_log.append((
                tuple(ordered),
                tuple(self._ranks[r].pending_op for r in ordered),
                choice,
            ))
            self.trace.append(choice)
            state = self._ranks[choice]
            state.resume.set()
            state.yielded.wait()
            state.yielded.clear()


class SimFabric:
    """Message fabric of the sim backend: mailboxes plus cooperative blocking.

    Speaks the :class:`~repro.pro.communicator.MessageFabric` protocol
    (``put`` / ``get`` / ``barrier_wait`` / ``abort``, ``n_procs``,
    ``timeout``) but never waits on a wall clock: blocking operations park
    the calling rank in the scheduler, and impossible waits surface as
    immediate :class:`~repro.util.errors.CommunicationError` (see the
    module docstring).  ``timeout`` is kept for contract compatibility and
    error messages only.
    """

    def __init__(self, n_procs: int, *, timeout: float = 60.0):
        if n_procs < 1:
            raise ValidationError(f"n_procs must be >= 1, got {n_procs}")
        self.n_procs = n_procs
        self.timeout = timeout
        # _queues[dst][src] holds (tag, payload) pairs in sending order.
        self._queues = [
            [deque() for _ in range(n_procs)] for _ in range(n_procs)
        ]
        self._arrived: set[int] = set()
        self._broken = False
        self._scheduler: _SimScheduler | None = None

    def _sched(self) -> _SimScheduler:
        if self._scheduler is None:
            raise BackendError(
                "the sim fabric is only usable while PROMachine.run is "
                "driving its ranks on the sim backend"
            )
        return self._scheduler

    def put(self, src: int, dst: int, tag, payload) -> None:
        """Deposit a message; never blocks (mailboxes are unbounded)."""
        scheduler = self._sched()
        scheduler.yield_point(src, ("put", src, dst))
        self._queues[dst][src].append((tag, payload))
        scheduler.record_op(("put", src, dst))
        scheduler.notify_message(dst, src)

    def get(self, src: int, dst: int, tag, pending: list):
        """Fetch the next ``src -> dst`` message carrying ``tag``.

        Messages with other tags that arrive first are parked in
        ``pending`` (owned by the receiving communicator) and served to
        later receives, exactly like the in-process fabric.
        """
        scheduler = self._sched()
        scheduler.yield_point(dst, ("get", src, dst))
        queue = self._queues[dst][src]
        while True:
            for idx, (msg_tag, payload) in enumerate(pending):
                if msg_tag == tag:
                    pending.pop(idx)
                    scheduler.record_op(("get", src, dst))
                    return payload
            matched = None
            while queue:
                msg_tag, payload = queue.popleft()
                if msg_tag == tag:
                    matched = payload
                    break
                pending.append((msg_tag, payload))
            if matched is not None:
                scheduler.record_op(("get", src, dst))
                return matched
            scheduler.block_on_recv(dst, src)  # raises on proved deadlock

    def barrier_wait(self) -> None:
        """Block until all ranks arrive; fail fast on abort or deadlock."""
        scheduler = self._sched()
        rank = scheduler.current_rank()
        scheduler.yield_point(rank, ("barrier", rank, rank))
        if self._broken:
            raise CommunicationError(
                "barrier broken or aborted (a rank crashed or the run "
                "deadlocked); the sim backend fails fast instead of timing "
                f"out after {self.timeout}s"
            )
        self._arrived.add(rank)
        scheduler.record_op(("barrier", rank, rank))
        if len(self._arrived) == self.n_procs:
            self._arrived.clear()
            scheduler.release_barrier()
            return
        scheduler.block_on_barrier(rank)  # raises when broken or deadlocked

    def abort(self) -> None:
        """Break the barrier so surviving ranks fail fast after a crash."""
        self._broken = True
        if self._scheduler is not None:
            self._scheduler.break_barrier(
                "barrier broken or aborted (a rank crashed or the run "
                "deadlocked); the sim backend fails fast instead of timing "
                f"out after {self.timeout}s"
            )


class SimBackend(ExecutionBackend):
    """Run all ranks cooperatively in one schedulable step sequence.

    Parameters
    ----------
    schedule_seed:
        ``None`` (default) for deterministic run-to-block order, or any
        int: the scheduler draws the interleaving from this seed, and the
        same seed replays the same interleaving.  Results (not schedules)
        are bit-identical across seeds *and* across backends for a fixed
        machine seed.
    schedule:
        An explicit decision trace to replay (e.g. a failing run's
        :attr:`last_schedule`, possibly shrunk by
        :func:`~repro.pro.backends.faults.shrink_schedule`).  Exhausted or
        diverging entries fall back to run-to-block order (or to
        ``schedule_seed`` when given), so any prefix of a recorded trace
        is itself a valid schedule.
    policy:
        An object with ``choose(step, runnable, pending) -> rank`` that
        decides scheduling once any explicit ``schedule`` prefix is
        exhausted (e.g. :class:`repro.pro.explore.PCTPolicy`).  ``pending``
        maps each runnable rank to the ``(kind, src, dst)`` fabric op it
        is about to perform (``None`` before its first op).  Mutually
        exclusive with ``schedule_seed``.
    max_decisions:
        Abort the run with :class:`ScheduleLimitExceeded` after this many
        scheduling decisions -- bounded-time hang surfacing for explorers.
        ``None`` (default) never aborts.

    After every run -- including failed or interrupted ones -- the
    (possibly partial) decision trace, decision log and fabric-op
    occurrence log of that run are published on :attr:`last_schedule`,
    :attr:`last_decisions` and :attr:`last_op_log`; all three are reset to
    ``None`` when a new run starts, so a stale trace can never masquerade
    as the failing one.
    """

    name = "sim"
    capabilities = BackendCapabilities(
        multirank=True,
        blocking_p2p=True,
        true_parallelism=False,
        shared_address_space=True,
        deterministic_schedule=True,
    )

    def __init__(self, *, schedule_seed: int | None = None, schedule=None,
                 policy=None, max_decisions: int | None = None):
        if schedule_seed is not None and not isinstance(schedule_seed, int):
            raise ValidationError(
                f"schedule_seed must be an int or None, got {schedule_seed!r}"
            )
        if schedule is not None:
            try:
                schedule = [int(choice) for choice in schedule]
            except (TypeError, ValueError):
                raise ValidationError(
                    "schedule must be a sequence of rank ids (a recorded "
                    f"last_schedule), got {schedule!r}"
                ) from None
        if policy is not None:
            if schedule_seed is not None:
                raise ValidationError(
                    "policy and schedule_seed are mutually exclusive: both "
                    "decide scheduling after the replay prefix is exhausted"
                )
            if not callable(getattr(policy, "choose", None)):
                raise ValidationError(
                    "policy must expose choose(step, runnable, pending), "
                    f"got {policy!r}"
                )
        if max_decisions is not None and (
                not isinstance(max_decisions, int) or max_decisions < 1):
            raise ValidationError(
                f"max_decisions must be a positive int or None, got "
                f"{max_decisions!r}"
            )
        self.schedule_seed = schedule_seed
        self.schedule = schedule
        self.policy = policy
        self.max_decisions = max_decisions
        #: Decision trace of the most recent run (also set on failure):
        #: pass it back as ``schedule=`` to replay that exact interleaving.
        self.last_schedule: list[int] | None = None
        #: (runnable, pending ops, choice) tuples of the most recent run.
        self.last_decisions: list[tuple] | None = None
        #: Completed fabric ops of the most recent run in occurrence order.
        self.last_op_log: list[tuple] | None = None

    def create_fabric(self, n_procs: int, *, timeout: float) -> SimFabric:
        """Build the cooperative fabric one run's ranks communicate through."""
        return SimFabric(n_procs, timeout=timeout)

    def run(self, contexts: Sequence, program: Callable, args: tuple, kwargs: dict) -> list:
        """Step ``program(ctx, ...)`` over all ranks under one schedule.

        Mirrors the thread backend's error propagation: the first rank (in
        rank order) that failed with a real error is preferred over ranks
        that merely observed the broken barrier or a deadlock, and plain
        exceptions are wrapped in :class:`~repro.util.errors.BackendError`
        with the rank in the message.
        """
        n = len(contexts)
        # Reset before any validation so a rejected or crashed run can
        # never leave a previous run's trace looking current.
        self.last_schedule = None
        self.last_decisions = None
        self.last_op_log = None
        fabric = contexts[0].comm._fabric
        if not isinstance(fabric, SimFabric):
            raise BackendError(
                "the sim backend needs contexts wired to its SimFabric; "
                "create the machine with backend='sim' instead of passing "
                "contexts built for another backend"
            )
        scheduler = _SimScheduler(
            n, schedule_seed=self.schedule_seed, schedule=self.schedule,
            policy=self.policy, max_decisions=self.max_decisions,
        )
        fabric._scheduler = scheduler
        carriers = [
            threading.Thread(
                target=scheduler._carrier,
                args=(rank, contexts[rank], program, args, kwargs),
                name=f"sim-rank-{rank}",
                daemon=True,
            )
            for rank in range(n)
        ]
        for thread in carriers:
            thread.start()
        try:
            scheduler.drive(fabric)
        finally:
            self.last_schedule = list(scheduler.trace)
            self.last_decisions = list(scheduler.decision_log)
            self.last_op_log = list(scheduler.op_log)
            # If drive() was interrupted (KeyboardInterrupt in the driving
            # thread), parked carriers would otherwise never resume and
            # leak with their contexts; wake them into an error and give
            # them a bounded window to exit.  On a completed run this
            # releases nothing and the joins return immediately.
            scheduler.release_stragglers()
            for thread in carriers:
                thread.join(timeout=5.0)
            fabric._scheduler = None

        failed = [(state.rank, state.error) for state in scheduler._ranks
                  if state.error is not None]
        if failed:
            primary = next(
                ((rank, exc) for rank, exc in failed
                 if not isinstance(exc, CommunicationError)),
                failed[0],
            )
            rank, exc = primary
            if isinstance(exc, Exception):
                from repro.util.errors import wrap_rank_failure

                raise wrap_rank_failure(rank, exc) from exc
            raise exc  # KeyboardInterrupt and friends propagate unchanged
        return [state.result for state in scheduler._ranks]


register_backend(
    "sim",
    SimBackend,
    description="all ranks stepped cooperatively under a seedable, "
                "replayable deterministic schedule (single execution baton)",
)
