"""Zero-copy shared-memory payload transport for the process backend.

The queue fabric of :class:`~repro.pro.backends.process.ProcessFabric`
keeps carrying small control records, but with this transport the *bytes*
of every bulk NumPy payload travel through a
``multiprocessing.shared_memory`` segment instead of the queue pipe:

* **Sender** (``encode``): all arrays of one payload that are at least
  ``min_bytes`` big are packed into a single fresh segment (one copy, at
  64-byte aligned offsets); the queue record only names the segment and the
  per-array ``(offset, dtype, shape)`` slots.  Small arrays and non-array
  values stay inline in the record via the pickle codec.
* **Receiver** (``decode``): attaches the segment, immediately *unlinks*
  its name (POSIX keeps the memory alive while mapped) and returns
  **zero-copy writable views** into the mapping.  The mapping is closed
  automatically once every returned view has been garbage collected
  (a :class:`weakref.finalize` per view), so receivers can hold results
  for as long as they like without leaking.

Lifecycle discipline
--------------------
CPython's ``resource_tracker`` pairs a *register* on segment creation with
an *unregister* inside :meth:`SharedMemory.unlink`; all fabric processes
share one tracker (the file descriptor is inherited by both ``fork`` and
``spawn`` children), so the invariant the transport maintains is simply
**exactly one unlink per segment**: the receiver unlinks on decode, and
records that are never decoded are unlinked by ``dispose`` when the fabric
drains its queues on shutdown/abort/timeout paths.  A segment abandoned by
a hard-crashed run is the one case left to the tracker's exit-time cleanup
(which is exactly what the tracker is for).

When shared memory is unavailable (no ``/dev/shm``, permissions, exotic
platforms) the transport degrades transparently to the pickle codec; the
probe runs once per process and is re-run after a ``fork``.
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from repro.pro.backends.transport import (
    SHMREF,
    SHMRING,
    SHMSEG,
    PayloadTransport,
    register_transport,
    walk_decode,
    walk_encode,
)
from repro.util.errors import CommunicationError, ValidationError

try:  # pragma: no cover - the stdlib module exists on all supported platforms
    from multiprocessing import shared_memory as _shm_module
except ImportError:  # pragma: no cover
    _shm_module = None

__all__ = ["SharedMemoryTransport", "shared_memory_available"]

#: Byte alignment of array slots inside a segment (cache-line sized).
_ALIGN = 64

# Per-process availability probe result, keyed by pid so that forked
# children re-probe instead of trusting the parent's cached answer.
_PROBE: tuple[int | None, bool] = (None, False)


def ensure_resource_tracker() -> None:
    """Start the resource tracker in *this* process (the fabric's parent).

    Must run before the rank processes fork so that every process of a run
    inherits one shared tracker: segment creation registers in the sending
    rank, the matching unregister happens inside ``unlink`` in the
    *receiving* rank, and the pair only balances when both land in the
    same tracker cache.  Without this, each rank lazily spawns its own
    tracker and every tracker warns about "leaked" segments at exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - platforms without the tracker
        pass


def shared_memory_available() -> bool:
    """True when shared-memory segments can be created in this process."""
    global _PROBE
    pid = os.getpid()
    if _PROBE[0] != pid:
        ok = False
        if _shm_module is not None:
            try:
                seg = _shm_module.SharedMemory(create=True, size=1)
                seg.close()
                seg.unlink()
                ok = True
            except Exception:
                ok = False
        _PROBE = (pid, ok)
    return _PROBE[1]


class _SegmentLease:
    """Keep one attached segment mapped until all views into it are dead."""

    __slots__ = ("_seg", "_outstanding")

    def __init__(self, seg, n_views: int):
        self._seg = seg
        self._outstanding = int(n_views)

    def watch(self, view: np.ndarray) -> None:
        weakref.finalize(view, self._release)

    def _release(self) -> None:
        self._outstanding -= 1
        if self._outstanding <= 0 and self._seg is not None:
            seg, self._seg = self._seg, None
            try:
                seg.close()
            except Exception:  # pragma: no cover - interpreter shutdown races
                pass


# ----------------------------------------------------------------------------
# Ring segments: one reusable circular buffer per sender, acked by receivers
# ----------------------------------------------------------------------------
# Creating, mapping and unlinking a fresh segment costs a handful of
# syscalls plus the kernel zeroing every page -- fine for megabyte
# payloads, but it cancels the zero-copy win for the ~100 KB pieces of a
# realistic irregular all-to-all.  A *ring segment* amortises all of that:
# the fabric names one buffer per sender rank, the sender creates it on
# first use and bump-allocates message slots from it, and every receiver
# attaches it once and caches the mapping, so the marginal cost of a
# message drops to a single memcpy plus a tiny queue record.
#
# The ring *wraps around*: receivers acknowledge a slot once every
# zero-copy view into it has been garbage collected (the ack receipt
# travels back to the sender on the fabric's control channel), and the
# allocator reclaims acked space, so long and repeated runs keep cycling
# through the same buffer instead of degrading to dedicated per-message
# segments.  The allocator works in *virtual* byte offsets that increase
# monotonically; ``head`` is the next write position, ``tail`` the oldest
# unacknowledged byte, and a slot is live while ``head - tail`` stays
# within the capacity.  Slots are physically contiguous: an allocation
# that would straddle the physical end of the buffer skips ahead to the
# next wrap boundary and the padding is reclaimed together with the slot.
# A message that cannot be placed (outstanding slots still cover the ring)
# falls back to a dedicated per-message segment, and the fabric retires
# the rings at shutdown (parent side), after which mappings live on only
# as long as undead views need them.

#: (pid, name) -> _SenderRing, private to the creating process.
_SENDER_RINGS: dict = {}
#: (pid, name) -> _RingAttachment, private to the attaching process.
_ATTACHED_RINGS: dict = {}


class _SenderRing:
    """The sender side of one ring segment: a circular slot allocator."""

    __slots__ = ("shm", "capacity", "head", "tail", "_slots",
                 "reclaimed_bytes", "wraps")

    def __init__(self, shm):
        self.shm = shm
        # Physical offsets repeat modulo the capacity; keep it slot-aligned
        # so wrapped slots stay aligned too.
        if shm.size >= _ALIGN:
            self.capacity = shm.size - shm.size % _ALIGN
        else:
            self.capacity = shm.size
        self.head = 0  # virtual offset of the next write
        self.tail = 0  # virtual offset of the oldest unacked byte
        # Outstanding slots in allocation order: [virtual_end, acked].
        self._slots: list = []
        self.reclaimed_bytes = 0  # observability / tests
        self.wraps = 0

    def allocate(self, nbytes: int) -> tuple[int, int] | None:
        """Reserve ``nbytes`` contiguously; return (physical_start, receipt).

        The receipt is the slot's virtual end offset -- what the receiver
        echoes back through :meth:`ack` when its views are gone.  Returns
        ``None`` when the unacknowledged slots leave no room.
        """
        aligned = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        if aligned > self.capacity:
            return None
        start = self.head
        position = start % self.capacity
        wrapped = position + aligned > self.capacity
        if wrapped:
            # The slot would straddle the physical end: skip to the wrap
            # boundary.  On an empty ring the skipped bytes are free to
            # reclaim immediately; otherwise the padding belongs to this
            # slot and is reclaimed with it.
            padded = start + (self.capacity - position)
            if self.tail == start:
                self.tail = padded
            start = padded
            position = 0
        end = start + aligned
        if end - self.tail > self.capacity:
            return None
        if wrapped:
            self.wraps += 1
        self.head = end
        self._slots.append([end, False])
        return position, end

    def ack(self, receipt: int) -> None:
        """Mark the slot ending at virtual offset ``receipt`` as consumed."""
        for slot in self._slots:
            if slot[0] == receipt:
                slot[1] = True
                break
        else:
            return  # unknown / duplicate receipt: ignore
        # Reclaim the contiguous acked prefix (slots free strictly in
        # allocation order, like a ring buffer's tail).
        while self._slots and self._slots[0][1]:
            end = self._slots.pop(0)[0]
            self.reclaimed_bytes += end - self.tail
            self.tail = end


class _RingAttachment:
    """The receiver side: one cached mapping plus live-view accounting."""

    __slots__ = ("shm", "_outstanding", "_retired")

    def __init__(self, shm):
        self.shm = shm
        self._outstanding = 0
        self._retired = False

    def watch(self, view: np.ndarray) -> None:
        self._outstanding += 1
        weakref.finalize(view, self._release)

    def retire(self) -> None:
        self._retired = True
        self._maybe_close()

    def _release(self) -> None:
        self._outstanding -= 1
        self._maybe_close()

    def _maybe_close(self) -> None:
        if self._retired and self._outstanding <= 0 and self.shm is not None:
            shm, self.shm = self.shm, None
            try:
                shm.close()
            except Exception:  # pragma: no cover - interpreter shutdown races
                pass


def _sender_ring(name: str, ring_bytes: int) -> "_SenderRing | None":
    """This process's sender ring called ``name``, created on first use."""
    key = (os.getpid(), name)
    ring = _SENDER_RINGS.get(key)
    if ring is None:
        try:
            shm = _shm_module.SharedMemory(name=name, create=True, size=ring_bytes)
        except Exception:
            return None
        ring = _SenderRing(shm)
        _SENDER_RINGS[key] = ring
    return ring


def _slot_release(ack, name: str, receipt: int, n_views: int):
    """Build the finalizer that acks one ring slot once its views are dead.

    Every zero-copy view of the slot's message registers the returned
    callable with ``weakref.finalize``; the last view to be garbage
    collected fires ``ack((name, receipt))``, which the fabric routes back
    to the sending process.  The callable must not reference the views
    themselves (that would keep them alive forever).
    """
    remaining = [int(n_views)]

    def release() -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            try:
                ack((name, receipt))
            except Exception:  # pragma: no cover - interpreter shutdown races
                pass

    return release


def _attached_ring(name: str) -> "_RingAttachment | None":
    """This process's cached attachment of the ring called ``name``."""
    key = (os.getpid(), name)
    attachment = _ATTACHED_RINGS.get(key)
    if attachment is None:
        sender = _SENDER_RINGS.get(key)
        try:
            if sender is not None and sender.shm is not None:
                # Self-delivery: reuse the sender mapping instead of a
                # second attach of our own segment.
                attachment = _RingAttachment(sender.shm)
            else:
                attachment = _RingAttachment(_shm_module.SharedMemory(name=name))
        except FileNotFoundError:
            return None
        _ATTACHED_RINGS[key] = attachment
    return attachment


class SharedMemoryTransport(PayloadTransport):
    """Ship bulk array payloads through shared-memory segments.

    Parameters
    ----------
    min_bytes:
        Arrays smaller than this stay inline in the queue record (the
        per-segment syscalls only pay off for bulk payloads).  The default
        of 8 KiB keeps control traffic on the fast path while every block
        of a realistically sized permutation goes zero-copy.
    ring_bytes:
        Capacity of one per-sender ring segment (default 32 MiB; the pages
        are allocated lazily by the kernel, so an oversized ring costs
        only what a run actually ships).  The ring wraps around: receiver
        acknowledgements (flowing back on the fabric's control channel
        once the zero-copy views of a slot are garbage collected) let the
        allocator reclaim consumed slots, so sustained traffic cycles
        through the buffer indefinitely.  A message that cannot be placed
        -- outstanding unacknowledged slots still cover the ring -- uses a
        dedicated per-message segment instead.
    """

    name = "sharedmem"
    #: Tells the fabric to start the shared resource tracker pre-fork.
    uses_shared_memory = True

    def __init__(self, *, min_bytes: int = 8192, ring_bytes: int = 32 * 1024 * 1024):
        self.min_bytes = int(min_bytes)
        self.ring_bytes = int(ring_bytes)
        if self.min_bytes < 1:
            raise ValidationError(
                f"min_bytes must be >= 1, got {self.min_bytes}"
            )
        if self.ring_bytes < 1:
            raise ValidationError(
                f"ring_bytes must be >= 1, got {self.ring_bytes}"
            )

    # -- encoding -----------------------------------------------------------
    def encode(self, payload, *, ring: str | None = None):
        if not shared_memory_available():
            return walk_encode(payload, lambda arr: None)

        slabs: list[np.ndarray] = []
        offsets: list[int] = []
        cursor = 0

        def claim(arr: np.ndarray):
            nonlocal cursor
            if arr.nbytes < self.min_bytes:
                return None
            contiguous = np.ascontiguousarray(arr)
            slabs.append(contiguous)
            offset = cursor
            offsets.append(offset)
            cursor += (contiguous.nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
            # ascontiguousarray promotes 0-d to 1-d; keep the caller's shape.
            return (SHMREF, len(slabs) - 1, contiguous.dtype, arr.shape)

        inner = walk_encode(payload, claim)
        if not slabs:
            return inner

        if ring is not None:
            sender = _sender_ring(ring, self.ring_bytes)
            if sender is not None:
                alloc = sender.allocate(cursor)
                if alloc is not None:
                    base, receipt = alloc
                    for slab, offset in zip(slabs, offsets):
                        dst = np.ndarray(slab.shape, dtype=slab.dtype,
                                         buffer=sender.shm.buf, offset=base + offset)
                        dst[...] = slab
                        del dst
                    return (SHMRING, ring,
                            tuple(base + offset for offset in offsets),
                            receipt, inner)
        try:
            seg = _shm_module.SharedMemory(create=True, size=max(cursor, 1))
        except Exception:
            # Creation can start failing later (e.g. /dev/shm filled up);
            # degrade to the inline codec for this and future messages.
            global _PROBE
            _PROBE = (os.getpid(), False)
            return walk_encode(payload, lambda arr: None)
        try:
            for slab, offset in zip(slabs, offsets):
                dst = np.ndarray(slab.shape, dtype=slab.dtype,
                                 buffer=seg.buf, offset=offset)
                dst[...] = slab
                del dst
        except BaseException:
            seg.close()
            seg.unlink()
            raise
        name = seg.name
        seg.close()  # the sender's mapping is no longer needed
        return (SHMSEG, name, tuple(offsets), inner)

    # -- decoding -----------------------------------------------------------
    def decode(self, record, *, ack=None):
        if record[0] == SHMRING:
            return self._decode_ring(record, ack)
        if record[0] != SHMSEG:
            return walk_decode(record)
        _, name, offsets, inner = record
        try:
            seg = _shm_module.SharedMemory(name=name)
        except FileNotFoundError:
            raise CommunicationError(
                f"shared-memory segment {name!r} vanished before it was "
                "received (the run was probably aborted)"
            ) from None
        try:
            seg.unlink()  # memory stays alive while mapped; the name goes now
        except FileNotFoundError:  # pragma: no cover - double delivery race
            pass
        lease = _SegmentLease(seg, len(offsets))

        def resolve(ref):
            _, index, dtype, shape = ref
            view = np.ndarray(shape, dtype=dtype, buffer=seg.buf,
                              offset=offsets[index])
            lease.watch(view)
            return view

        return walk_decode(inner, resolve)

    def _decode_ring(self, record, ack=None):
        _, name, offsets, receipt, inner = record
        attachment = _attached_ring(name)
        if attachment is None:
            raise CommunicationError(
                f"ring segment {name!r} vanished before its message was "
                "received (the run was probably aborted)"
            )
        release = None if ack is None else _slot_release(ack, name, receipt,
                                                         len(offsets))

        def resolve(ref):
            _, index, dtype, shape = ref
            view = np.ndarray(shape, dtype=dtype, buffer=attachment.shm.buf,
                              offset=offsets[index])
            attachment.watch(view)
            if release is not None:
                weakref.finalize(view, release)
            return view

        return walk_decode(inner, resolve)

    # -- acknowledgements ----------------------------------------------------
    def ring_ack(self, receipt) -> None:
        """Apply a receiver acknowledgement to this process's sender ring.

        ``receipt`` is the ``(ring name, virtual slot end)`` pair the
        receiver's ``decode`` handed to its ``ack`` callback; the named
        slot (and any contiguous acked predecessors) becomes reusable.
        Unknown receipts -- duplicate delivery, a ring that was already
        retired -- are ignored.
        """
        try:
            name, end = receipt
        except (TypeError, ValueError):
            return
        ring = _SENDER_RINGS.get((os.getpid(), name))
        if ring is not None:
            ring.ack(end)

    # -- disposal -----------------------------------------------------------
    def dispose(self, record) -> None:
        """Unlink the segment of a record that will never be decoded.

        Ring records need no per-message disposal -- the fabric retires
        whole rings via :meth:`retire_rings` at shutdown.
        """
        if not (isinstance(record, tuple) and record and record[0] == SHMSEG):
            return
        name = record[1]
        if _shm_module is None:  # pragma: no cover
            return
        try:
            seg = _shm_module.SharedMemory(name=name)
        except FileNotFoundError:
            return
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        seg.close()

    # -- ring lifecycle -----------------------------------------------------
    def retire_rings(self, names) -> None:
        """Unlink the named ring segments and drop this process's handles.

        Called by the fabric (in the parent) at shutdown on every exit
        path.  Unlinking removes only the names; receiver mappings stay
        alive until the last zero-copy view into them is garbage
        collected.
        """
        if _shm_module is None:  # pragma: no cover
            return
        pid = os.getpid()
        for name in names:
            unlinked = False
            sender = _SENDER_RINGS.pop((pid, name), None)
            attachment = _ATTACHED_RINGS.pop((pid, name), None)
            shared_handle = (sender is not None and attachment is not None
                             and attachment.shm is sender.shm)
            if sender is not None:
                try:
                    sender.shm.unlink()
                except FileNotFoundError:
                    pass
                unlinked = True
                if not shared_handle:
                    try:
                        sender.shm.close()
                    except Exception:  # pragma: no cover - exported views
                        pass
            if attachment is not None:
                if not unlinked:
                    try:
                        attachment.shm.unlink()
                    except FileNotFoundError:
                        pass
                    unlinked = True
                attachment.retire()
            if not unlinked:
                # A ring created by a (now finished) worker that this
                # process never attached; unlink it by name.
                try:
                    seg = _shm_module.SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                seg.close()


register_transport("sharedmem", SharedMemoryTransport)
