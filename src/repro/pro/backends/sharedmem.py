"""Zero-copy shared-memory payload transport for the process backend.

The queue fabric of :class:`~repro.pro.backends.process.ProcessFabric`
keeps carrying small control records, but with this transport the *bytes*
of every bulk NumPy payload travel through a
``multiprocessing.shared_memory`` segment instead of the queue pipe:

* **Sender** (``encode``): all arrays of one payload that are at least
  ``min_bytes`` big are packed into a single fresh segment (one copy, at
  64-byte aligned offsets); the queue record only names the segment and the
  per-array ``(offset, dtype, shape)`` slots.  Small arrays and non-array
  values stay inline in the record via the pickle codec.
* **Receiver** (``decode``): attaches the segment, immediately *unlinks*
  its name (POSIX keeps the memory alive while mapped) and returns
  **zero-copy writable views** into the mapping.  The mapping is closed
  automatically once every returned view has been garbage collected
  (a :class:`weakref.finalize` per view), so receivers can hold results
  for as long as they like without leaking.

* **Multi-consumer dispatch** (``encode_shared``): the worker pool's bulk
  run arguments are written into **one refcounted segment per run** (not
  one copy per rank); every rank attaches it, acknowledges the attach
  through the pool's result channel, and the encoder unlinks the name
  after the last acknowledgement -- mappings (and hence the zero-copy
  views) stay valid until each receiver's views die.

Lifecycle discipline
--------------------
CPython's ``resource_tracker`` pairs a *register* on segment creation with
an *unregister* inside :meth:`SharedMemory.unlink`; all fabric processes
share one tracker (the file descriptor is inherited by both ``fork`` and
``spawn`` children), so the invariant the transport maintains is simply
**exactly one unlink per segment**: the receiver unlinks on decode (the
*encoder* does, after the last consumer's ack, for multi-consumer
segments), and records that are never decoded are unlinked by ``dispose``
when the fabric drains its queues on shutdown/abort/timeout paths
(``retire_shared`` covers multi-consumer segments abandoned mid-run).  A
segment abandoned by a hard-crashed run is the one case left to the
tracker's exit-time cleanup (which is exactly what the tracker is for).

When shared memory is unavailable (no ``/dev/shm``, permissions, exotic
platforms) the transport degrades transparently to the pickle codec; the
probe runs once per process and is re-run after a ``fork``.
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from repro.pro.backends.transport import (
    SHMMULTI,
    SHMREF,
    SHMRING,
    SHMSEG,
    PayloadTransport,
    TransportStats,
    register_transport,
    walk_decode,
    walk_encode,
)
from repro.util.errors import CommunicationError, ValidationError

try:  # pragma: no cover - the stdlib module exists on all supported platforms
    from multiprocessing import shared_memory as _shm_module
except ImportError:  # pragma: no cover
    _shm_module = None

__all__ = ["SharedMemoryTransport", "shared_memory_available"]

#: Byte alignment of array slots inside a segment (cache-line sized).
_ALIGN = 64

# Per-process availability probe result, keyed by pid so that forked
# children re-probe instead of trusting the parent's cached answer.
_PROBE: tuple[int | None, bool] = (None, False)


def ensure_resource_tracker() -> None:
    """Start the resource tracker in *this* process (the fabric's parent).

    Must run before the rank processes fork so that every process of a run
    inherits one shared tracker: segment creation registers in the sending
    rank, the matching unregister happens inside ``unlink`` in the
    *receiving* rank, and the pair only balances when both land in the
    same tracker cache.  Without this, each rank lazily spawns its own
    tracker and every tracker warns about "leaked" segments at exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - platforms without the tracker
        pass


def shared_memory_available() -> bool:
    """True when shared-memory segments can be created in this process."""
    global _PROBE
    pid = os.getpid()
    if _PROBE[0] != pid:
        ok = False
        if _shm_module is not None:
            try:
                seg = _shm_module.SharedMemory(create=True, size=1)
                seg.close()
                seg.unlink()
                ok = True
            except Exception:
                ok = False
        _PROBE = (pid, ok)
    return _PROBE[1]


class _SegmentLease:
    """Keep one attached segment mapped until all views into it are dead."""

    __slots__ = ("_seg", "_outstanding")

    def __init__(self, seg, n_views: int):
        self._seg = seg
        self._outstanding = int(n_views)

    def watch(self, view: np.ndarray) -> None:
        weakref.finalize(view, self._release)

    def _release(self) -> None:
        self._outstanding -= 1
        if self._outstanding <= 0 and self._seg is not None:
            seg, self._seg = self._seg, None
            try:
                seg.close()
            except Exception:  # pragma: no cover - interpreter shutdown races
                pass


# ----------------------------------------------------------------------------
# Ring segments: one reusable circular buffer per sender, acked by receivers
# ----------------------------------------------------------------------------
# Creating, mapping and unlinking a fresh segment costs a handful of
# syscalls plus the kernel zeroing every page -- fine for megabyte
# payloads, but it cancels the zero-copy win for the ~100 KB pieces of a
# realistic irregular all-to-all.  A *ring segment* amortises all of that:
# the fabric names one buffer per sender rank, the sender creates it on
# first use and bump-allocates message slots from it, and every receiver
# attaches it once and caches the mapping, so the marginal cost of a
# message drops to a single memcpy plus a tiny queue record.
#
# The ring *wraps around*: receivers acknowledge a slot once every
# zero-copy view into it has been garbage collected (the ack receipt
# travels back to the sender on the fabric's control channel), and the
# allocator reclaims acked space, so long and repeated runs keep cycling
# through the same buffer instead of degrading to dedicated per-message
# segments.  The allocator works in *virtual* byte offsets that increase
# monotonically; ``head`` is the next write position, ``tail`` the oldest
# unacknowledged byte, and a slot is live while ``head - tail`` stays
# within the capacity.  Slots are physically contiguous: an allocation
# that would straddle the physical end of the buffer skips ahead to the
# next wrap boundary and the padding is reclaimed together with the slot.
# A message that cannot be placed (outstanding slots still cover the ring)
# falls back to a dedicated per-message segment, and the fabric retires
# the rings at shutdown (parent side), after which mappings live on only
# as long as undead views need them.

#: (pid, name) -> _SenderRing, private to the creating process.
_SENDER_RINGS: dict = {}
#: (pid, name) -> _RingAttachment, private to the attaching process.
_ATTACHED_RINGS: dict = {}
#: Second element of a multi-consumer attach receipt (distinguishes it
#: from a ring receipt, whose second element is an integer slot end).
_MULTI_TOKEN = "multi"


def _unlink_by_name(name: str) -> None:
    """Unlink the segment called ``name`` if it still exists (best effort)."""
    if _shm_module is None:  # pragma: no cover
        return
    try:
        seg = _shm_module.SharedMemory(name=name)
    except FileNotFoundError:
        return
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - double delivery race
        pass
    seg.close()


#: Ring growth/shrink factor of the adaptive geometry.
_RING_GROWTH = 2
#: Consecutive quiet epochs (peak demand under a quarter of the capacity)
#: before the logical capacity is halved.
_RING_SHRINK_PATIENCE = 3


class _SenderRing:
    """The sender side of one ring segment: a circular slot allocator.

    The *physical* segment size is fixed at creation, but the allocator
    cycles through a **logical capacity** that may be smaller: tmpfs pages
    are committed lazily on first write, so bounding the bytes the ring
    actually cycles through bounds its resident memory.  The logical
    capacity *adapts*: :meth:`end_epoch` (called by persistent-pool
    workers at every run boundary) grows it -- up to the physical size --
    when the previous epoch's traffic did not fit, and shrinks it back
    after several quiet epochs.  Geometry only ever changes while the ring
    is empty (every slot acked), because outstanding slots pin their
    physical positions.
    """

    __slots__ = ("shm", "capacity", "max_capacity", "min_capacity",
                 "head", "tail", "_slots", "reclaimed_bytes", "wraps",
                 "resizes", "epoch_demand", "epoch_fallbacks",
                 "_quiet_epochs")

    def __init__(self, shm, *, capacity: int | None = None,
                 min_capacity: int | None = None):
        self.shm = shm
        # Physical offsets repeat modulo the capacity; keep it slot-aligned
        # so wrapped slots stay aligned too.
        if shm.size >= _ALIGN:
            self.max_capacity = shm.size - shm.size % _ALIGN
        else:
            self.max_capacity = shm.size
        if capacity is None:
            self.capacity = self.max_capacity
        else:
            capacity = min(int(capacity), self.max_capacity)
            if capacity >= _ALIGN:
                capacity -= capacity % _ALIGN
            self.capacity = max(capacity, 1)
        if min_capacity is None:
            self.min_capacity = self.capacity
        else:
            self.min_capacity = max(min(int(min_capacity), self.capacity), 1)
        self.head = 0  # virtual offset of the next write
        self.tail = 0  # virtual offset of the oldest unacked byte
        # Outstanding slots in allocation order: [virtual_end, acked].
        self._slots: list = []
        self.reclaimed_bytes = 0  # observability / tests
        self.wraps = 0
        self.resizes = 0
        #: Peak bytes the current epoch needed live at once (outstanding
        #: span or single-message size, whichever was larger).
        self.epoch_demand = 0
        #: Allocations the current epoch refused (degraded to dedicated
        #: segments).
        self.epoch_fallbacks = 0
        self._quiet_epochs = 0

    def allocate(self, nbytes: int) -> tuple[int, int] | None:
        """Reserve ``nbytes`` contiguously; return (physical_start, receipt).

        The receipt is the slot's virtual end offset -- what the receiver
        echoes back through :meth:`ack` when its views are gone.  Returns
        ``None`` when the unacknowledged slots leave no room.
        """
        aligned = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        if aligned > self.capacity:
            self.epoch_fallbacks += 1
            self.epoch_demand = max(self.epoch_demand, aligned)
            return None
        start = self.head
        position = start % self.capacity
        wrapped = position + aligned > self.capacity
        if wrapped:
            # The slot would straddle the physical end: skip to the wrap
            # boundary.  On an empty ring the skipped bytes are free to
            # reclaim immediately; otherwise the padding belongs to this
            # slot and is reclaimed with it.
            padded = start + (self.capacity - position)
            if self.tail == start:
                self.tail = padded
            start = padded
            position = 0
        end = start + aligned
        if end - self.tail > self.capacity:
            self.epoch_fallbacks += 1
            self.epoch_demand = max(self.epoch_demand, aligned)
            return None
        if wrapped:
            self.wraps += 1
        self.head = end
        self._slots.append([end, False])
        self.epoch_demand = max(self.epoch_demand, end - self.tail)
        return position, end

    def end_epoch(self) -> int:
        """Close one traffic epoch; adapt the logical capacity; return it.

        Grows (by doubling, clamped to the physical segment) when the
        epoch had any refused allocation whose demand a bigger ring would
        have served, and shrinks (by halving, floored at ``min_capacity``)
        after :data:`_RING_SHRINK_PATIENCE` consecutive epochs whose peak
        demand used under a quarter of the capacity.  A ring with
        outstanding slots keeps its geometry and carries the epoch's
        statistics forward.
        """
        if self.head != self.tail:  # outstanding slots pin the geometry
            return self.capacity
        demand, fallbacks = self.epoch_demand, self.epoch_fallbacks
        self.epoch_demand = 0
        self.epoch_fallbacks = 0
        if fallbacks and self.capacity < self.max_capacity:
            target = self.capacity * _RING_GROWTH
            while target < demand:
                target *= _RING_GROWTH
            self._resize(min(target, self.max_capacity))
            self._quiet_epochs = 0
        elif demand * 4 <= self.capacity and self.capacity > self.min_capacity:
            self._quiet_epochs += 1
            if self._quiet_epochs >= _RING_SHRINK_PATIENCE:
                self._resize(max(self.capacity // _RING_GROWTH,
                                 self.min_capacity))
                self._quiet_epochs = 0
        else:
            self._quiet_epochs = 0
        return self.capacity

    def _resize(self, target: int) -> None:
        """Set a new logical capacity (only ever called on an empty ring)."""
        if target >= _ALIGN:
            target -= target % _ALIGN
        target = max(min(target, self.max_capacity), 1)
        if target == self.capacity:
            return
        self.capacity = target
        # The ring is empty, so the virtual space can restart at zero;
        # stale receipts for pre-resize slots find no matching slot and
        # are ignored by ack() as usual.
        self.head = self.tail = 0
        self.resizes += 1

    def ack(self, receipt: int) -> None:
        """Mark the slot ending at virtual offset ``receipt`` as consumed."""
        for slot in self._slots:
            if slot[0] == receipt:
                slot[1] = True
                break
        else:
            return  # unknown / duplicate receipt: ignore
        # Reclaim the contiguous acked prefix (slots free strictly in
        # allocation order, like a ring buffer's tail).
        while self._slots and self._slots[0][1]:
            end = self._slots.pop(0)[0]
            self.reclaimed_bytes += end - self.tail
            self.tail = end


class _RingAttachment:
    """The receiver side: one cached mapping plus live-view accounting."""

    __slots__ = ("shm", "_outstanding", "_retired")

    def __init__(self, shm):
        self.shm = shm
        self._outstanding = 0
        self._retired = False

    def watch(self, view: np.ndarray) -> None:
        self._outstanding += 1
        weakref.finalize(view, self._release)

    def retire(self) -> None:
        self._retired = True
        self._maybe_close()

    def _release(self) -> None:
        self._outstanding -= 1
        self._maybe_close()

    def _maybe_close(self) -> None:
        if self._retired and self._outstanding <= 0 and self.shm is not None:
            shm, self.shm = self.shm, None
            try:
                shm.close()
            except Exception:  # pragma: no cover - interpreter shutdown races
                pass


def _sender_ring(name: str, ring_bytes: int, *, max_bytes: int | None = None,
                 min_bytes: int | None = None) -> "_SenderRing | None":
    """This process's sender ring called ``name``, created on first use.

    The physical segment is sized ``max_bytes`` (tmpfs commits pages
    lazily, so headroom for adaptive growth is free until written) with
    the logical capacity starting at ``ring_bytes``; when the bigger
    segment cannot be created the ring falls back to a fixed-geometry
    segment of ``ring_bytes``.
    """
    key = (os.getpid(), name)
    ring = _SENDER_RINGS.get(key)
    if ring is None:
        size = max(max_bytes or ring_bytes, ring_bytes)
        shm = None
        try:
            shm = _shm_module.SharedMemory(name=name, create=True, size=size)
        except Exception:
            if size > ring_bytes:
                try:
                    shm = _shm_module.SharedMemory(name=name, create=True,
                                                   size=ring_bytes)
                except Exception:
                    return None
            else:
                return None
        ring = _SenderRing(shm, capacity=ring_bytes, min_capacity=min_bytes)
        _SENDER_RINGS[key] = ring
    return ring


def _slot_release(ack, name: str, receipt: int, n_views: int):
    """Build the finalizer that acks one ring slot once its views are dead.

    Every zero-copy view of the slot's message registers the returned
    callable with ``weakref.finalize``; the last view to be garbage
    collected fires ``ack((name, receipt))``, which the fabric routes back
    to the sending process.  The callable must not reference the views
    themselves (that would keep them alive forever).
    """
    remaining = [int(n_views)]

    def release() -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            try:
                ack((name, receipt))
            except Exception:  # pragma: no cover - interpreter shutdown races
                pass

    return release


def _attached_ring(name: str) -> "_RingAttachment | None":
    """This process's cached attachment of the ring called ``name``."""
    key = (os.getpid(), name)
    attachment = _ATTACHED_RINGS.get(key)
    if attachment is None:
        sender = _SENDER_RINGS.get(key)
        try:
            if sender is not None and sender.shm is not None:
                # Self-delivery: reuse the sender mapping instead of a
                # second attach of our own segment.
                attachment = _RingAttachment(sender.shm)
            else:
                attachment = _RingAttachment(_shm_module.SharedMemory(name=name))
        except FileNotFoundError:
            return None
        _ATTACHED_RINGS[key] = attachment
    return attachment


class SharedMemoryTransport(PayloadTransport):
    """Ship bulk array payloads through shared-memory segments.

    Parameters
    ----------
    min_bytes:
        Arrays smaller than this stay inline in the queue record (the
        per-segment syscalls only pay off for bulk payloads).  The default
        of 8 KiB keeps control traffic on the fast path while every block
        of a realistically sized permutation goes zero-copy.
    ring_bytes:
        Initial *logical* capacity of one per-sender ring segment (default
        32 MiB).  The ring wraps around: receiver acknowledgements
        (flowing back on the fabric's control channel once the zero-copy
        views of a slot are garbage collected) let the allocator reclaim
        consumed slots, so sustained traffic cycles through the buffer
        indefinitely.  A message that cannot be placed -- outstanding
        unacknowledged slots still cover the ring -- uses a dedicated
        per-message segment instead.
    ring_max_bytes:
        Physical size of the ring segment, and the ceiling of adaptive
        growth (default ``8 * ring_bytes``).  tmpfs commits pages lazily,
        so the headroom is free until traffic actually needs it.
    ring_min_bytes:
        Floor of adaptive shrinking (default ``ring_bytes // 32``, at
        least one alignment unit).
    adaptive_ring:
        When True (default), persistent-pool workers adapt each ring's
        logical capacity at run boundaries: epochs whose traffic did not
        fit grow the ring (killing the oversize-segment fallback for
        steady workloads), sustained quiet epochs shrink it back.  Set
        False to pin the geometry at ``ring_bytes``.
    """

    name = "sharedmem"
    #: Tells the fabric to start the shared resource tracker pre-fork.
    uses_shared_memory = True

    def __init__(self, *, min_bytes: int = 8192, ring_bytes: int = 32 * 1024 * 1024,
                 ring_max_bytes: int | None = None,
                 ring_min_bytes: int | None = None,
                 adaptive_ring: bool = True):
        self.min_bytes = int(min_bytes)
        self.ring_bytes = int(ring_bytes)
        if self.min_bytes < 1:
            raise ValidationError(
                f"min_bytes must be >= 1, got {self.min_bytes}"
            )
        if self.ring_bytes < 1:
            raise ValidationError(
                f"ring_bytes must be >= 1, got {self.ring_bytes}"
            )
        self.adaptive_ring = bool(adaptive_ring)
        if ring_max_bytes is None:
            ring_max_bytes = 8 * self.ring_bytes if self.adaptive_ring else self.ring_bytes
        self.ring_max_bytes = int(ring_max_bytes)
        if self.ring_max_bytes < self.ring_bytes:
            raise ValidationError(
                f"ring_max_bytes must be >= ring_bytes, got {self.ring_max_bytes}"
            )
        if ring_min_bytes is None:
            ring_min_bytes = max(self.ring_bytes // 32, _ALIGN)
        self.ring_min_bytes = max(int(ring_min_bytes), 1)
        #: Monotonic per-instance counters (see TransportStats); tests and
        #: the bench harness assert the once-per-run encode and the
        #: adaptive ring's fallback behaviour through these.
        self.stats = TransportStats()
        #: (creator pid, segment name) -> remaining consumer count of the
        #: multi-consumer segments this instance encoded (parent side).
        self._multi: dict = {}

    def cache_key(self) -> tuple:
        return ("sharedmem", self.min_bytes, self.ring_bytes,
                self.ring_max_bytes, self.ring_min_bytes, self.adaptive_ring)

    # -- encoding -----------------------------------------------------------
    def _pack(self, payload):
        """Walk ``payload`` claiming bulk arrays: (slabs, offsets, cursor, inner)."""
        slabs: list[np.ndarray] = []
        offsets: list[int] = []
        cursor = 0

        def claim(arr: np.ndarray):
            nonlocal cursor
            if arr.nbytes < self.min_bytes:
                return None
            contiguous = np.ascontiguousarray(arr)
            slabs.append(contiguous)
            offset = cursor
            offsets.append(offset)
            cursor += (contiguous.nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
            # ascontiguousarray promotes 0-d to 1-d; keep the caller's shape.
            return (SHMREF, len(slabs) - 1, contiguous.dtype, arr.shape)

        inner = walk_encode(payload, claim)
        return slabs, offsets, cursor, inner

    def _write_segment(self, slabs, offsets, cursor):
        """Copy the slabs into a fresh dedicated segment; return its name.

        Returns ``None`` when segment creation fails (e.g. /dev/shm filled
        up), in which case the caller degrades to the inline codec.
        """
        try:
            seg = _shm_module.SharedMemory(create=True, size=max(cursor, 1))
        except Exception:
            # Creation can start failing later; degrade to the inline
            # codec for this and future messages.
            global _PROBE
            _PROBE = (os.getpid(), False)
            return None
        try:
            for slab, offset in zip(slabs, offsets):
                dst = np.ndarray(slab.shape, dtype=slab.dtype,
                                 buffer=seg.buf, offset=offset)
                dst[...] = slab
                del dst
        except BaseException:
            seg.close()
            seg.unlink()
            raise
        name = seg.name
        seg.close()  # the sender's mapping is no longer needed
        self.stats.segments_created += 1
        return name

    def encode(self, payload, *, ring: str | None = None):
        self.stats.encode_calls += 1
        if not shared_memory_available():
            return walk_encode(payload, lambda arr: None)

        slabs, offsets, cursor, inner = self._pack(payload)
        if not slabs:
            return inner
        self.stats.bytes_encoded += cursor

        if ring is not None:
            sender = _sender_ring(ring, self.ring_bytes,
                                  max_bytes=self.ring_max_bytes,
                                  min_bytes=self.ring_min_bytes)
            if sender is not None:
                alloc = sender.allocate(cursor)
                if alloc is not None:
                    base, receipt = alloc
                    for slab, offset in zip(slabs, offsets):
                        dst = np.ndarray(slab.shape, dtype=slab.dtype,
                                         buffer=sender.shm.buf, offset=base + offset)
                        dst[...] = slab
                        del dst
                    self.stats.ring_messages += 1
                    return (SHMRING, ring,
                            tuple(base + offset for offset in offsets),
                            receipt, inner)
                # The allocator refused (message bigger than the logical
                # capacity, or unacked slots still cover the ring): fall
                # through to a dedicated segment.  The refusal is recorded
                # in the ring's epoch statistics, so the adaptive geometry
                # grows at the next epoch boundary and steady workloads
                # stop paying this path.
                self.stats.oversize_fallbacks += 1
        name = self._write_segment(slabs, offsets, cursor)
        if name is None:
            return walk_encode(payload, lambda arr: None)
        return (SHMSEG, name, tuple(offsets), inner)

    def encode_shared(self, payload, n_consumers: int, *, ring: str | None = None):
        """Encode ``payload`` once for ``n_consumers`` independent receivers.

        Bulk arrays go into one dedicated segment whose refcount starts at
        ``n_consumers``; every receiver's :meth:`decode` attaches the
        segment (without unlinking) and acknowledges the attach, and the
        encoder's :meth:`ring_ack` unlinks the segment after the last
        acknowledgement (undelivered copies are released by
        :meth:`dispose`, abandoned ones by :meth:`retire_shared`).
        Payloads without bulk arrays return the plain in-band record,
        which any number of consumers can decode.
        """
        if n_consumers < 1:
            raise ValidationError(
                f"n_consumers must be >= 1, got {n_consumers}"
            )
        self.stats.shared_encode_calls += 1
        if not shared_memory_available():
            return walk_encode(payload, lambda arr: None)
        slabs, offsets, cursor, inner = self._pack(payload)
        if not slabs:
            return inner
        self.stats.bytes_encoded += cursor
        name = self._write_segment(slabs, offsets, cursor)
        if name is None:
            return walk_encode(payload, lambda arr: None)
        self.stats.segments_created -= 1  # counted as multi instead
        self.stats.multi_segments_created += 1
        self._multi[(os.getpid(), name)] = int(n_consumers)
        return (SHMMULTI, name, tuple(offsets), inner)

    # -- decoding -----------------------------------------------------------
    def decode(self, record, *, ack=None):
        self.stats.decode_calls += 1
        if record[0] == SHMRING:
            return self._decode_ring(record, ack)
        if record[0] == SHMMULTI:
            return self._decode_multi(record, ack)
        if record[0] != SHMSEG:
            return walk_decode(record)
        _, name, offsets, inner = record
        try:
            seg = _shm_module.SharedMemory(name=name)
        except FileNotFoundError:
            raise CommunicationError(
                f"shared-memory segment {name!r} vanished before it was "
                "received (the run was probably aborted)"
            ) from None
        try:
            seg.unlink()  # memory stays alive while mapped; the name goes now
        except FileNotFoundError:  # pragma: no cover - double delivery race
            pass
        lease = _SegmentLease(seg, len(offsets))

        def resolve(ref):
            _, index, dtype, shape = ref
            view = np.ndarray(shape, dtype=dtype, buffer=seg.buf,
                              offset=offsets[index])
            lease.watch(view)
            return view

        return walk_decode(inner, resolve)

    def _decode_ring(self, record, ack=None):
        _, name, offsets, receipt, inner = record
        attachment = _attached_ring(name)
        if attachment is None:
            raise CommunicationError(
                f"ring segment {name!r} vanished before its message was "
                "received (the run was probably aborted)"
            )
        release = None if ack is None else _slot_release(ack, name, receipt,
                                                         len(offsets))

        def resolve(ref):
            _, index, dtype, shape = ref
            view = np.ndarray(shape, dtype=dtype, buffer=attachment.shm.buf,
                              offset=offsets[index])
            attachment.watch(view)
            if release is not None:
                weakref.finalize(view, release)
            return view

        return walk_decode(inner, resolve)

    def _decode_multi(self, record, ack=None):
        """Decode one consumer's copy of a multi-consumer record.

        Attaches the segment *without unlinking it* (the encoder owns the
        name and unlinks after the last acknowledgement); the mapping is
        closed once every returned view has been garbage collected.  The
        acknowledgement fires at *attach* time -- POSIX keeps the memory
        alive while the mapping is open, so the encoder may unlink the
        name as soon as every consumer holds a mapping, well before the
        views die.
        """
        _, name, offsets, inner = record
        try:
            seg = _shm_module.SharedMemory(name=name)
        except FileNotFoundError:
            raise CommunicationError(
                f"multi-consumer segment {name!r} vanished before it was "
                "received (the run was probably aborted)"
            ) from None
        lease = _SegmentLease(seg, len(offsets))

        def resolve(ref):
            _, index, dtype, shape = ref
            view = np.ndarray(shape, dtype=dtype, buffer=seg.buf,
                              offset=offsets[index])
            lease.watch(view)
            return view

        payload = walk_decode(inner, resolve)
        if ack is not None:
            try:
                ack((name, _MULTI_TOKEN))
            except Exception:  # pragma: no cover - acks are best effort
                pass
        return payload

    # -- acknowledgements ----------------------------------------------------
    def ring_ack(self, receipt) -> None:
        """Apply a receiver acknowledgement in the encoding process.

        ``receipt`` is what a receiver's ``decode`` handed to its ``ack``
        callback: the ``(ring name, virtual slot end)`` pair of a ring
        slot whose views are gone -- the named slot (and any contiguous
        acked predecessors) becomes reusable -- or the ``(segment name,
        token)`` attach receipt of a multi-consumer segment, which
        decrements its refcount and unlinks the segment after the last
        consumer.  Unknown receipts -- duplicate delivery, a ring that
        was already retired -- are ignored.
        """
        try:
            name, end = receipt
        except (TypeError, ValueError):
            return
        if end == _MULTI_TOKEN:
            self._multi_ack(name)
            return
        ring = _SENDER_RINGS.get((os.getpid(), name))
        if ring is not None:
            ring.ack(end)

    def _multi_ack(self, name: str) -> None:
        """One consumer released its share of a multi-consumer segment."""
        key = (os.getpid(), name)
        remaining = self._multi.get(key)
        if remaining is None:
            return
        if remaining <= 1:
            self._multi.pop(key, None)
            _unlink_by_name(name)
        else:
            self._multi[key] = remaining - 1

    # -- disposal -----------------------------------------------------------
    def dispose(self, record) -> None:
        """Release a record that will never be decoded.

        Dedicated segments are unlinked outright; a multi-consumer record
        releases one undelivered copy's share of the refcount (the caller
        disposes each queued copy separately).  Ring records need no
        per-message disposal -- the fabric retires whole rings via
        :meth:`retire_rings` at shutdown.
        """
        if not (isinstance(record, tuple) and record):
            return
        if record[0] == SHMMULTI:
            self._multi_ack(record[1])
            return
        if record[0] != SHMSEG:
            return
        _unlink_by_name(record[1])

    def retire_shared(self) -> None:
        """Unlink every outstanding multi-consumer segment of this process.

        Called during fabric shutdown: consumers that crashed before
        acknowledging leave the refcount above zero, and the names they
        never attached must not outlive the run.
        """
        pid = os.getpid()
        for key in [k for k in self._multi if k[0] == pid]:
            self._multi.pop(key, None)
            _unlink_by_name(key[1])

    # -- ring lifecycle -----------------------------------------------------
    def ring_epoch(self, name: str) -> None:
        """Epoch boundary of this process's sender ring called ``name``.

        Persistent-pool workers call this at the start of every dispatched
        run (after applying the receipts batched into the dispatch, so a
        fully acked ring is observably empty); the ring closes its traffic
        epoch and adapts its logical capacity within
        ``[ring_min_bytes, ring_max_bytes]``.  A no-op for rings this
        process does not own, and when ``adaptive_ring`` is off.
        """
        if not self.adaptive_ring:
            return
        ring = _SENDER_RINGS.get((os.getpid(), name))
        if ring is not None:
            ring.end_epoch()

    def retire_rings(self, names) -> None:
        """Unlink the named ring segments and drop this process's handles.

        Called by the fabric (in the parent) at shutdown on every exit
        path.  Unlinking removes only the names; receiver mappings stay
        alive until the last zero-copy view into them is garbage
        collected.
        """
        if _shm_module is None:  # pragma: no cover
            return
        pid = os.getpid()
        for name in names:
            unlinked = False
            sender = _SENDER_RINGS.pop((pid, name), None)
            attachment = _ATTACHED_RINGS.pop((pid, name), None)
            shared_handle = (sender is not None and attachment is not None
                             and attachment.shm is sender.shm)
            if sender is not None:
                try:
                    sender.shm.unlink()
                except FileNotFoundError:
                    pass
                unlinked = True
                if not shared_handle:
                    try:
                        sender.shm.close()
                    except Exception:  # pragma: no cover - exported views
                        pass
            if attachment is not None:
                if not unlinked:
                    try:
                        attachment.shm.unlink()
                    except FileNotFoundError:
                        pass
                    unlinked = True
                attachment.retire()
            if not unlinked:
                # A ring created by a (now finished) worker that this
                # process never attached; unlink it by name.
                try:
                    seg = _shm_module.SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                seg.close()


register_transport("sharedmem", SharedMemoryTransport)
