"""Process-per-rank execution backend: true multiprocess parallelism.

Each virtual processor runs in its own OS process, so ranks execute with
genuine hardware parallelism (no shared GIL) -- the regime the paper's
experiments on the SGI Origin actually measured.  The ranks communicate
through a :class:`ProcessFabric`: one multiprocessing queue per destination
rank plus a shared multiprocessing barrier, speaking the same
``put``/``get``/``barrier_wait``/``abort`` protocol as the in-process
:class:`~repro.pro.communicator.MessageFabric`, so every communicator
operation (point-to-point, collectives, barriers) works unchanged.

Design points:

* **Deterministic seeding.**  The machine builds the per-rank random
  streams *in the parent* (exactly as for the inline and thread backends)
  and ships each rank its own generator, so for a fixed machine seed the
  results are bit-identical across the inline, thread and process backends
  -- and across payload transports, which never touch the streams.
* **Pluggable payload transport.**  The queues carry only small control
  records; how the payload bytes cross the address-space gap is decided by
  a :class:`~repro.pro.backends.transport.PayloadTransport`:
  ``transport="sharedmem"`` (default) ships bulk NumPy arrays through
  ``multiprocessing.shared_memory`` segments with zero-copy views on the
  receive side, ``transport="pickle"`` keeps everything in the queue pipe
  as ``(dtype, shape, bytes)`` buffer records.  Results shipped back to
  the caller use the same transport.
* **Cost accounting survives the address-space gap.**  Each worker ships
  its :class:`~repro.pro.cost.CostRecorder` and random-variate count back
  together with its result; :meth:`ProcessBackend.run` folds them into the
  caller's contexts so cost reports are backend-independent.
* **Error propagation** mirrors the thread backend: a failing rank aborts
  the shared barrier (siblings blocked in ``barrier()``/``recv`` fail fast),
  and the first real error by rank order -- preferring causes over
  :class:`~repro.util.errors.CommunicationError` symptoms -- is re-raised in
  the caller wrapped in :class:`~repro.util.errors.BackendError`.
* **Clean shutdown.**  After every run -- successful, failed, aborted or
  timed out -- the backend drains the fabric's queues and *disposes* every
  undelivered record, so shared-memory segments of in-flight messages are
  unlinked instead of leaking (no ``resource_tracker`` warnings).

The backend prefers the ``fork`` start method (cheap, closures allowed);
on platforms without it, ``spawn`` is used and programs/arguments must be
picklable.

With ``persistent=True`` the per-run spawn disappears entirely: ranks run
on a standing :class:`~repro.pro.backends.pool.WorkerPool` of long-lived
daemon processes that keep their fabric endpoints and shared-memory ring
segments alive across runs, and successive programs are dispatched as
lightweight run-epoch records (see :mod:`repro.pro.backends.pool` for the
contract: picklable programs, poison-on-failure crash semantics, explicit
or atexit shutdown).
"""

from __future__ import annotations

import inspect
import multiprocessing
import pickle
import queue as _pyqueue
import threading
import time
import traceback
import uuid
from typing import Callable, Sequence

from repro.pro.backends.registry import (
    BackendCapabilities,
    ExecutionBackend,
    register_backend,
)
from repro.pro.backends.transport import (
    PayloadTransport,
    PickleTransport,
    resolve_transport,
)
from repro.pro.resilience import current_deadline
from repro.pro.telemetry import capture_rank_telemetry
from repro.util.errors import (
    BackendError,
    CommunicationError,
    DeadlineError,
    TransientBackendError,
    ValidationError,
    attach_wait_context,
    is_transient_failure,
    wrap_rank_failure,
)
from repro.util.timeouts import scale_timeout

__all__ = ["ProcessBackend", "ProcessFabric"]

# Backwards-compatible aliases of the historic module-level codec: the
# buffer-based encoding now lives in the pickle transport.
_PICKLE_CODEC = PickleTransport()
_encode_payload = _PICKLE_CODEC.encode
_decode_payload = _PICKLE_CODEC.decode

#: Control-channel tag of ring-slot acknowledgements.  Records carrying it
#: are transport receipts, not messages: ``get`` applies them to the local
#: sender rings and keeps waiting for the real message.
_RING_ACK_TAG = "__ring-ack__"

#: Control-channel tag of run-abort poison pills (see
#: :meth:`ProcessFabric.poison_waits`).  ``abort()`` only breaks the
#: *barrier*; a rank blocked in a queue receive keeps waiting out its full
#: fabric timeout -- while holding the inbox's shared reader lock, which a
#: ``terminate()`` would orphan and wedge the queue for any respawned
#: successor.  A poison record makes the blocked receive fail fast with a
#: :class:`~repro.util.errors.CommunicationError` instead, so the rank
#: exits cleanly through its own error path.
_ABORT_TAG = "__abort__"


class ProcessFabric:
    """Message fabric over multiprocessing queues and a shared barrier.

    One inbox queue per destination rank carries ``(src, tag, record)``
    triples, where ``record`` is produced by the fabric's payload
    transport; mismatched messages read while waiting for a specific
    ``(src, tag)`` are parked locally (each rank lives in its own process,
    so the parking dict is private to that rank) and served to later
    receives, preserving per-source FIFO order.
    """

    def __init__(self, n_procs: int, *, timeout: float = 60.0, mp_context=None,
                 transport: str | PayloadTransport | None = None):
        if n_procs < 1:
            raise ValidationError(f"n_procs must be >= 1, got {n_procs}")
        self.n_procs = n_procs
        self.timeout = timeout
        self.transport = resolve_transport(transport)
        if getattr(self.transport, "uses_shared_memory", False):
            # The resource tracker must exist before the rank processes
            # fork so that all of them share it (see
            # ensure_resource_tracker); in-band transports never touch
            # shared memory and skip the tracker daemon entirely.
            from repro.pro.backends.sharedmem import ensure_resource_tracker

            ensure_resource_tracker()
        self._mp = mp_context if mp_context is not None else multiprocessing.get_context()
        self._inboxes = [self._mp.Queue() for _ in range(n_procs)]
        self._barrier = self._mp.Barrier(n_procs)
        # (src, tag) -> list of decoded payloads, private to the rank's process.
        self._parked: dict = {}
        #: Run-epoch of a *standing* fabric (the worker pool's).  One-shot
        #: fabrics leave it None and tags travel unscoped.  When set, every
        #: message tag is wrapped as ``(epoch, tag)`` so a message that a
        #: successful run sent but never consumed can never be delivered to
        #: a later run's receive with the same tag -- it parks under its
        #: own epoch until the worker clears stale state at the next
        #: dispatch (see ``_pool_worker_main``).
        self.epoch: int | None = None
        # One ring-segment name per sender rank (see the sharedmem
        # transport): a reusable bulk buffer that amortises segment
        # creation over every message the rank sends during this run.
        # Transports whose encode() has no ring parameter simply never see
        # the names.
        try:
            ring_aware = "ring" in inspect.signature(self.transport.encode).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            ring_aware = False
        try:
            ack_aware = "ack" in inspect.signature(self.transport.decode).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            ack_aware = False
        self._ack_aware = ack_aware and hasattr(self.transport, "ring_ack")
        token = uuid.uuid4().hex[:12]
        self._ring_names = (
            [f"pro{token}r{src}" for src in range(n_procs)] if ring_aware else None
        )

    def encode_payload(self, src: int, payload):
        """Encode a payload sent by rank ``src`` (using its ring if any)."""
        if self._ring_names is not None:
            return self.transport.encode(payload, ring=self._ring_names[src])
        return self.transport.encode(payload)

    def _ack_sink(self, src: int):
        """Callable routing a decode acknowledgement back to rank ``src``.

        The receipt travels as an in-band control record through the
        sender's inbox; the sender applies it to its ring the next time it
        reads the inbox.  Fired from ``weakref`` finalizers, possibly
        during interpreter shutdown, so failures are swallowed.
        """
        inbox = self._inboxes[src]

        def _ack(receipt) -> None:
            try:
                inbox.put((-1, _RING_ACK_TAG, receipt))
            except Exception:  # pragma: no cover - queue already closed
                pass

        return _ack

    def decode_payload(self, record, *, src: int | None = None, ack=None):
        """Decode ``record``, wiring up slot acknowledgements when possible.

        ``src`` routes acks back through the control channel (messages read
        by ``get``); ``ack`` passes an explicit callback instead (results
        decoded in the pool's parent, which batches receipts into the next
        dispatch).  With neither -- or an ack-unaware transport -- slots
        simply stay allocated until the ring is retired.
        """
        if self._ack_aware:
            if ack is None and src is not None and src >= 0:
                ack = self._ack_sink(src)
            if ack is not None:
                return self.transport.decode(record, ack=ack)
        return self.transport.decode(record)

    def begin_epoch(self, rank: int) -> None:
        """Open a run-epoch for rank ``rank``'s sender ring (adaptive hook).

        Persistent-pool workers call this at the start of every dispatched
        run, *after* applying the receipts the dispatch batched in, so the
        transport sees the ring in its settled state and can adapt its
        logical capacity to the previous epoch's traffic.  A no-op for
        transports without rings.
        """
        if self._ring_names is None:
            return
        hook = getattr(self.transport, "ring_epoch", None)
        if hook is None:
            return
        try:
            hook(self._ring_names[rank])
        except Exception:  # pragma: no cover - adaptation is best effort
            pass

    def _scoped(self, tag):
        """Wrap ``tag`` with the current run-epoch on standing fabrics."""
        return tag if self.epoch is None else (self.epoch, tag)

    def put(self, src: int, dst: int, tag, payload) -> None:
        """Deposit a message; never blocks (queues are unbounded)."""
        self._inboxes[dst].put(
            (src, self._scoped(tag), self.encode_payload(src, payload))
        )

    def get(self, src: int, dst: int, tag, pending: list):
        """Fetch the next message from ``src`` to ``dst`` carrying ``tag``.

        ``pending`` (the communicator-owned parking list of the in-process
        fabric) is honoured for interface compatibility but the fabric parks
        internally, keyed by source *and* tag, because one inbox serves all
        sources.
        """
        tag = self._scoped(tag)
        for idx, (msg_tag, payload) in enumerate(pending):
            if msg_tag == tag:
                pending.pop(idx)
                return payload
        bucket = self._parked.get((src, tag))
        if bucket:
            return bucket.pop(0)
        deadline = time.monotonic() + self.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise attach_wait_context(
                    CommunicationError(
                        f"rank {dst} timed out after {self.timeout}s waiting for a message "
                        f"from rank {src} with tag {tag!r}"
                    ),
                    rank=dst, op="recv", src=src,
                )
            try:
                msg_src, msg_tag, record = self._inboxes[dst].get(timeout=remaining)
            except _pyqueue.Empty:
                raise attach_wait_context(
                    CommunicationError(
                        f"rank {dst} timed out after {self.timeout}s waiting for a message "
                        f"from rank {src} with tag {tag!r}"
                    ),
                    rank=dst, op="recv", src=src,
                ) from None
            if msg_tag == _RING_ACK_TAG:
                # A receiver finished with one of our ring slots: reclaim
                # it and keep waiting for the real message.
                try:
                    self.transport.ring_ack(record)
                except Exception:  # pragma: no cover - acks are best effort
                    pass
                continue
            if msg_tag == _ABORT_TAG:
                # Poison pill: the run this receive belongs to was aborted.
                # Pills are stamped with the epoch they poisoned; one that
                # outlived its epoch (deposited while this rank was idle)
                # is stale and ignored.
                if record is None or self.epoch is None or record == self.epoch:
                    raise attach_wait_context(
                        CommunicationError(
                            f"rank {dst} abandoned a receive from rank {src}: "
                            "the run was aborted after a rank failure"
                        ),
                        rank=dst, op="recv", src=src,
                    )
                continue
            payload = self.decode_payload(record, src=msg_src)
            if msg_src == src and msg_tag == tag:
                return payload
            self._parked.setdefault((msg_src, msg_tag), []).append(payload)

    def barrier_wait(self) -> None:
        """Block until all ranks reach the barrier."""
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            # Rank-agnostic here; Communicator.barrier stamps the rank.
            raise attach_wait_context(
                CommunicationError(
                    f"barrier broken or timed out after {self.timeout}s "
                    "(a rank likely crashed or deadlocked)"
                ),
                op="barrier",
            ) from None

    def abort(self) -> None:
        """Break the barrier so that surviving ranks fail fast after a crash."""
        self._barrier.abort()

    def poison_waits(self, epoch: int | None = None) -> None:
        """Deposit one abort poison pill per inbox so blocked receives fail fast.

        The complement of :meth:`abort` for queue waits: a rank parked in
        ``get`` consumes the pill and raises ``CommunicationError``
        immediately instead of burning the full fabric timeout -- and,
        crucially for pool supervision, instead of having to be
        ``terminate()``-ed while it holds its inbox's shared reader lock
        (an orphaned lock would wedge the inbox for a respawned rank).
        ``epoch`` scopes the pill on standing fabrics: ranks running a
        *later* epoch skip stale pills.  Safe to call repeatedly.
        """
        for dst in range(self.n_procs):
            try:
                self._inboxes[dst].put((-1, _ABORT_TAG, epoch))
            except Exception:  # pragma: no cover - queue already closed
                pass

    def heal(self, respawned_ranks: Sequence[int] = ()) -> None:
        """Restore a *standing* fabric after a failed epoch (pool supervision).

        Called by :meth:`~repro.pro.backends.pool.WorkerPool.heal` once the
        failed epoch's workers have stopped and before replacements start:

        * every inbox is drained and the undelivered records handed to
          ``transport.dispose`` (the poisoned epoch's in-flight payloads
          must not pin shared-memory segments for the fabric's remaining
          lifetime) -- safe because no run is in flight and idle survivors
          only read their *task* queues;
        * the shared barrier, broken by ``abort()``, is reset for reuse;
        * each respawned rank gets a **fresh sender-ring name** and its old
          ring is retired: the dead worker owned the old segment, so the
          replacement re-handshakes its transport from scratch (receivers
          attach by the name embedded in each record, and survivors never
          read another rank's ring name, so the swap is race-free);
        * multi-consumer shared segments whose consumers died before
          acknowledging are retired (``retire_shared``).

        Ring acks parked in drained inboxes are dropped, not applied: ring
        bookkeeping lives in the owning worker's process, so a surviving
        ring keeps any un-acked slots pinned until it adapts or retires --
        bounded, and irrelevant in the common all-ranks-exited failure.
        """
        disposes = True  # duck-typed transports: assume dispose matters
        if isinstance(self.transport, PayloadTransport):
            disposes = type(self.transport).dispose is not PayloadTransport.dispose
        if disposes:
            # In-band transports skip the drain (nothing out-of-band to
            # release; epoch-scoped tags already quarantine stale records,
            # and a worker killed mid-put can leave a truncated pickle the
            # drain would block on -- hence the abandonable thread).
            drain = threading.Thread(
                target=self._drain_and_dispose, args=(scale_timeout(0.25),),
                name="pro-fabric-heal-drain", daemon=True,
            )
            drain.start()
            drain.join(timeout=scale_timeout(2.0))
        try:
            self._barrier.reset()
        except Exception:  # pragma: no cover - a broken reset fails the heal later
            pass
        if self._ring_names is not None and respawned_ranks:
            token = uuid.uuid4().hex[:12]
            retired = []
            for rank in respawned_ranks:
                retired.append(self._ring_names[rank])
                self._ring_names[rank] = f"pro{token}r{rank}"
            try:
                self.transport.retire_rings(retired)
            except Exception:  # pragma: no cover - retirement is best effort
                pass
        retire_shared = getattr(self.transport, "retire_shared", None)
        if retire_shared is not None:
            try:
                retire_shared()
            except Exception:  # pragma: no cover - retirement is best effort
                pass

    def shutdown(self, *, drain_timeout: float = 0.0) -> None:
        """Drain undelivered messages and release their transport resources.

        Called by the backend after the workers have stopped -- on success,
        failure, abort and timeout paths alike.  Every record still sitting
        in an inbox is handed to ``transport.dispose`` so out-of-band
        payloads (shared-memory segments) are unlinked rather than leaked.

        ``drain_timeout`` is the per-inbox wait for straggling feeder
        flushes; the backend passes 0 on clean runs (the inboxes are empty)
        and a short grace period after aborts and timeouts.

        Reading records back can block indefinitely: a worker terminated
        mid-``put`` of a large in-band record leaves a *truncated* message
        whose body ``Queue.get`` waits on forever (its timeout only covers
        the readiness poll, not the body read -- even the sharedmem
        transport queues multi-KB in-band bodies for sub-``min_bytes``
        arrays and when segment creation degrades to the inline codec).
        Two defences: transports whose ``dispose`` is the base-class no-op
        hold nothing out-of-band and are not drained at all, and the drain
        of the others runs on a watchdog thread that is abandoned -- with
        the stranded segments left to the resource tracker's exit-time
        cleanup, which is what it is for -- rather than hanging the caller.
        """
        disposes = True  # duck-typed transports: assume dispose matters
        if isinstance(self.transport, PayloadTransport):
            disposes = type(self.transport).dispose is not PayloadTransport.dispose
        if disposes:
            drain = threading.Thread(
                target=self._drain_and_dispose, args=(drain_timeout,),
                name="pro-fabric-drain", daemon=True,
            )
            drain.start()
            drain.join(timeout=scale_timeout(2.0) + 4.0 * drain_timeout)
        if self._ring_names is not None:
            try:
                self.transport.retire_rings(self._ring_names)
            except Exception:  # pragma: no cover - retirement is best effort
                pass
        retire_shared = getattr(self.transport, "retire_shared", None)
        if retire_shared is not None:
            try:
                retire_shared()  # multi-consumer segments abandoned mid-run
            except Exception:  # pragma: no cover - retirement is best effort
                pass
        for inbox in self._inboxes:
            inbox.close()
            inbox.cancel_join_thread()

    def _drain_and_dispose(self, drain_timeout: float) -> None:
        """Body of the shutdown drain (run on an abandonable thread)."""
        for inbox in self._inboxes:
            waited = False
            while True:
                try:
                    if drain_timeout > 0 and not waited:
                        waited = True
                        _src, _tag, record = inbox.get(timeout=drain_timeout)
                    else:
                        _src, _tag, record = inbox.get_nowait()
                except _pyqueue.Empty:
                    break
                except Exception:
                    # A worker terminated mid-put can leave a truncated
                    # pickle in the pipe; shutdown runs inside the
                    # backend's finally block, so nothing here may mask
                    # the real run error -- skip to the next inbox.
                    break
                try:
                    self.transport.dispose(record)
                except Exception:  # pragma: no cover - disposal is best effort
                    pass


class _VariateCount:
    """Stand-in for a remote rank's CountingRNG after the run has finished."""

    def __init__(self, total_variates: int):
        self.total_variates = int(total_variates)


def _portable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else a summarising BackendError.

    Either way the worker-side traceback travels along as a plain
    ``remote_traceback`` string attribute (it rides in the exception's
    ``__dict__`` through pickling), so the parent's
    :func:`~repro.util.errors.wrap_rank_failure` can chain the remote
    stack into the caller-side error.  The unpicklable fallback keeps the
    original's transient/fatal classification.
    """
    tb = traceback.format_exc()
    try:
        exc.remote_traceback = tb
    except Exception:  # pragma: no cover - exotic __slots__ exceptions
        pass
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        cls = TransientBackendError if is_transient_failure(exc) else BackendError
        summary = cls(f"{type(exc).__name__}: {exc}")
        summary.remote_traceback = tb
        return summary


def _worker_main(rank: int, ctx, program, args, kwargs, result_queue) -> None:
    """Entry point of one rank's process (module-level for spawn support)."""
    fabric = ctx.comm._fabric
    try:
        value = program(ctx, *args, **kwargs)
        variates = getattr(ctx.rng, "total_variates", None)
        encoded = fabric.encode_payload(rank, value)
        # Snapshot this rank's transport counters and ring geometry onto the
        # cost recorder so they repatriate with the existing result tuple.
        ctx.cost.telemetry = capture_rank_telemetry(fabric, rank)
        result_queue.put((rank, True, (encoded, ctx.cost, variates)))
    except BaseException as exc:  # noqa: BLE001 - report any rank failure
        try:
            fabric.abort()
        except Exception:
            pass
        try:
            # The barrier abort cannot reach siblings parked in queue
            # receives: poison every inbox so they fail fast instead of
            # waiting out the fabric timeout.
            fabric.poison_waits()
        except Exception:
            pass
        result_queue.put((rank, False, _portable_exception(exc)))


class ProcessBackend(ExecutionBackend):
    """Run one OS process per rank and collect per-rank results or errors.

    Parameters
    ----------
    start_method:
        ``"fork"`` (default where available), ``"spawn"`` or
        ``"forkserver"``.  With ``spawn``/``forkserver`` the program and its
        arguments must be picklable.
    shutdown_grace:
        Seconds to wait for worker processes to exit after the run has
        finished (or failed) before terminating them.
    transport:
        Payload transport name or instance: ``"sharedmem"`` (default;
        zero-copy shared-memory segments for bulk arrays, transparent
        fallback to the pickle codec where shared memory is unavailable)
        or ``"pickle"`` (everything through the queue pipe).  Results are
        bit-identical across transports for a fixed machine seed.
    persistent:
        When True, ranks run on a standing :class:`~repro.pro.backends.
        pool.WorkerPool` of long-lived daemon processes instead of being
        spawned per run: the pool (one per ``n_procs``) is created on the
        first run and reused by every later run, amortising process spawn
        and shared-memory ring setup.  Programs and arguments must then be
        picklable even under ``fork`` (they travel through the dispatch
        queue; ``cloudpickle`` widens this to closures when installed).
        Results stay bit-identical to the non-persistent path for a fixed
        machine seed.  Call :meth:`close` (or let the pool's ``atexit``
        hook run) to release the workers; a failed run *poisons* the pool
        and subsequent runs raise :class:`~repro.util.errors.BackendError`.
    pool_scope:
        Where persistent pools live.  ``"backend"`` (default): private to
        this backend instance, released by :meth:`close`.  ``"process"``:
        the **process-wide default pool cache**
        (:func:`repro.pro.backends.pool.get_default_pool`) -- warm fleets
        keyed by ``(p, transport, timeout, start method)`` are shared by
        every backend instance that asks, survive :meth:`close`, and are
        torn down by :func:`repro.pro.backends.pool.clear_default_pools`
        or at interpreter exit.  This is what makes repeated driver calls
        (``backend="process"``) warm by default.
    """

    name = "process"
    capabilities = BackendCapabilities(
        multirank=True,
        blocking_p2p=True,
        true_parallelism=True,
        shared_address_space=False,
        self_healing=True,
    )

    def __init__(self, *, start_method: str | None = None, shutdown_grace: float = 5.0,
                 transport: str | PayloadTransport | None = "sharedmem",
                 persistent: bool = False, pool_scope: str = "backend"):
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        if start_method not in methods:
            raise ValidationError(
                f"start method {start_method!r} is not available on this platform; "
                f"choose from {methods}"
            )
        if pool_scope not in ("backend", "process"):
            raise ValidationError(
                f"pool_scope must be 'backend' or 'process', got {pool_scope!r}"
            )
        self.start_method = start_method
        self.shutdown_grace = float(shutdown_grace)
        self.transport = resolve_transport(transport)
        self.persistent = bool(persistent)
        self.pool_scope = pool_scope
        self._mp = multiprocessing.get_context(start_method)
        self._pools: dict = {}  # n_procs -> WorkerPool
        self._shared_pools: set = set()  # n_procs owned by the default cache

    def _pool(self, n_procs: int, *, timeout: float):
        """The standing pool for ``n_procs`` ranks, created on first use.

        With ``pool_scope="process"`` the pool comes from (and is owned
        by) the process-wide default cache, so several backend instances
        with an equivalent configuration share one warm fleet; a
        transport that opts out of cache keying (``cache_key() is None``)
        falls back to a backend-private pool.
        """
        # (imported from the submodule directly: the package __init__
        # re-exports the pool() context manager under the same name)
        from repro.pro.backends.pool import WorkerPool, get_default_pool

        if self.pool_scope == "process":
            # Always resolved through the cache (no local fast path): the
            # lookup refreshes the fleet's LRU recency and applies the
            # cache's health checks (poison eviction, fork ownership).
            shared = get_default_pool(
                n_procs, timeout=timeout, mp_context=self._mp,
                transport=self.transport, shutdown_grace=self.shutdown_grace,
                start_method=self.start_method,
            )
            if shared is not None:
                self._pools[n_procs] = shared
                self._shared_pools.add(n_procs)
                return shared
        existing = self._pools.get(n_procs)
        if (existing is not None and not existing.closed
                and not existing.poisoned
                and getattr(existing, "in_owner_process", True)):
            return existing
        pool = self._pools.get(n_procs)
        if pool is None or pool.closed:
            pool = WorkerPool(
                n_procs, timeout=timeout, mp_context=self._mp,
                transport=self.transport, shutdown_grace=self.shutdown_grace,
            )
            self._pools[n_procs] = pool
            self._shared_pools.discard(n_procs)
        return pool

    def close(self) -> None:
        """Shut down every backend-private worker pool (idempotent).

        Pools borrowed from the process-wide default cache are left warm
        -- they are owned by :mod:`repro.pro.backends.pool` and released
        by ``clear_default_pools()`` or the interpreter-exit hook.
        """
        for n_procs, pool in list(self._pools.items()):
            if n_procs not in self._shared_pools:
                pool.close()
        self._pools.clear()
        self._shared_pools.clear()

    def heal(self) -> bool:
        """Recover poisoned standing pools in place (resilience hook).

        Called by :func:`~repro.pro.resilience.run_with_recovery` between
        attempts.  Backend-private pools are healed through
        :meth:`~repro.pro.backends.pool.WorkerPool.heal` -- only the dead
        ranks are respawned into the standing fabric; a pool that cannot be
        healed is dropped so the next run builds a fresh one.  Pools
        borrowed from the process-wide cache are left to the cache, which
        heals or evicts them on the next lookup.  Non-persistent runs have
        nothing standing and always return True.
        """
        healthy = True
        for n_procs, pool in list(self._pools.items()):
            if n_procs in self._shared_pools:
                # The default cache owns it; drop our reference so _pool()
                # re-resolves (and the cache heals/evicts) next run.
                self._pools.pop(n_procs, None)
                self._shared_pools.discard(n_procs)
                continue
            if pool.closed or not pool.poisoned:
                continue
            if not pool.heal():
                pool.close()
                self._pools.pop(n_procs, None)
                healthy = False
        return healthy

    def create_fabric(self, n_procs: int, *, timeout: float) -> ProcessFabric:
        """Build (or, when persistent, reuse) the multiprocess message fabric."""
        if self.persistent:
            return self._pool(n_procs, timeout=timeout).fabric
        return ProcessFabric(n_procs, timeout=timeout, mp_context=self._mp,
                             transport=self.transport)

    # -- running ------------------------------------------------------------
    def run(self, contexts: Sequence, program: Callable, args: tuple, kwargs: dict) -> list:
        """Execute ``program(ctx, *args, **kwargs)`` with one process per rank."""
        n = len(contexts)
        if n == 0:
            return []
        fabric = contexts[0].comm._fabric
        if not isinstance(fabric, ProcessFabric):
            raise BackendError(
                "the process backend needs contexts wired to its ProcessFabric; "
                "create the machine with backend='process' instead of passing "
                "contexts built for another backend"
            )
        if self.persistent:
            pool = self._pools.get(n)
            if pool is None or pool.fabric is not fabric:
                raise BackendError(
                    "persistent runs need contexts wired to the pool's standing "
                    "fabric; build them through the machine (create_fabric) "
                    "rather than reusing contexts from another run"
                )
            return pool.run(contexts, program, args, kwargs)
        result_queue = self._mp.Queue()
        workers = [
            self._mp.Process(
                target=_worker_main,
                args=(rank, contexts[rank], program, args, kwargs, result_queue),
                name=f"pro-rank-{rank}",
                daemon=True,
            )
            for rank in range(n)
        ]
        for proc in workers:
            proc.start()

        drain_timeout = 0.0
        try:
            outcomes = self._collect(workers, result_queue, n)
            self._reap(workers)

            failed = []
            for rank in range(n):
                entry = outcomes.get(rank)
                if entry is None:
                    failed.append((rank, CommunicationError(
                        f"rank {rank} exited (code {workers[rank].exitcode}) "
                        "without reporting a result"
                    )))
                elif not entry[0]:
                    failed.append((rank, entry[1]))
            if failed:
                drain_timeout = scale_timeout(0.25)
                # Undecoded success payloads may hold out-of-band resources.
                for rank in range(n):
                    entry = outcomes.get(rank)
                    if entry is not None and entry[0]:
                        try:
                            fabric.transport.dispose(entry[1][0])
                        except Exception:
                            pass
                primary = next(
                    ((rank, exc) for rank, exc in failed
                     if not isinstance(exc, CommunicationError)),
                    failed[0],
                )
                rank, exc = primary
                if isinstance(exc, Exception):
                    raise wrap_rank_failure(rank, exc) from exc
                raise exc  # KeyboardInterrupt and friends propagate unchanged

            results: list = [None] * n
            for rank in range(n):
                encoded_value, cost, variates = outcomes[rank][1]
                results[rank] = fabric.transport.decode(encoded_value)
                # Fold the worker-side accounting back into the caller's
                # context: the parent's recorder/rng never advanced.
                contexts[rank].cost = cost
                if variates is not None:
                    contexts[rank].rng = _VariateCount(variates)
            return results
        finally:
            # Unlink in-flight shared-memory payloads on every exit path
            # (normal, failed rank, abort, timeout).
            fabric.shutdown(drain_timeout=drain_timeout)

    def _collect(self, workers, result_queue, n: int) -> dict:
        """Read per-rank outcome messages until all arrive or the run is dead.

        There is deliberately no overall wall-clock deadline: like the
        thread backend, the run waits as long as healthy ranks keep
        computing.  Blocked *communication* times out inside the workers
        (the fabric's own timeout), which surfaces here as an error
        outcome; a rank that dies without reporting (hard crash) is caught
        by the liveness check.
        """
        outcomes: dict = {}
        deadline = current_deadline()
        while len(outcomes) < n:
            if deadline is not None and deadline.expired:
                for proc in workers:
                    if proc.is_alive():
                        proc.terminate()
                raise DeadlineError(
                    f"run exceeded its {deadline.seconds:g}s deadline with "
                    f"{n - len(outcomes)} rank(s) still outstanding"
                )
            try:
                rank, ok, payload = result_queue.get(timeout=0.2)
                outcomes[rank] = (ok, payload)
                continue
            except _pyqueue.Empty:
                pass
            if not any(w.is_alive() for w in workers):
                # Everybody exited; drain whatever is still in flight.
                while len(outcomes) < n:
                    try:
                        rank, ok, payload = result_queue.get(timeout=1.0)
                        outcomes[rank] = (ok, payload)
                    except _pyqueue.Empty:
                        break
                break
        return outcomes

    def _reap(self, workers) -> None:
        grace = scale_timeout(self.shutdown_grace)
        for proc in workers:
            proc.join(timeout=grace)
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=grace)


register_backend(
    "process",
    ProcessBackend,
    description="one OS process per rank; true parallelism, queue fabric with "
                "pluggable payload transport (sharedmem default, pickle)",
)
