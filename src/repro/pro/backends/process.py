"""Process-per-rank execution backend: true multiprocess parallelism.

Each virtual processor runs in its own OS process, so ranks execute with
genuine hardware parallelism (no shared GIL) -- the regime the paper's
experiments on the SGI Origin actually measured.  The ranks communicate
through a :class:`ProcessFabric`: one multiprocessing queue per destination
rank plus a shared multiprocessing barrier, speaking the same
``put``/``get``/``barrier_wait``/``abort`` protocol as the in-process
:class:`~repro.pro.communicator.MessageFabric`, so every communicator
operation (point-to-point, collectives, barriers) works unchanged.

Design points:

* **Deterministic seeding.**  The machine builds the per-rank random
  streams *in the parent* (exactly as for the inline and thread backends)
  and ships each rank its own generator, so for a fixed machine seed the
  results are bit-identical across the inline, thread and process backends.
* **Buffer-based NumPy transport.**  Array payloads cross the process
  boundary as ``(dtype, shape, bytes)`` triples (nested containers are
  walked recursively) rather than as opaque pickles of array objects;
  receivers rebuild fresh writable arrays from the raw buffers.
* **Cost accounting survives the address-space gap.**  Each worker ships
  its :class:`~repro.pro.cost.CostRecorder` and random-variate count back
  together with its result; :meth:`ProcessBackend.run` folds them into the
  caller's contexts so cost reports are backend-independent.
* **Error propagation** mirrors the thread backend: a failing rank aborts
  the shared barrier (siblings blocked in ``barrier()``/``recv`` fail fast),
  and the first real error by rank order -- preferring causes over
  :class:`~repro.util.errors.CommunicationError` symptoms -- is re-raised in
  the caller wrapped in :class:`~repro.util.errors.BackendError`.

The backend prefers the ``fork`` start method (cheap, closures allowed);
on platforms without it, ``spawn`` is used and programs/arguments must be
picklable.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as _pyqueue
import threading
import time
from typing import Callable, Sequence

import numpy as np

from repro.pro.backends.registry import (
    BackendCapabilities,
    ExecutionBackend,
    register_backend,
)
from repro.util.errors import BackendError, CommunicationError, ValidationError

__all__ = ["ProcessBackend", "ProcessFabric"]

# Markers of the buffer-based payload encoding.
_ND, _TUPLE, _LIST, _DICT, _RAW = "nd", "tuple", "list", "dict", "raw"


def _encode_payload(obj):
    """Encode a message payload for transport: arrays become raw buffers."""
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return (_ND, arr.dtype.str, arr.shape, arr.tobytes())
    if isinstance(obj, tuple):
        return (_TUPLE, tuple(_encode_payload(v) for v in obj))
    if isinstance(obj, list):
        return (_LIST, [_encode_payload(v) for v in obj])
    if isinstance(obj, dict):
        return (_DICT, {k: _encode_payload(v) for k, v in obj.items()})
    return (_RAW, obj)


def _decode_payload(enc):
    """Inverse of :func:`_encode_payload`; arrays come back writable."""
    kind, value = enc[0], enc[1]
    if kind == _ND:
        _, dtype, shape, data = enc
        return np.frombuffer(data, dtype=np.dtype(dtype)).reshape(shape).copy()
    if kind == _TUPLE:
        return tuple(_decode_payload(v) for v in value)
    if kind == _LIST:
        return [_decode_payload(v) for v in value]
    if kind == _DICT:
        return {k: _decode_payload(v) for k, v in value.items()}
    return value


class ProcessFabric:
    """Message fabric over multiprocessing queues and a shared barrier.

    One inbox queue per destination rank carries ``(src, tag, payload)``
    triples; mismatched messages read while waiting for a specific
    ``(src, tag)`` are parked locally (each rank lives in its own process,
    so the parking dict is private to that rank) and served to later
    receives, preserving per-source FIFO order.
    """

    def __init__(self, n_procs: int, *, timeout: float = 60.0, mp_context=None):
        if n_procs < 1:
            raise ValidationError(f"n_procs must be >= 1, got {n_procs}")
        self.n_procs = n_procs
        self.timeout = timeout
        self._mp = mp_context if mp_context is not None else multiprocessing.get_context()
        self._inboxes = [self._mp.Queue() for _ in range(n_procs)]
        self._barrier = self._mp.Barrier(n_procs)
        # (src, tag) -> list of decoded payloads, private to the rank's process.
        self._parked: dict = {}

    def put(self, src: int, dst: int, tag, payload) -> None:
        """Deposit a message; never blocks (queues are unbounded)."""
        self._inboxes[dst].put((src, tag, _encode_payload(payload)))

    def get(self, src: int, dst: int, tag, pending: list):
        """Fetch the next message from ``src`` to ``dst`` carrying ``tag``.

        ``pending`` (the communicator-owned parking list of the in-process
        fabric) is honoured for interface compatibility but the fabric parks
        internally, keyed by source *and* tag, because one inbox serves all
        sources.
        """
        for idx, (msg_tag, payload) in enumerate(pending):
            if msg_tag == tag:
                pending.pop(idx)
                return payload
        bucket = self._parked.get((src, tag))
        if bucket:
            return bucket.pop(0)
        deadline = time.monotonic() + self.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CommunicationError(
                    f"rank {dst} timed out after {self.timeout}s waiting for a message "
                    f"from rank {src} with tag {tag!r}"
                )
            try:
                msg_src, msg_tag, enc = self._inboxes[dst].get(timeout=remaining)
            except _pyqueue.Empty:
                raise CommunicationError(
                    f"rank {dst} timed out after {self.timeout}s waiting for a message "
                    f"from rank {src} with tag {tag!r}"
                ) from None
            payload = _decode_payload(enc)
            if msg_src == src and msg_tag == tag:
                return payload
            self._parked.setdefault((msg_src, msg_tag), []).append(payload)

    def barrier_wait(self) -> None:
        """Block until all ranks reach the barrier."""
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            raise CommunicationError(
                f"barrier broken or timed out after {self.timeout}s "
                "(a rank likely crashed or deadlocked)"
            ) from None

    def abort(self) -> None:
        """Break the barrier so that surviving ranks fail fast after a crash."""
        self._barrier.abort()


class _VariateCount:
    """Stand-in for a remote rank's CountingRNG after the run has finished."""

    def __init__(self, total_variates: int):
        self.total_variates = int(total_variates)


def _portable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else a summarising BackendError."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return BackendError(f"{type(exc).__name__}: {exc}")


def _worker_main(rank: int, ctx, program, args, kwargs, result_queue) -> None:
    """Entry point of one rank's process (module-level for spawn support)."""
    try:
        value = program(ctx, *args, **kwargs)
        variates = getattr(ctx.rng, "total_variates", None)
        result_queue.put((rank, True, (_encode_payload(value), ctx.cost, variates)))
    except BaseException as exc:  # noqa: BLE001 - report any rank failure
        try:
            ctx.comm._fabric.abort()
        except Exception:
            pass
        result_queue.put((rank, False, _portable_exception(exc)))


class ProcessBackend(ExecutionBackend):
    """Run one OS process per rank and collect per-rank results or errors.

    Parameters
    ----------
    start_method:
        ``"fork"`` (default where available), ``"spawn"`` or
        ``"forkserver"``.  With ``spawn``/``forkserver`` the program and its
        arguments must be picklable.
    shutdown_grace:
        Seconds to wait for worker processes to exit after the run has
        finished (or failed) before terminating them.
    """

    name = "process"
    capabilities = BackendCapabilities(
        multirank=True,
        blocking_p2p=True,
        true_parallelism=True,
        shared_address_space=False,
    )

    def __init__(self, *, start_method: str | None = None, shutdown_grace: float = 5.0):
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        if start_method not in methods:
            raise ValidationError(
                f"start method {start_method!r} is not available on this platform; "
                f"choose from {methods}"
            )
        self.start_method = start_method
        self.shutdown_grace = float(shutdown_grace)
        self._mp = multiprocessing.get_context(start_method)

    def create_fabric(self, n_procs: int, *, timeout: float) -> ProcessFabric:
        """Build the multiprocess message fabric for one run."""
        return ProcessFabric(n_procs, timeout=timeout, mp_context=self._mp)

    # -- running ------------------------------------------------------------
    def run(self, contexts: Sequence, program: Callable, args: tuple, kwargs: dict) -> list:
        """Execute ``program(ctx, *args, **kwargs)`` with one process per rank."""
        n = len(contexts)
        if n == 0:
            return []
        fabric = contexts[0].comm._fabric
        if not isinstance(fabric, ProcessFabric):
            raise BackendError(
                "the process backend needs contexts wired to its ProcessFabric; "
                "create the machine with backend='process' instead of passing "
                "contexts built for another backend"
            )
        result_queue = self._mp.Queue()
        workers = [
            self._mp.Process(
                target=_worker_main,
                args=(rank, contexts[rank], program, args, kwargs, result_queue),
                name=f"pro-rank-{rank}",
                daemon=True,
            )
            for rank in range(n)
        ]
        for proc in workers:
            proc.start()

        outcomes = self._collect(workers, result_queue, n)
        self._reap(workers)

        failed = []
        for rank in range(n):
            entry = outcomes.get(rank)
            if entry is None:
                failed.append((rank, CommunicationError(
                    f"rank {rank} exited (code {workers[rank].exitcode}) "
                    "without reporting a result"
                )))
            elif not entry[0]:
                failed.append((rank, entry[1]))
        if failed:
            primary = next(
                ((rank, exc) for rank, exc in failed if not isinstance(exc, CommunicationError)),
                failed[0],
            )
            rank, exc = primary
            if isinstance(exc, Exception):
                raise BackendError(f"rank {rank} failed: {exc!r}") from exc
            raise exc  # KeyboardInterrupt and friends propagate unchanged

        results: list = [None] * n
        for rank in range(n):
            encoded_value, cost, variates = outcomes[rank][1]
            results[rank] = _decode_payload(encoded_value)
            # Fold the worker-side accounting back into the caller's context:
            # the parent's recorder/rng never advanced.
            contexts[rank].cost = cost
            if variates is not None:
                contexts[rank].rng = _VariateCount(variates)
        return results

    def _collect(self, workers, result_queue, n: int) -> dict:
        """Read per-rank outcome messages until all arrive or the run is dead.

        There is deliberately no overall wall-clock deadline: like the
        thread backend, the run waits as long as healthy ranks keep
        computing.  Blocked *communication* times out inside the workers
        (the fabric's own timeout), which surfaces here as an error
        outcome; a rank that dies without reporting (hard crash) is caught
        by the liveness check.
        """
        outcomes: dict = {}
        while len(outcomes) < n:
            try:
                rank, ok, payload = result_queue.get(timeout=0.2)
                outcomes[rank] = (ok, payload)
                continue
            except _pyqueue.Empty:
                pass
            if not any(w.is_alive() for w in workers):
                # Everybody exited; drain whatever is still in flight.
                while len(outcomes) < n:
                    try:
                        rank, ok, payload = result_queue.get(timeout=1.0)
                        outcomes[rank] = (ok, payload)
                    except _pyqueue.Empty:
                        break
                break
        return outcomes

    def _reap(self, workers) -> None:
        for proc in workers:
            proc.join(timeout=self.shutdown_grace)
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.shutdown_grace)


register_backend(
    "process",
    ProcessBackend,
    description="one OS process per rank; true parallelism, pipe/queue fabric",
)
