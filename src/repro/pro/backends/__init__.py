"""Execution backends for the PRO machine.

A backend takes an SPMD program (a callable ``program(ctx, *args, **kwargs)``)
and executes one copy per virtual processor.  Backends are *pluggable*: they
live in a registry (:mod:`repro.pro.backends.registry`) keyed by name, and
everything above the machine layer -- the drivers, the CLI, the bench
harness -- selects one with ``backend="inline" | "thread" | "process"`` (or
any custom registered name).

Built-in backends:

* :class:`~repro.pro.backends.thread.ThreadBackend` (``"thread"``) -- one
  Python thread per rank; ranks run concurrently and communicate through the
  in-process message fabric.  This is the default; NumPy releases the GIL for
  the bulk work so threads do overlap, and it supports the blocking point-to-
  point patterns of Algorithms 5 and 6.
* :class:`~repro.pro.backends.process.ProcessBackend` (``"process"``) -- one
  OS process per rank with a multiprocessing-queue fabric; true hardware
  parallelism without a shared GIL.  Results are bit-identical to the other
  backends for a given machine seed.
* :class:`~repro.pro.backends.inline.InlineBackend` (``"inline"``) -- runs a
  *single* rank in the calling thread; used for ``p = 1`` runs (the
  sequential reference inside the same harness) and for micro-benchmarks
  where thread start-up costs would drown the signal.
* :class:`~repro.pro.backends.sim.SimBackend` (``"sim"``) -- all ``p`` ranks
  stepped *cooperatively* under a seedable, replayable deterministic
  schedule (``schedule_seed=`` / ``schedule=``); blocking never consults a
  wall clock, so deadlocks -- e.g. from an injected fault -- are proved and
  reported immediately.  The debugging and test-sweep backend.

Fault injection (:mod:`repro.pro.backends.faults`) works against *any* of
them: :class:`~repro.pro.backends.faults.FaultInjectingBackend` wraps a
backend so its runs act out a declarative plan of rank crashes, dropped or
delayed messages, barrier timeouts and mid-transfer aborts, and
:func:`~repro.pro.backends.faults.shrink_schedule` minimises a failing sim
interleaving to a short reproducer.

The process backend additionally takes a *payload transport*
(``transport="sharedmem" | "pickle"``, see
:mod:`repro.pro.backends.transport`): the queue fabric carries only small
control records while bulk NumPy payloads travel through shared-memory
segments (zero-copy on the receive side, adaptive per-sender rings,
refcounted multi-consumer argument segments) or, with ``"pickle"``,
through the queue pipe as raw buffers.  With ``persistent=True`` the
backend runs on a standing :class:`~repro.pro.backends.pool.WorkerPool`
of long-lived daemon ranks, amortising process spawn and ring setup
across runs (the module-level :func:`~repro.pro.backends.pool.pool`
context manager wraps the whole machine lifecycle).  Driver calls are
*warm by default*: with ``backend="process"`` they borrow a keyed fleet
from the process-wide default pool cache
(:func:`~repro.pro.backends.pool.get_default_pool`) unless
``persistent=False`` forces the cold path.

See :mod:`repro.pro.backends.registry` for the backend contract (fabric
semantics, error-propagation rules, transport sub-contract) and for how to
register your own.
"""

from repro.pro.backends.registry import (
    BackendCapabilities,
    BackendSpec,
    ExecutionBackend,
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.pro.backends.thread import ThreadBackend
from repro.pro.backends.inline import InlineBackend
from repro.pro.backends.process import ProcessBackend, ProcessFabric
from repro.pro.backends.transport import (
    PayloadTransport,
    PickleTransport,
    available_transports,
    get_transport,
    register_transport,
    resolve_transport,
)
from repro.pro.backends.sharedmem import SharedMemoryTransport
from repro.pro.backends.pool import WorkerPool, pool
from repro.pro.backends.sim import SimBackend, SimFabric
from repro.pro.backends.faults import (
    AbortTransfer,
    BarrierTimeout,
    CrashRank,
    DelayMessage,
    DropMessage,
    FaultInjectingBackend,
    FaultPlan,
    InjectedFault,
    shrink_schedule,
)

__all__ = [
    "WorkerPool",
    "pool",
    "SimBackend",
    "SimFabric",
    "AbortTransfer",
    "BarrierTimeout",
    "CrashRank",
    "DelayMessage",
    "DropMessage",
    "FaultInjectingBackend",
    "FaultPlan",
    "InjectedFault",
    "shrink_schedule",
    "BackendCapabilities",
    "BackendSpec",
    "ExecutionBackend",
    "ThreadBackend",
    "InlineBackend",
    "ProcessBackend",
    "ProcessFabric",
    "PayloadTransport",
    "PickleTransport",
    "SharedMemoryTransport",
    "available_backends",
    "available_transports",
    "backend_capabilities",
    "get_backend",
    "get_transport",
    "register_backend",
    "register_transport",
    "resolve_backend",
    "resolve_transport",
]
