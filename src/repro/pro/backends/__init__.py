"""Execution backends for the PRO machine.

A backend takes an SPMD program (a callable ``program(ctx, *args, **kwargs)``)
and executes one copy per virtual processor:

* :class:`~repro.pro.backends.thread.ThreadBackend` -- one Python thread per
  rank; ranks run concurrently and communicate through the message fabric.
  This is the default and the only backend that allows blocking point-to-
  point patterns between ranks (Algorithms 5 and 6 need it).
* :class:`~repro.pro.backends.inline.InlineBackend` -- runs a *single* rank in
  the calling thread; used for ``p = 1`` runs (the sequential reference
  inside the same harness) and for micro-benchmarks where thread start-up
  costs would drown the signal.
"""

from repro.pro.backends.thread import ThreadBackend
from repro.pro.backends.inline import InlineBackend

__all__ = ["ThreadBackend", "InlineBackend"]
