"""Persistent worker pool: amortise process spawn across machine runs.

The plain :class:`~repro.pro.backends.process.ProcessBackend` forks ``p``
fresh OS processes for every ``run()`` -- the dominant process-backend
overhead on small problem sizes, paid again on every call.  The paper's
coarse-grained model (like the PRO model it builds on) assumes the
parallel machine is a *standing* resource whose setup is paid once; the
:class:`WorkerPool` makes the backend behave that way:

* ``p`` long-lived daemon ranks are spawned **once**, inheriting the
  fabric (queues, barrier, shared-memory ring segments) that every later
  run reuses;
* each ``run()`` dispatches one lightweight *run-epoch record* per rank
  -- the rank's freshly built random stream and cost recorder plus the
  (pickled) program and arguments -- through a per-rank task queue;
* results, cost records and variate counts flow back through a shared
  result queue exactly as in the one-shot backend, so cost reports stay
  backend-independent;
* the per-rank RNG streams are still built *in the parent* for every run
  (by the machine), so a fixed machine seed is bit-identical to the
  non-persistent path -- and to every other backend and transport.

Determinism contract
--------------------
``PROMachine(seed=s, persistent=True)`` run ``k`` times produces exactly
the same ``k`` results as ``PROMachine(seed=s)`` (non-persistent) run
``k`` times: persistence changes *where* the ranks live, never what they
draw.  ``tests/integration/test_cross_backend_determinism.py`` and the
pool lifecycle tests pin this.

Serialisation
-------------
Programs and arguments cross the dispatch queue, so they must be
picklable even on ``fork`` platforms (the one-shot backend inherits them
through the fork instead).  All the library's SPMD programs are
module-level functions and qualify; when ``cloudpickle`` is installed it
is used as a fallback serialiser, which widens support to closures and
lambdas.  An unserialisable program raises
:class:`~repro.util.errors.BackendError` *before* anything is dispatched.

Bulk arguments are encoded through the payload transport once **per
run**: transports with ``encode_shared`` (the default ``sharedmem``)
write them into a single refcounted multi-consumer segment that every
rank attaches -- one memcpy total, unlinked after the last rank's
acknowledgement -- and purely in-band transports (``pickle``) reuse one
encoded record for every rank.  Only duck-typed transports with
out-of-band ``dispose`` but no ``encode_shared`` still pay one encode
per rank.  A fork still inherits the arguments for free, so with the
in-band ``pickle`` transport large-argument workloads can be slower
than cold fork -- prefer ``sharedmem``, or keep huge constant state out
of the per-run arguments.

Crash semantics and supervision
-------------------------------
A rank that raises, or a worker process that dies mid-run, **poisons**
the pool: the current ``run()`` raises ``BackendError`` (a
:class:`~repro.util.errors.TransientBackendError` when the root cause is
a substrate failure), every later ``run()`` raises immediately, and only
``close()`` (idempotent, also registered with ``atexit``) releases the
resources.  Poisoning is deliberate -- after a broken barrier or an
interrupted exchange the fabric may hold stray messages, and silently
reusing it could corrupt a later run's results.

The poison can be lifted *explicitly* through :meth:`WorkerPool.heal`,
the supervision hook the resilience layer (:mod:`repro.pro.resilience`)
calls between retry attempts: the pool stops and reaps exactly the
suspect ranks (those that failed, died or never reported in the poisoned
epoch), drains their task queues and the poisoned epoch's straggler
results (disposing out-of-band records), restores the standing fabric
(:meth:`~repro.pro.backends.process.ProcessFabric.heal`: inbox drain,
barrier reset, fresh sender rings for the replacements) and respawns
**only the dead ranks** into it.  Survivor ranks keep their processes,
their warm transports and their PIDs.  Because per-rank streams are
rebuilt by the machine for every attempt, the replayed epoch is
bit-identical to a fault-free run.

``close()`` drains and disposes undelivered records and retires every
shared-memory ring segment, so a full lifecycle leaks no segments and no
``resource_tracker`` warnings.
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue as _pyqueue
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Sequence

from repro.pro.backends.process import (
    ProcessFabric,
    _portable_exception,
    _VariateCount,
)
from repro.pro.backends.transport import PayloadTransport
from repro.pro.communicator import Communicator
from repro.pro.resilience import current_deadline
from repro.pro.telemetry import capture_rank_telemetry, record_event
from repro.util.errors import (
    BackendError,
    CommunicationError,
    DeadlineError,
    TransientBackendError,
    ValidationError,
    wrap_rank_failure,
)
from repro.util.timeouts import scale_timeout

try:  # optional: widens program serialisation to closures/lambdas
    import cloudpickle as _cloudpickle
except ImportError:  # pragma: no cover - exercised where cloudpickle is absent
    _cloudpickle = None

__all__ = ["WorkerPool", "pool", "get_default_pool", "clear_default_pools",
           "default_pools"]

#: Result-queue sentinel of a multi-consumer argument-segment receipt
#: (``(epoch, rank, ok, payload)`` entries carry it in the ``ok`` slot).
_SHARED_ACK = "__shared-ack__"


def _dumps(obj) -> bytes:
    """Serialise ``obj`` for the dispatch queue (cloudpickle fallback)."""
    try:
        return pickle.dumps(obj)
    except Exception:
        if _cloudpickle is None:
            raise
        return _cloudpickle.dumps(obj)


def _pool_worker_main(rank: int, fabric: ProcessFabric, task_queue,
                      result_queue) -> None:
    """Main loop of one standing rank (module-level for spawn support).

    Blocks on the task queue; ``None`` is the shutdown sentinel.  Each
    task carries one run-epoch: receipts for ring slots the parent has
    released, the rank's fresh context pieces and the pickled program.
    A failing epoch aborts the shared barrier (siblings fail fast),
    reports the failure and *exits* -- the pool is poisoned either way,
    and a worker that kept looping on a broken barrier could only produce
    corrupt runs.
    """
    while True:
        raw = task_queue.get()
        if raw is None:
            return
        task = pickle.loads(raw)
        (epoch, receipts, rng, cost, program_blob, args_record,
         wait_timeout) = task
        # Scope this run's message tags to its epoch and drop anything a
        # previous run parked but never consumed: stale messages must not
        # satisfy a later run's receive (the one-shot backend gets this
        # for free by discarding the whole fabric).
        fabric.epoch = epoch
        # Every dispatch re-stamps the fabric wait budget: runs under a
        # resilience deadline clamp it so a stuck receive/barrier surfaces
        # inside the remaining budget instead of the standing default.
        fabric.timeout = wait_timeout
        fabric._parked.clear()
        for receipt in receipts:
            try:
                fabric.transport.ring_ack(receipt)
            except Exception:  # pragma: no cover - acks are best effort
                pass
        # With the receipts applied the ring is in its settled state:
        # let the transport close the previous traffic epoch and adapt
        # the ring's logical capacity before this run's sends.
        fabric.begin_epoch(rank)
        try:
            program = pickle.loads(program_blob)
            # Bulk arguments travel out-of-band through the payload
            # transport (the control record above stays small); with the
            # shared-memory transport the worker gets zero-copy views of
            # the run's shared multi-consumer segment.  The attach receipt
            # the decode fires goes straight back to the parent on the
            # result queue, so the segment can be unlinked as soon as the
            # last rank holds a mapping.
            def _args_ack(receipt, _rank=rank):
                try:
                    result_queue.put((None, _rank, _SHARED_ACK, receipt))
                except Exception:  # pragma: no cover - queue already closed
                    pass

            if fabric._ack_aware:
                args, kwargs = fabric.transport.decode(args_record,
                                                       ack=_args_ack)
            else:
                args, kwargs = fabric.transport.decode(args_record)
            # Rebuild the context around the standing fabric: communicator
            # state (parked messages, collective counters) starts fresh
            # every epoch, exactly as in the one-shot backend.
            from repro.pro.machine import ProcessorContext

            ctx = ProcessorContext(
                rank=rank, n_procs=fabric.n_procs,
                comm=Communicator(fabric, rank, cost), rng=rng, cost=cost,
            )
            value = program(ctx, *args, **kwargs)
            variates = getattr(ctx.rng, "total_variates", None)
            encoded = fabric.encode_payload(rank, value)
            # Counters accumulate across epochs in a standing worker; the
            # snapshot repatriates the running totals with this epoch's
            # result record (the parent reports the latest view).
            ctx.cost.telemetry = capture_rank_telemetry(fabric, rank)
            result_queue.put((epoch, rank, True, (encoded, ctx.cost, variates)))
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            try:
                fabric.abort()
            except Exception:
                pass
            try:
                # Siblings parked in queue receives fail fast too (the
                # barrier abort alone cannot reach them) and exit through
                # their own clean error paths -- which is what lets heal()
                # join them instead of terminating readers mid-lock.
                fabric.poison_waits(epoch)
            except Exception:
                pass
            result_queue.put((epoch, rank, False, _portable_exception(exc)))
            return


class WorkerPool:
    """``p`` standing daemon ranks sharing one persistent fabric.

    Parameters
    ----------
    n_procs:
        Number of ranks; fixed for the pool's lifetime.
    timeout:
        Communication timeout of the standing fabric (seconds).
    mp_context:
        The ``multiprocessing`` context to spawn workers from (the
        backend passes its configured start method's context).
    transport:
        Payload transport instance shared by the fabric and the result
        path (see :mod:`repro.pro.backends.transport`).
    shutdown_grace:
        Seconds :meth:`close` waits for workers to exit before
        terminating them.
    """

    def __init__(self, n_procs: int, *, timeout: float = 60.0, mp_context=None,
                 transport=None, shutdown_grace: float = 5.0):
        if n_procs < 1:
            raise ValidationError(f"n_procs must be >= 1, got {n_procs}")
        import multiprocessing

        mp = mp_context if mp_context is not None else multiprocessing.get_context()
        self.n_procs = int(n_procs)
        self.timeout = float(timeout)
        self.shutdown_grace = float(shutdown_grace)
        #: Process that spawned the fleet: only it may run or reap the
        #: workers (a forked child inherits this object but must not
        #: touch the parent's processes -- see :meth:`run`/:meth:`close`).
        self._owner_pid = os.getpid()
        #: One run at a time: the fleet shares a single result queue and
        #: epoch counter, so concurrent ``run()`` calls (e.g. two threads
        #: hitting the same default-cache fleet) serialise here instead
        #: of corrupting each other's dispatch.
        self._run_lock = threading.Lock()
        self._mp = mp  # kept for heal(): replacements spawn from the same context
        self.fabric = ProcessFabric(n_procs, timeout=timeout, mp_context=mp,
                                    transport=transport)
        self._task_queues = [mp.Queue() for _ in range(n_procs)]
        self._result_queue = mp.Queue()
        self._epoch = 0
        self._poison_reason: str | None = None
        #: Ranks implicated in the poisoned epoch (failed, died, or never
        #: reported): exactly the set heal() stops and respawns.
        self._suspect_ranks: set = set()
        self._closed = False
        #: Ring receipts released by parent-side result views since the
        #: last dispatch (appended from weakref finalizers; popped -- an
        #: atomic list operation -- when the next run ships them).
        self._pending_receipts: list = []
        self._workers = [
            mp.Process(
                target=_pool_worker_main,
                args=(rank, self.fabric, self._task_queues[rank],
                      self._result_queue),
                name=f"pro-pool-{rank}",
                daemon=True,
            )
            for rank in range(n_procs)
        ]
        for proc in self._workers:
            proc.start()
        record_event("pool-spawn", n_procs=self.n_procs, epoch=self._epoch)
        atexit.register(self.close)

    # -- state --------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    @property
    def poisoned(self) -> bool:
        """True after a failed run; every later run raises ``BackendError``."""
        return self._poison_reason is not None

    def _poison(self, reason: str) -> None:
        if self._poison_reason is None:
            self._poison_reason = reason
            record_event("pool-poison", reason=reason, epoch=self._epoch)

    @property
    def in_owner_process(self) -> bool:
        """True in the process that spawned (and may drive) the fleet."""
        return self._owner_pid == os.getpid()

    def worker_pids(self) -> list[int]:
        """PIDs of the standing ranks (stable across runs; for tests)."""
        return [proc.pid for proc in self._workers]

    # -- running ------------------------------------------------------------
    def run(self, contexts: Sequence, program: Callable, args: tuple,
            kwargs: dict) -> list:
        """Dispatch one run-epoch to the standing ranks and collect results.

        Serialised by a per-pool lock: the fleet has one result queue and
        one epoch counter, so exactly one run is in flight at a time (a
        second thread's call queues behind the first -- relevant now that
        driver calls share fleets through the default cache).
        """
        if not self.in_owner_process:
            raise BackendError(
                f"this worker pool belongs to process {self._owner_pid}; a "
                "forked process must build its own machine (the default "
                "pool cache does this automatically)"
            )
        with self._run_lock:
            return self._run_locked(contexts, program, args, kwargs)

    def _run_locked(self, contexts: Sequence, program: Callable, args: tuple,
                    kwargs: dict) -> list:
        if self._closed:
            raise BackendError("the worker pool is closed; build a new machine")
        if self._poison_reason is not None:
            # Transient: heal() can lift the poison, so retry policies may
            # treat a poisoned standing fleet as recoverable substrate.
            raise TransientBackendError(
                f"the worker pool is poisoned ({self._poison_reason}); "
                "build a new machine to continue"
            )
        n = len(contexts)
        if n != self.n_procs:
            raise BackendError(
                f"this pool runs {self.n_procs} ranks but {n} contexts were given"
            )
        dead = [rank for rank, proc in enumerate(self._workers)
                if not proc.is_alive()]
        if dead:
            self._suspect_ranks.update(dead)
            self._poison(f"worker rank {dead[0]} died between runs")
            raise TransientBackendError(
                f"the worker pool is poisoned ({self._poison_reason}); "
                "build a new machine to continue"
            )
        self._epoch += 1
        epoch = self._epoch
        receipts = self._drain_receipts()
        run_deadline = current_deadline()
        wait_timeout = (self.timeout if run_deadline is None
                        else run_deadline.clamp(self.timeout))
        # Serialise the whole epoch *eagerly* in the parent: a task that
        # cannot be pickled must raise here, as a clear BackendError,
        # before any rank has been dispatched (handing raw objects to the
        # queue would defer pickling to its feeder thread, turning the
        # same failure into a hang).  Bulk array arguments travel
        # out-of-band through the payload transport, encoded once **per
        # run**: ``encode_shared`` puts them in one refcounted
        # multi-consumer segment every rank attaches, and purely in-band
        # records are reused verbatim for every rank.  Only duck-typed
        # transports with out-of-band dispose but no ``encode_shared``
        # still pay one encode per rank.
        args_records: list = []
        task_blobs: list = []
        transport = self.fabric.transport
        try:
            program_blob = _dumps(program)
            args_records = self._encode_args(transport, (args, kwargs), n)
            for rank in range(n):
                ctx = contexts[rank]
                task_blobs.append(_dumps(
                    (epoch, receipts.get(rank, []), ctx.rng, ctx.cost,
                     program_blob, args_records[rank], wait_timeout)
                ))
        except Exception as exc:
            for record in args_records:
                try:
                    self.fabric.transport.dispose(record)
                except Exception:
                    pass
            # Nothing was dispatched: put the drained ring receipts back so
            # the slots they name are still acked by a later, successful run
            # (dropping them would pin ring space for the pool's lifetime).
            for rank_receipts in receipts.values():
                self._pending_receipts.extend(rank_receipts)
            raise BackendError(
                "persistent process runs dispatch the program and its "
                "arguments through a queue, so they must be picklable "
                "(module-level functions work; installing cloudpickle widens "
                f"this to closures): {type(exc).__name__}: {exc}"
            ) from exc
        for rank in range(n):
            self._task_queues[rank].put(task_blobs[rank])

        outcomes = self._collect(epoch, n)
        failed = []
        for rank in range(n):
            entry = outcomes.get(rank)
            if entry is None:
                proc = self._workers[rank]
                state = ("exited (code {})".format(proc.exitcode)
                         if not proc.is_alive() else "stopped responding")
                failed.append((rank, CommunicationError(
                    f"rank {rank} {state} without reporting a result"
                )))
            elif not entry[0]:
                failed.append((rank, entry[1]))
        if failed:
            self._poison(f"rank {failed[0][0]} failed during run {epoch}")
            # A failing rank exits its main loop by contract, and a rank
            # that never reported is dead or wedged: both are suspects for
            # heal() to reap and respawn.  Ranks that reported success are
            # alive and keep looping on their task queues.
            self._suspect_ranks.update(
                rank for rank in range(n)
                if outcomes.get(rank) is None or outcomes[rank][0] is not True
            )
            for rank in range(n):  # undecoded successes may hold segments
                entry = outcomes.get(rank)
                if entry is not None and entry[0]:
                    try:
                        self.fabric.transport.dispose(entry[1][0])
                    except Exception:
                        pass
            primary = next(
                ((rank, exc) for rank, exc in failed
                 if not isinstance(exc, CommunicationError)),
                failed[0],
            )
            rank, exc = primary
            if isinstance(exc, Exception):
                raise wrap_rank_failure(rank, exc) from exc
            raise exc  # KeyboardInterrupt and friends propagate unchanged

        results: list = [None] * n
        for rank in range(n):
            encoded_value, cost, variates = outcomes[rank][1]
            results[rank] = self.fabric.decode_payload(
                encoded_value, ack=self._pending_receipts.append
            )
            contexts[rank].cost = cost
            if variates is not None:
                contexts[rank].rng = _VariateCount(variates)
        return results

    @staticmethod
    def _encode_args(transport, payload, n: int) -> list:
        """Encode one run's bulk arguments for ``n`` ranks -- once if possible.

        Preference order: ``encode_shared`` (one refcounted multi-consumer
        record, accepted unless the transport declines with ``None``);
        one plain record reused for every rank when the transport is
        purely in-band (its ``dispose`` is the base-class no-op, so a
        record holds no single-consumer resources); per-rank ``encode``
        otherwise.  The returned list always has ``n`` entries (repeated
        for the shared cases) so failure paths can dispose each queued
        copy uniformly.
        """
        encode_shared = getattr(transport, "encode_shared", None)
        if encode_shared is not None:
            record = encode_shared(payload, n)
            if record is not None:
                return [record] * n
        in_band = (isinstance(transport, PayloadTransport)
                   and type(transport).dispose is PayloadTransport.dispose)
        if in_band:
            return [transport.encode(payload)] * n
        return [transport.encode(payload) for _ in range(n)]

    def _drain_receipts(self) -> dict:
        """Pending ring receipts grouped by the owning rank."""
        drained = []
        while self._pending_receipts:
            try:
                drained.append(self._pending_receipts.pop())
            except IndexError:  # pragma: no cover - finalizer race
                break
        if not drained or self.fabric._ring_names is None:
            return {}
        by_rank: dict = {}
        ring_to_rank = {name: rank
                        for rank, name in enumerate(self.fabric._ring_names)}
        for receipt in drained:
            rank = ring_to_rank.get(receipt[0]) if receipt else None
            if rank is not None:
                by_rank.setdefault(rank, []).append(receipt)
        return by_rank

    def _collect(self, epoch: int, n: int) -> dict:
        """Gather this epoch's per-rank outcomes, watching worker liveness.

        Like the one-shot backend there is no overall wall-clock deadline:
        healthy ranks may compute for as long as they like, and blocked
        communication times out inside the workers.  A worker that dies
        without reporting breaks the run: the parent aborts the shared
        barrier so surviving ranks fail fast, then gives them a short
        grace period to report their (Communication)errors.
        """
        outcomes: dict = {}
        aborted = False
        deadline = None
        run_deadline = current_deadline()
        while len(outcomes) < n:
            if deadline is not None and time.monotonic() > deadline:
                break
            if run_deadline is not None and run_deadline.expired:
                # The resilience deadline ran out while ranks were still
                # outstanding (workers hung outside fabric waits, or the
                # clamped fabric timeout has not fired yet): poison, break
                # the barrier, release what did arrive and surface the
                # typed error -- deliberately not transient.
                self._suspect_ranks.update(
                    rank for rank in range(n)
                    if outcomes.get(rank) is None
                    or outcomes[rank][0] is not True
                )
                self._poison(f"run {epoch} exceeded its deadline")
                try:
                    self.fabric.abort()
                except Exception:
                    pass
                try:
                    self.fabric.poison_waits(epoch)
                except Exception:
                    pass
                for entry in outcomes.values():
                    if entry[0] is True:
                        try:
                            self.fabric.transport.dispose(entry[1][0])
                        except Exception:
                            pass
                raise DeadlineError(
                    f"persistent run {epoch} exceeded its "
                    f"{run_deadline.seconds:g}s deadline with "
                    f"{n - len(outcomes)} rank(s) still outstanding"
                )
            try:
                e, rank, ok, payload = self._result_queue.get(timeout=0.2)
            except _pyqueue.Empty:
                if not aborted and not all(p.is_alive() for p in self._workers):
                    aborted = True
                    try:
                        self.fabric.abort()
                    except Exception:
                        pass
                    try:
                        # A hard-crashed rank never ran its own failure
                        # path: unblock siblings parked in receives so
                        # they report (and exit joinably) within grace.
                        self.fabric.poison_waits(epoch)
                    except Exception:
                        pass
                    deadline = (time.monotonic()
                                + scale_timeout(max(self.shutdown_grace, 1.0)))
                continue
            except Exception:  # pragma: no cover - truncated pickle after a kill
                continue
            if ok == _SHARED_ACK:
                # A rank attached the run's shared argument segment: apply
                # the receipt so the segment is unlinked after the last one.
                try:
                    self.fabric.transport.ring_ack(payload)
                except Exception:  # pragma: no cover - acks are best effort
                    pass
                continue
            if e != epoch:
                # Straggler from an earlier (failed) epoch: release any
                # out-of-band resources and ignore it.
                if ok:
                    try:
                        self.fabric.transport.dispose(payload[0])
                    except Exception:
                        pass
                continue
            outcomes[rank] = (ok, payload)
        return outcomes

    # -- supervision --------------------------------------------------------
    def heal(self) -> bool:
        """Lift the poison by respawning exactly the dead ranks (supervision).

        Returns True when the fleet is ready to run again, False when it
        cannot be recovered (closed, inherited across a fork, or a suspect
        worker refused to die) -- the caller should fall back to a fresh
        pool or another backend.  A live, unpoisoned pool heals trivially.

        Recovery steps, in order:

        1. every *suspect* rank -- implicated in the poisoned epoch or
           found dead -- is terminated and joined (survivors that reported
           success are still blocked on their task queues and are left
           untouched: they keep their processes, transports and PIDs);
        2. the suspects' task queues are drained (an undelivered epoch
           holds encoded argument records) and replaced by fresh queues;
        3. straggler results of the poisoned epoch are drained from the
           shared result queue, applying shared-segment receipts and
           disposing undecoded values;
        4. the standing fabric is healed
           (:meth:`~repro.pro.backends.process.ProcessFabric.heal`):
           inboxes drained and disposed, barrier reset, fresh sender-ring
           names for the replacements, orphaned shared segments retired;
        5. replacement workers are spawned for the suspect ranks only,
           re-handshaking their transports against the healed fabric.

        Determinism is untouched: the machine rebuilds every rank's stream
        per attempt, so the replayed epoch -- on the mixed fleet of
        survivors and replacements -- is bit-identical to a fault-free
        run.
        """
        if not self.in_owner_process:
            return False
        locked = self._run_lock.acquire(timeout=scale_timeout(2.0 * self.shutdown_grace))
        if not locked:
            return False
        try:
            return self._heal_locked()
        finally:
            self._run_lock.release()

    def _heal_locked(self) -> bool:
        if self._closed:
            return False
        suspects = set(self._suspect_ranks)
        suspects.update(rank for rank, proc in enumerate(self._workers)
                        if not proc.is_alive())
        if self._poison_reason is None and not suspects:
            return True
        grace = scale_timeout(self.shutdown_grace)
        # Let suspects still parked in fabric waits exit on their own
        # first (poison pills reach receives, the aborted barrier the
        # rest): a clean exit releases the inbox reader lock a terminate()
        # could orphan.  Only then terminate genuinely wedged workers.
        try:
            self.fabric.poison_waits(self._epoch)
        except Exception:  # pragma: no cover - queues already broken
            pass
        join_until = time.monotonic() + grace
        for rank in sorted(suspects):
            proc = self._workers[rank]
            proc.join(timeout=max(join_until - time.monotonic(), 0.1))
        for rank in sorted(suspects):
            proc = self._workers[rank]
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=grace)
            if proc.is_alive():
                return False  # unkillable worker: this fleet is lost
        for rank in sorted(suspects):
            old_queue = self._task_queues[rank]
            while True:  # undelivered epochs hold encoded argument records
                try:
                    raw = old_queue.get_nowait()
                except Exception:
                    break
                if raw is None:
                    continue
                try:
                    self.fabric.transport.dispose(pickle.loads(raw)[5])
                except Exception:
                    pass
            try:
                old_queue.close()
                old_queue.cancel_join_thread()
            except Exception:  # pragma: no cover - queue already broken
                pass
            # A worker killed mid-get can leave the old queue's pipe in a
            # torn state; the replacement gets a pristine one.
            self._task_queues[rank] = self._mp.Queue()
        drain_until = time.monotonic() + scale_timeout(0.25)
        while True:  # stragglers of the poisoned epoch
            remaining = drain_until - time.monotonic()
            try:
                if remaining > 0:
                    _e, _rank, ok, payload = self._result_queue.get(
                        timeout=remaining)
                else:
                    _e, _rank, ok, payload = self._result_queue.get_nowait()
            except _pyqueue.Empty:
                break
            except Exception:  # pragma: no cover - truncated pickle
                continue
            if ok == _SHARED_ACK:
                try:
                    self.fabric.transport.ring_ack(payload)
                except Exception:
                    pass
            elif ok:
                try:
                    self.fabric.transport.dispose(payload[0])
                except Exception:
                    pass
        respawned = sorted(suspects)
        self.fabric.heal(respawned)
        for rank in respawned:
            proc = self._mp.Process(
                target=_pool_worker_main,
                args=(rank, self.fabric, self._task_queues[rank],
                      self._result_queue),
                name=f"pro-pool-{rank}",
                daemon=True,
            )
            self._workers[rank] = proc
            proc.start()
        self._suspect_ranks.clear()
        self._poison_reason = None
        record_event("pool-heal", respawned=respawned, epoch=self._epoch)
        return True

    # -- shutdown -----------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release every fabric resource (idempotent).

        Serialises with :meth:`run`: an eviction from the default cache
        (LRU overflow, poison healing, ``clear_default_pools``) must not
        tear the fabric down under a run another thread still has in
        flight.  The wait is bounded -- if the in-flight run does not
        finish within the grace window (e.g. a hung fleet at interpreter
        exit), teardown proceeds anyway rather than hanging shutdown.

        In a forked copy of the owning process this only marks the local
        handle closed: joining or terminating the workers (and draining
        the queues) is the owner's job, and CPython refuses to join
        another process's children anyway.
        """
        if self._closed:
            return
        locked = self._run_lock.acquire(timeout=scale_timeout(2.0 * self.shutdown_grace))
        try:
            if self._closed:
                return
            self._closed = True
            record_event("pool-close", n_procs=self.n_procs, epoch=self._epoch)
            atexit.unregister(self.close)
            if not self.in_owner_process:
                return  # inherited handle: the owner reaps the resources
            self._close_resources()
        finally:
            if locked:
                self._run_lock.release()

    def _close_resources(self) -> None:
        """Teardown body of :meth:`close` (runs in the owner process)."""
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        grace = scale_timeout(self.shutdown_grace)
        for proc in self._workers:
            proc.join(timeout=grace)
        for proc in self._workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=grace)
        # Dispose undelivered tasks (a rank that died before picking its
        # task up leaves it queued) and results (a poisoned pool may
        # leave some): their out-of-band argument/value segments must be
        # unlinked, not leaked.
        for task_queue in self._task_queues:
            while True:
                try:
                    raw = task_queue.get_nowait()
                except Exception:
                    break
                if raw is None:
                    continue
                try:
                    self.fabric.transport.dispose(pickle.loads(raw)[5])
                except Exception:
                    pass
        while True:
            try:
                _e, _rank, ok, payload = self._result_queue.get_nowait()
            except Exception:
                break
            if ok == _SHARED_ACK:
                try:
                    self.fabric.transport.ring_ack(payload)
                except Exception:
                    pass
            elif ok:
                try:
                    self.fabric.transport.dispose(payload[0])
                except Exception:
                    pass
        # Retire the rings and unlink in-flight segments on the fabric.
        self.fabric.shutdown(
            drain_timeout=scale_timeout(0.25) if self.poisoned else 0.0)
        for task_queue in self._task_queues:
            task_queue.close()
            task_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = ("closed" if self._closed
                 else "poisoned" if self.poisoned else "live")
        return f"WorkerPool(n_procs={self.n_procs}, {state})"


# ----------------------------------------------------------------------------
# Process-wide default pool cache: warm-by-default drivers
# ----------------------------------------------------------------------------
# The driver layer (sample_matrix_parallel, permute_distributed,
# random_permutation(_indices), sample_communication_matrix) builds a fresh
# machine per call; with backend="process" that used to mean p process
# spawns per call.  The default cache below makes repeated driver calls
# warm *by default*: machines whose process backend is created with
# pool_scope="process" borrow a keyed standing fleet from here instead of
# spawning their own, and the fleet outlives the call.  Keys capture
# everything that makes two fleets interchangeable -- rank count,
# transport configuration (via transport.cache_key()), communication
# timeout and multiprocessing start method.  Determinism is untouched:
# per-rank streams are still built by each machine per run, so a fixed
# seed is bit-identical warm or cold.

#: key -> WorkerPool, in least-recently-used order (front = coldest).
_DEFAULT_POOLS: "OrderedDict[tuple, WorkerPool]" = OrderedDict()
#: Guards the cache dict itself; each pool's run() has its own lock.
_DEFAULT_POOLS_LOCK = threading.Lock()
#: Standing fleets kept warm at once; the least recently used fleet is
#: closed when the cache grows past this (override with the
#: REPRO_DEFAULT_POOL_CAP environment variable).
_DEFAULT_POOL_CAP = 4


def _default_pool_cap() -> int:
    try:
        return max(int(os.environ.get("REPRO_DEFAULT_POOL_CAP", "")), 1)
    except ValueError:
        return _DEFAULT_POOL_CAP


def _default_pool_key(n_procs, transport, timeout, start_method):
    """Cache key of one warm fleet, or ``None`` when not shareable."""
    key_fn = getattr(transport, "cache_key", None)
    if key_fn is None:
        return None
    try:
        transport_key = key_fn()
    except Exception:
        return None
    if transport_key is None:
        return None
    return (int(n_procs), transport_key, float(timeout), start_method)


def get_default_pool(n_procs: int, *, timeout: float = 60.0, mp_context=None,
                     transport=None, shutdown_grace: float = 5.0,
                     start_method: str | None = None) -> "WorkerPool | None":
    """The process-wide warm :class:`WorkerPool` for this configuration.

    Returns the cached standing fleet when one exists for the key
    ``(n_procs, transport.cache_key(), timeout, start_method)``.  A
    *poisoned* cached fleet is first healed in place
    (:meth:`WorkerPool.heal`: only the dead ranks respawn, survivors stay
    warm); when healing fails -- or the fleet is closed or inherited
    across a fork -- it is evicted, closed and replaced by a fresh spawn,
    so a crashed run degrades one call and the cache recovers itself
    either way.  Returns ``None`` -- the caller should keep a private
    pool -- when the transport opts out of cache keying.

    The cache holds at most ``REPRO_DEFAULT_POOL_CAP`` (default 4) fleets;
    the least recently used one is closed on overflow.  All cached fleets
    are released by :func:`clear_default_pools`, which also runs at
    interpreter exit.

    Examples
    --------
    >>> from repro.core.permutation import random_permutation
    >>> import numpy as np
    >>> out = random_permutation(np.arange(64), n_procs=2, backend="process",
    ...                          seed=0)   # first call spawns the fleet...
    >>> out = random_permutation(np.arange(64), n_procs=2, backend="process",
    ...                          seed=0)   # ...later calls reuse it warm
    >>> from repro.pro.backends.pool import clear_default_pools
    >>> clear_default_pools()              # explicit teardown (atexit does too)
    """
    key = _default_pool_key(n_procs, transport, timeout, start_method)
    if key is None:
        return None
    evicted: list = []
    with _DEFAULT_POOLS_LOCK:
        pool = _DEFAULT_POOLS.get(key)
        if (pool is not None and pool.in_owner_process
                and not pool.closed and not pool.poisoned):
            _DEFAULT_POOLS.move_to_end(key)
            return pool
        if (pool is not None and pool.in_owner_process
                and not pool.closed and pool.poisoned):
            # Heal in place before evict-and-respawn: only the dead ranks
            # are replaced, so the warm survivors (and their transports)
            # are kept.  Healing under the cache lock is acceptable --
            # poison is rare, and the bounded reap beats a full respawn.
            try:
                healed = pool.heal()
            except Exception:  # pragma: no cover - healing is best effort
                healed = False
            if healed:
                _DEFAULT_POOLS.move_to_end(key)
                return pool
        if pool is not None:
            # Closed, poisoned, or inherited across a fork (this process
            # does not own those workers): drop the handle and respawn.
            _DEFAULT_POOLS.pop(key, None)
            record_event("pool-evict", n_procs=pool.n_procs,
                         reason="unhealable")
            evicted.append(pool)
        pool = WorkerPool(n_procs, timeout=timeout, mp_context=mp_context,
                          transport=transport, shutdown_grace=shutdown_grace)
        _DEFAULT_POOLS[key] = pool
        cap = _default_pool_cap()
        while len(_DEFAULT_POOLS) > cap:
            _key, coldest = _DEFAULT_POOLS.popitem(last=False)
            record_event("pool-evict", n_procs=coldest.n_procs, reason="lru")
            evicted.append(coldest)
    # Teardown happens outside the cache lock: closing a fleet waits for
    # (and may grace-join) its workers, and no other driver call should
    # stall on the global lock behind that.
    for old in evicted:
        try:
            old.close()  # no-op beyond bookkeeping in a forked child
        except Exception:  # pragma: no cover - eviction is best effort
            pass
    return pool


def clear_default_pools() -> None:
    """Close every fleet in the process-wide default pool cache.

    Idempotent, registered with ``atexit``, and safe to call between
    measurements or tests to force the next driver call back onto the
    cold path.  Fleets currently borrowed by a live machine are closed
    too (their next ``run()`` raises ``BackendError``); build a new
    machine -- or just call the driver again -- to respawn.  In a forked
    child the inherited handles are only dropped -- the owning process
    reaps the actual workers.
    """
    drained: list = []
    with _DEFAULT_POOLS_LOCK:
        while _DEFAULT_POOLS:
            drained.append(_DEFAULT_POOLS.popitem()[1])
    for pool in drained:
        try:
            pool.close()
        except Exception:  # pragma: no cover - teardown is best effort
            pass


def default_pools() -> dict:
    """Snapshot of the default pool cache (key -> pool; for tests/tools)."""
    with _DEFAULT_POOLS_LOCK:
        return dict(_DEFAULT_POOLS)


atexit.register(clear_default_pools)


@contextmanager
def pool(n_procs: int, *, seed=None, transport=None, timeout: float = 60.0,
         retry=None, telemetry=None, **machine_options):
    """Context manager: a persistent process machine, closed on exit.

    ::

        from repro.pro.backends.pool import pool

        with pool(4, seed=42) as machine:
            for _ in range(100):
                machine.run(program)   # spawn paid once, not 100 times

    ``retry`` (an int or a :class:`~repro.pro.resilience.RetryPolicy`)
    puts the machine under supervision: a run that fails transiently
    heals the fleet -- respawning only the dead ranks -- and replays the
    epoch bit-identically.  ``telemetry`` (a
    :class:`~repro.pro.telemetry.Telemetry` recorder) collects one
    :class:`~repro.pro.telemetry.FleetReport` per run, with the workers'
    transport counters and ring geometry repatriated to the parent.
    Extra keyword arguments are forwarded to
    :class:`~repro.pro.machine.PROMachine` (e.g. ``topology=...`` or
    ``count_random_variates=True``); the backend is always the persistent
    process backend.
    """
    from repro.pro.machine import PROMachine

    backend_options = machine_options.pop("backend_options", {})
    if transport is not None:
        backend_options = {**backend_options, "transport": transport}
    machine = PROMachine(
        n_procs, seed=seed, backend="process", persistent=True,
        backend_options=backend_options, timeout=timeout, retry=retry,
        telemetry=telemetry, **machine_options,
    )
    try:
        yield machine
    finally:
        machine.close()
