"""Persistent worker pool: amortise process spawn across machine runs.

The plain :class:`~repro.pro.backends.process.ProcessBackend` forks ``p``
fresh OS processes for every ``run()`` -- the dominant process-backend
overhead on small problem sizes, paid again on every call.  The paper's
coarse-grained model (like the PRO model it builds on) assumes the
parallel machine is a *standing* resource whose setup is paid once; the
:class:`WorkerPool` makes the backend behave that way:

* ``p`` long-lived daemon ranks are spawned **once**, inheriting the
  fabric (queues, barrier, shared-memory ring segments) that every later
  run reuses;
* each ``run()`` dispatches one lightweight *run-epoch record* per rank
  -- the rank's freshly built random stream and cost recorder plus the
  (pickled) program and arguments -- through a per-rank task queue;
* results, cost records and variate counts flow back through a shared
  result queue exactly as in the one-shot backend, so cost reports stay
  backend-independent;
* the per-rank RNG streams are still built *in the parent* for every run
  (by the machine), so a fixed machine seed is bit-identical to the
  non-persistent path -- and to every other backend and transport.

Determinism contract
--------------------
``PROMachine(seed=s, persistent=True)`` run ``k`` times produces exactly
the same ``k`` results as ``PROMachine(seed=s)`` (non-persistent) run
``k`` times: persistence changes *where* the ranks live, never what they
draw.  ``tests/integration/test_cross_backend_determinism.py`` and the
pool lifecycle tests pin this.

Serialisation
-------------
Programs and arguments cross the dispatch queue, so they must be
picklable even on ``fork`` platforms (the one-shot backend inherits them
through the fork instead).  All the library's SPMD programs are
module-level functions and qualify; when ``cloudpickle`` is installed it
is used as a fallback serialiser, which widens support to closures and
lambdas.  An unserialisable program raises
:class:`~repro.util.errors.BackendError` *before* anything is dispatched.

Bulk arguments are encoded through the payload transport once **per
rank** (each receiver consumes -- and for dedicated segments unlinks --
its own copy), so a run whose arguments hold the whole input pays
``p * sizeof(args)`` in movement where a fork inherits them for free.
With the default ``sharedmem`` transport that is a memcpy per rank and
the pool still beats cold spawn on the tracked benchmarks; with the
in-band ``pickle`` transport large-argument workloads can be slower than
cold fork -- prefer ``sharedmem``, or keep huge constant state out of
the per-run arguments.  (Multi-consumer segments that would make the
encode once-per-run are a roadmap item.)

Crash semantics
---------------
A rank that raises, or a worker process that dies mid-run, **poisons**
the pool: the current ``run()`` raises ``BackendError``, every later
``run()`` raises immediately, and only ``close()`` (idempotent, also
registered with ``atexit``) releases the resources.  Poisoning is
deliberate -- after a broken barrier or an interrupted exchange the
fabric may hold stray messages, and silently reusing it could corrupt a
later run's results.  Build a fresh machine to continue.

``close()`` drains and disposes undelivered records and retires every
shared-memory ring segment, so a full lifecycle leaks no segments and no
``resource_tracker`` warnings.
"""

from __future__ import annotations

import atexit
import pickle
import queue as _pyqueue
import time
from contextlib import contextmanager
from typing import Callable, Sequence

from repro.pro.backends.process import (
    ProcessFabric,
    _portable_exception,
    _VariateCount,
)
from repro.pro.communicator import Communicator
from repro.util.errors import BackendError, CommunicationError, ValidationError

try:  # optional: widens program serialisation to closures/lambdas
    import cloudpickle as _cloudpickle
except ImportError:  # pragma: no cover - exercised where cloudpickle is absent
    _cloudpickle = None

__all__ = ["WorkerPool", "pool"]


def _dumps(obj) -> bytes:
    """Serialise ``obj`` for the dispatch queue (cloudpickle fallback)."""
    try:
        return pickle.dumps(obj)
    except Exception:
        if _cloudpickle is None:
            raise
        return _cloudpickle.dumps(obj)


def _pool_worker_main(rank: int, fabric: ProcessFabric, task_queue,
                      result_queue) -> None:
    """Main loop of one standing rank (module-level for spawn support).

    Blocks on the task queue; ``None`` is the shutdown sentinel.  Each
    task carries one run-epoch: receipts for ring slots the parent has
    released, the rank's fresh context pieces and the pickled program.
    A failing epoch aborts the shared barrier (siblings fail fast),
    reports the failure and *exits* -- the pool is poisoned either way,
    and a worker that kept looping on a broken barrier could only produce
    corrupt runs.
    """
    while True:
        raw = task_queue.get()
        if raw is None:
            return
        task = pickle.loads(raw)
        epoch, receipts, rng, cost, program_blob, args_record = task
        # Scope this run's message tags to its epoch and drop anything a
        # previous run parked but never consumed: stale messages must not
        # satisfy a later run's receive (the one-shot backend gets this
        # for free by discarding the whole fabric).
        fabric.epoch = epoch
        fabric._parked.clear()
        for receipt in receipts:
            try:
                fabric.transport.ring_ack(receipt)
            except Exception:  # pragma: no cover - acks are best effort
                pass
        try:
            program = pickle.loads(program_blob)
            # Bulk arguments travel out-of-band through the payload
            # transport (the control record above stays small); with the
            # shared-memory transport the worker gets zero-copy views.
            args, kwargs = fabric.transport.decode(args_record)
            # Rebuild the context around the standing fabric: communicator
            # state (parked messages, collective counters) starts fresh
            # every epoch, exactly as in the one-shot backend.
            from repro.pro.machine import ProcessorContext

            ctx = ProcessorContext(
                rank=rank, n_procs=fabric.n_procs,
                comm=Communicator(fabric, rank, cost), rng=rng, cost=cost,
            )
            value = program(ctx, *args, **kwargs)
            variates = getattr(ctx.rng, "total_variates", None)
            result_queue.put((
                epoch, rank, True,
                (fabric.encode_payload(rank, value), ctx.cost, variates),
            ))
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            try:
                fabric.abort()
            except Exception:
                pass
            result_queue.put((epoch, rank, False, _portable_exception(exc)))
            return


class WorkerPool:
    """``p`` standing daemon ranks sharing one persistent fabric.

    Parameters
    ----------
    n_procs:
        Number of ranks; fixed for the pool's lifetime.
    timeout:
        Communication timeout of the standing fabric (seconds).
    mp_context:
        The ``multiprocessing`` context to spawn workers from (the
        backend passes its configured start method's context).
    transport:
        Payload transport instance shared by the fabric and the result
        path (see :mod:`repro.pro.backends.transport`).
    shutdown_grace:
        Seconds :meth:`close` waits for workers to exit before
        terminating them.
    """

    def __init__(self, n_procs: int, *, timeout: float = 60.0, mp_context=None,
                 transport=None, shutdown_grace: float = 5.0):
        if n_procs < 1:
            raise ValidationError(f"n_procs must be >= 1, got {n_procs}")
        import multiprocessing

        mp = mp_context if mp_context is not None else multiprocessing.get_context()
        self.n_procs = int(n_procs)
        self.timeout = float(timeout)
        self.shutdown_grace = float(shutdown_grace)
        self.fabric = ProcessFabric(n_procs, timeout=timeout, mp_context=mp,
                                    transport=transport)
        self._task_queues = [mp.Queue() for _ in range(n_procs)]
        self._result_queue = mp.Queue()
        self._epoch = 0
        self._poison_reason: str | None = None
        self._closed = False
        #: Ring receipts released by parent-side result views since the
        #: last dispatch (appended from weakref finalizers; popped -- an
        #: atomic list operation -- when the next run ships them).
        self._pending_receipts: list = []
        self._workers = [
            mp.Process(
                target=_pool_worker_main,
                args=(rank, self.fabric, self._task_queues[rank],
                      self._result_queue),
                name=f"pro-pool-{rank}",
                daemon=True,
            )
            for rank in range(n_procs)
        ]
        for proc in self._workers:
            proc.start()
        atexit.register(self.close)

    # -- state --------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    @property
    def poisoned(self) -> bool:
        """True after a failed run; every later run raises ``BackendError``."""
        return self._poison_reason is not None

    def _poison(self, reason: str) -> None:
        if self._poison_reason is None:
            self._poison_reason = reason

    def worker_pids(self) -> list[int]:
        """PIDs of the standing ranks (stable across runs; for tests)."""
        return [proc.pid for proc in self._workers]

    # -- running ------------------------------------------------------------
    def run(self, contexts: Sequence, program: Callable, args: tuple,
            kwargs: dict) -> list:
        """Dispatch one run-epoch to the standing ranks and collect results."""
        if self._closed:
            raise BackendError("the worker pool is closed; build a new machine")
        if self._poison_reason is not None:
            raise BackendError(
                f"the worker pool is poisoned ({self._poison_reason}); "
                "build a new machine to continue"
            )
        n = len(contexts)
        if n != self.n_procs:
            raise BackendError(
                f"this pool runs {self.n_procs} ranks but {n} contexts were given"
            )
        dead = [rank for rank, proc in enumerate(self._workers)
                if not proc.is_alive()]
        if dead:
            self._poison(f"worker rank {dead[0]} died between runs")
            raise BackendError(
                f"the worker pool is poisoned ({self._poison_reason}); "
                "build a new machine to continue"
            )
        self._epoch += 1
        epoch = self._epoch
        receipts = self._drain_receipts()
        # Serialise the whole epoch *eagerly* in the parent: a task that
        # cannot be pickled must raise here, as a clear BackendError,
        # before any rank has been dispatched (handing raw objects to the
        # queue would defer pickling to its feeder thread, turning the
        # same failure into a hang).  Bulk array arguments travel
        # out-of-band through the payload transport -- one encode per
        # rank, since each receiver consumes (and for dedicated segments
        # unlinks) its own copy -- so the queued control record stays
        # small.
        args_records: list = []
        task_blobs: list = []
        try:
            program_blob = _dumps(program)
            for rank in range(n):
                ctx = contexts[rank]
                args_record = self.fabric.transport.encode((args, kwargs))
                args_records.append(args_record)
                task_blobs.append(_dumps(
                    (epoch, receipts.get(rank, []), ctx.rng, ctx.cost,
                     program_blob, args_record)
                ))
        except Exception as exc:
            for record in args_records:
                try:
                    self.fabric.transport.dispose(record)
                except Exception:
                    pass
            # Nothing was dispatched: put the drained ring receipts back so
            # the slots they name are still acked by a later, successful run
            # (dropping them would pin ring space for the pool's lifetime).
            for rank_receipts in receipts.values():
                self._pending_receipts.extend(rank_receipts)
            raise BackendError(
                "persistent process runs dispatch the program and its "
                "arguments through a queue, so they must be picklable "
                "(module-level functions work; installing cloudpickle widens "
                f"this to closures): {type(exc).__name__}: {exc}"
            ) from exc
        for rank in range(n):
            self._task_queues[rank].put(task_blobs[rank])

        outcomes = self._collect(epoch, n)
        failed = []
        for rank in range(n):
            entry = outcomes.get(rank)
            if entry is None:
                proc = self._workers[rank]
                state = ("exited (code {})".format(proc.exitcode)
                         if not proc.is_alive() else "stopped responding")
                failed.append((rank, CommunicationError(
                    f"rank {rank} {state} without reporting a result"
                )))
            elif not entry[0]:
                failed.append((rank, entry[1]))
        if failed:
            self._poison(f"rank {failed[0][0]} failed during run {epoch}")
            for rank in range(n):  # undecoded successes may hold segments
                entry = outcomes.get(rank)
                if entry is not None and entry[0]:
                    try:
                        self.fabric.transport.dispose(entry[1][0])
                    except Exception:
                        pass
            primary = next(
                ((rank, exc) for rank, exc in failed
                 if not isinstance(exc, CommunicationError)),
                failed[0],
            )
            rank, exc = primary
            if isinstance(exc, Exception):
                raise BackendError(f"rank {rank} failed: {exc!r}") from exc
            raise exc  # KeyboardInterrupt and friends propagate unchanged

        results: list = [None] * n
        for rank in range(n):
            encoded_value, cost, variates = outcomes[rank][1]
            results[rank] = self.fabric.decode_payload(
                encoded_value, ack=self._pending_receipts.append
            )
            contexts[rank].cost = cost
            if variates is not None:
                contexts[rank].rng = _VariateCount(variates)
        return results

    def _drain_receipts(self) -> dict:
        """Pending ring receipts grouped by the owning rank."""
        drained = []
        while self._pending_receipts:
            try:
                drained.append(self._pending_receipts.pop())
            except IndexError:  # pragma: no cover - finalizer race
                break
        if not drained or self.fabric._ring_names is None:
            return {}
        by_rank: dict = {}
        ring_to_rank = {name: rank
                        for rank, name in enumerate(self.fabric._ring_names)}
        for receipt in drained:
            rank = ring_to_rank.get(receipt[0]) if receipt else None
            if rank is not None:
                by_rank.setdefault(rank, []).append(receipt)
        return by_rank

    def _collect(self, epoch: int, n: int) -> dict:
        """Gather this epoch's per-rank outcomes, watching worker liveness.

        Like the one-shot backend there is no overall wall-clock deadline:
        healthy ranks may compute for as long as they like, and blocked
        communication times out inside the workers.  A worker that dies
        without reporting breaks the run: the parent aborts the shared
        barrier so surviving ranks fail fast, then gives them a short
        grace period to report their (Communication)errors.
        """
        outcomes: dict = {}
        aborted = False
        deadline = None
        while len(outcomes) < n:
            if deadline is not None and time.monotonic() > deadline:
                break
            try:
                e, rank, ok, payload = self._result_queue.get(timeout=0.2)
            except _pyqueue.Empty:
                if not aborted and not all(p.is_alive() for p in self._workers):
                    aborted = True
                    try:
                        self.fabric.abort()
                    except Exception:
                        pass
                    deadline = time.monotonic() + max(self.shutdown_grace, 1.0)
                continue
            except Exception:  # pragma: no cover - truncated pickle after a kill
                continue
            if e != epoch:
                # Straggler from an earlier (failed) epoch: release any
                # out-of-band resources and ignore it.
                if ok:
                    try:
                        self.fabric.transport.dispose(payload[0])
                    except Exception:
                        pass
                continue
            outcomes[rank] = (ok, payload)
        return outcomes

    # -- shutdown -----------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release every fabric resource (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        for proc in self._workers:
            proc.join(timeout=self.shutdown_grace)
        for proc in self._workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.shutdown_grace)
        # Dispose undelivered tasks (a rank that died before picking its
        # task up leaves it queued) and results (a poisoned pool may
        # leave some): their out-of-band argument/value segments must be
        # unlinked, not leaked.
        for task_queue in self._task_queues:
            while True:
                try:
                    raw = task_queue.get_nowait()
                except Exception:
                    break
                if raw is None:
                    continue
                try:
                    self.fabric.transport.dispose(pickle.loads(raw)[5])
                except Exception:
                    pass
        while True:
            try:
                _e, _rank, ok, payload = self._result_queue.get_nowait()
            except Exception:
                break
            if ok:
                try:
                    self.fabric.transport.dispose(payload[0])
                except Exception:
                    pass
        # Retire the rings and unlink in-flight segments on the fabric.
        self.fabric.shutdown(drain_timeout=0.25 if self.poisoned else 0.0)
        for task_queue in self._task_queues:
            task_queue.close()
            task_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = ("closed" if self._closed
                 else "poisoned" if self.poisoned else "live")
        return f"WorkerPool(n_procs={self.n_procs}, {state})"


@contextmanager
def pool(n_procs: int, *, seed=None, transport=None, timeout: float = 60.0,
         **machine_options):
    """Context manager: a persistent process machine, closed on exit.

    ::

        from repro.pro.backends.pool import pool

        with pool(4, seed=42) as machine:
            for _ in range(100):
                machine.run(program)   # spawn paid once, not 100 times

    Extra keyword arguments are forwarded to
    :class:`~repro.pro.machine.PROMachine` (e.g. ``topology=...`` or
    ``count_random_variates=True``); the backend is always the persistent
    process backend.
    """
    from repro.pro.machine import PROMachine

    backend_options = machine_options.pop("backend_options", {})
    if transport is not None:
        backend_options = {**backend_options, "transport": transport}
    machine = PROMachine(
        n_procs, seed=seed, backend="process", persistent=True,
        backend_options=backend_options, timeout=timeout, **machine_options,
    )
    try:
        yield machine
    finally:
        machine.close()
