"""Schedule-driven fault injection for every execution backend.

The permutation and matrix algorithms are only trustworthy if the whole
backend matrix fails *cleanly*: a crashed rank, a dropped message or a
broken barrier must surface as a :class:`~repro.util.errors.BackendError`
in the caller, with siblings failing fast and every out-of-band resource
(shared-memory segment, ring slot) released.  This module makes those
failures injectable on demand, against *any* backend, by wrapping the
fabric each rank sees:

* a **fault plan** is a list of declarative fault records --
  :class:`CrashRank`, :class:`DropMessage`, :class:`DelayMessage`,
  :class:`BarrierTimeout`, :class:`AbortTransfer` -- addressed by rank and
  by per-rank operation / message counters, so a plan is itself a
  deterministic schedule of failures;
* :class:`FaultInjectingBackend` wraps a registered backend (by name or
  instance).  It does not touch the backend's fabric construction -- the
  process backend keeps its real :class:`~repro.pro.backends.process.
  ProcessFabric` -- it only wraps the *program*: on entry each rank
  rebinds its communicator to a :class:`_RankFaultView` proxy that counts
  the rank's fabric operations and fires the plan's faults at the right
  moment.  The wrapper and the plan are picklable, so injection works
  unchanged through the process backend and the persistent worker pool;
* under the sim backend a fault that stalls a receiver is *proved* as a
  deadlock instantly instead of burning the communication timeout, which
  is what makes fault sweeps affordable in unit-test time.

Reproducing and shrinking a failing interleaving
------------------------------------------------
A failure found by sweeping sim schedules is replayed by passing the
recorded decision trace back to the backend
(``SimBackend(schedule=trace)``), and :func:`shrink_schedule` minimises
that trace with a ddmin-style deletion pass: because a sim schedule's
every prefix is itself a valid schedule (divergence falls back to
run-to-block order), deleting decisions keeps the replay well defined and
the shrinker converges on a short reproducer.

Example
-------
::

    from repro.pro.backends.faults import DropMessage, FaultInjectingBackend
    from repro.pro.machine import PROMachine

    backend = FaultInjectingBackend("sim", [DropMessage(src=0, dst=1)])
    PROMachine(2, seed=1, backend=backend).run(program)   # BackendError
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.pro.backends.registry import resolve_backend
from repro.util.errors import CommunicationError, ReproError, ValidationError

__all__ = [
    "InjectedFault",
    "CrashRank",
    "DropMessage",
    "DelayMessage",
    "BarrierTimeout",
    "AbortTransfer",
    "FaultPlan",
    "FaultInjectingBackend",
    "shrink_schedule",
]


class InjectedFault(ReproError):
    """An artificial failure raised inside a rank by a fault plan.

    Deliberately *not* a :class:`~repro.util.errors.CommunicationError`:
    backends prefer non-communication failures as the root cause when
    picking which rank's error to re-raise, exactly as a real rank crash
    would be preferred over the barrier breakage it provokes.  It *is*
    transient (see :func:`~repro.util.errors.is_transient_failure`):
    injected faults model substrate failures, so retry policies treat a
    faulted run as recoverable -- which is exactly what lets chaos plans
    exercise the recovery paths of :mod:`repro.pro.resilience`.
    """

    transient = True


# ----------------------------------------------------------------------------
# Fault records (declarative, picklable, addressed by per-rank counters)
# ----------------------------------------------------------------------------
@dataclass(frozen=True)
class CrashRank:
    """Raise :class:`InjectedFault` on ``rank``'s ``at_op``-th fabric call.

    Operation indices count every ``put`` / ``get`` / ``barrier_wait`` the
    rank performs, starting at 0; ``at_op=0`` crashes the rank at its very
    first communication.

    Every fault record carries an optional ``at_run``: ``None`` (default)
    fires on every run the plan is applied to, an integer restricts the
    fault to that zero-based run of the wrapping
    :class:`FaultInjectingBackend` -- with ``at_run=0`` a retried epoch
    replays fault-free, which is how the chaos suites assert recovery.
    """

    rank: int
    at_op: int = 0
    at_run: int | None = None


@dataclass(frozen=True)
class DropMessage:
    """Silently discard the ``nth`` message ``src`` sends to ``dst``.

    The receiver never sees it: a blocking receive for it deadlocks --
    proved instantly under the sim backend, a communication timeout under
    the thread/process backends -- and surfaces as ``BackendError``.
    """

    src: int
    dst: int
    nth: int = 0
    at_run: int | None = None


@dataclass(frozen=True)
class DelayMessage:
    """Defer the ``nth`` message ``src`` -> ``dst`` by ``by`` operations.

    The message is withheld and re-injected after the sender has performed
    ``by`` further fabric operations (or at its next ``barrier_wait``,
    whichever comes first -- a barrier is a superstep boundary and the
    algorithms' correctness only assumes delivery within the superstep).
    Because receives match on tags and park strays, a delayed-but-delivered
    message must not change any result; a message still undelivered when
    its sender finishes behaves like a drop.
    """

    src: int
    dst: int
    nth: int = 0
    by: int = 1
    at_run: int | None = None


@dataclass(frozen=True)
class BarrierTimeout:
    """Time out ``rank``'s ``nth`` barrier entry (breaking it for everyone).

    Mirrors a real ``Barrier.wait(timeout=...)`` expiry: the barrier is
    aborted -- siblings parked in it fail fast with
    :class:`~repro.util.errors.CommunicationError` -- and the faulted rank
    raises the timeout error itself.
    """

    rank: int
    nth: int = 0
    at_run: int | None = None


@dataclass(frozen=True)
class AbortTransfer:
    """Abort the run mid-transfer: the ``nth`` ``src`` -> ``dst`` send
    breaks the barrier, is never delivered, and raises in the sender.

    Earlier in-flight messages are left undelivered in the fabric, which
    is exactly what exercises the transport-disposal shutdown path of
    out-of-address-space backends (no leaked segments under ``-W error``).
    """

    src: int
    dst: int
    nth: int = 0
    at_run: int | None = None


_FAULT_TYPES = (CrashRank, DropMessage, DelayMessage, BarrierTimeout, AbortTransfer)


class FaultPlan:
    """An immutable, picklable collection of fault records."""

    def __init__(self, faults: Sequence):
        faults = tuple(faults)
        for fault in faults:
            if not isinstance(fault, _FAULT_TYPES):
                raise ValidationError(
                    f"unknown fault record {fault!r}; use "
                    f"{', '.join(t.__name__ for t in _FAULT_TYPES)}"
                )
        self.faults = faults

    def for_run(self, run_index: int) -> "FaultPlan":
        """The sub-plan active on the ``run_index``-th run of the wrapper.

        Records with ``at_run=None`` are active on every run; records
        pinned to a run only fire there, so a chaos plan of ``at_run=0``
        faults yields an *empty* plan for the retry attempt.
        """
        return FaultPlan(
            fault for fault in self.faults
            if getattr(fault, "at_run", None) in (None, run_index)
        )

    def owned_by(self, rank: int) -> tuple:
        """The records acted out by ``rank`` (crashes, sends, barriers)."""
        return tuple(
            fault for fault in self.faults
            if getattr(fault, "rank", getattr(fault, "src", None)) == rank
        )

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FaultPlan({list(self.faults)!r})"


# ----------------------------------------------------------------------------
# The per-rank fabric proxy
# ----------------------------------------------------------------------------
class _RankFaultView:
    """Fabric proxy for one rank: counts its operations, fires its faults.

    Wraps whatever fabric the backend built (in-process, sim, process) and
    forwards the :class:`~repro.pro.communicator.MessageFabric` protocol;
    each rank gets its own view (rebinding ``ctx.comm._fabric`` is
    rank-local because every rank owns its communicator), so the counters
    are per-rank even when the underlying fabric object is shared.
    """

    def __init__(self, inner, plan: FaultPlan, rank: int):
        self._inner = inner
        self._rank = rank
        self._ops = 0
        self._barriers = 0
        self._sent: dict[int, int] = {}
        self._delayed: list[list] = []  # [countdown, dst, tag, payload]
        mine = plan.owned_by(rank)
        self._crashes = tuple(f for f in mine if isinstance(f, CrashRank))
        self._barrier_faults = tuple(f for f in mine if isinstance(f, BarrierTimeout))
        self._send_faults: dict[int, list] = {}
        for fault in mine:
            if isinstance(fault, (DropMessage, DelayMessage, AbortTransfer)):
                self._send_faults.setdefault(fault.dst, []).append(fault)

    # -- contract attributes -------------------------------------------------
    @property
    def n_procs(self) -> int:
        return self._inner.n_procs

    @property
    def timeout(self) -> float:
        return self._inner.timeout

    # -- fault machinery -----------------------------------------------------
    def _tick(self) -> None:
        op = self._ops
        self._ops += 1
        for fault in self._crashes:
            if fault.at_op == op:
                raise InjectedFault(
                    f"rank {self._rank} crashed by fault injection at its "
                    f"fabric operation #{op}"
                )
        self._advance_delayed()

    def _advance_delayed(self, *, flush: bool = False) -> None:
        still = []
        for entry in self._delayed:
            entry[0] -= 1
            if flush or entry[0] <= 0:
                self._inner.put(self._rank, entry[1], entry[2], entry[3])
            else:
                still.append(entry)
        self._delayed = still

    # -- MessageFabric protocol ----------------------------------------------
    def put(self, src: int, dst: int, tag, payload) -> None:
        self._tick()
        index = self._sent.get(dst, 0)
        self._sent[dst] = index + 1
        for fault in self._send_faults.get(dst, ()):
            if fault.nth != index:
                continue
            if isinstance(fault, DropMessage):
                return  # the receiver never hears about it
            if isinstance(fault, DelayMessage):
                self._delayed.append([fault.by, dst, tag, payload])
                return
            # AbortTransfer: break the run mid-flight, message undelivered.
            try:
                self._inner.abort()
            except Exception:
                pass
            raise InjectedFault(
                f"transfer {src} -> {dst} (message #{index}) aborted "
                "mid-flight by fault injection"
            )
        self._inner.put(src, dst, tag, payload)

    def get(self, src: int, dst: int, tag, pending: list):
        self._tick()
        return self._inner.get(src, dst, tag, pending)

    def barrier_wait(self) -> None:
        self._tick()
        # A barrier closes the superstep: anything still delayed is due.
        self._advance_delayed(flush=True)
        index = self._barriers
        self._barriers += 1
        for fault in self._barrier_faults:
            if fault.nth == index:
                try:
                    self._inner.abort()  # a real timeout breaks it for everyone
                except Exception:
                    pass
                raise CommunicationError(
                    f"rank {self._rank} timed out in barrier #{index} "
                    "(injected fault; barrier broken for all ranks)"
                )
        self._inner.barrier_wait()

    def abort(self) -> None:
        self._inner.abort()


class _FaultedProgram:
    """Picklable program wrapper installing the per-rank fault view."""

    def __init__(self, program: Callable, plan: FaultPlan):
        self._program = program
        self._plan = plan

    def __call__(self, ctx, *args, **kwargs):
        ctx.comm._fabric = _RankFaultView(ctx.comm._fabric, self._plan, ctx.rank)
        return self._program(ctx, *args, **kwargs)


class FaultInjectingBackend:
    """Wrap any execution backend so its runs act out a fault plan.

    Parameters
    ----------
    backend:
        A registered backend name (``"sim"``, ``"thread"``, ``"process"``,
        ...) or a backend instance.
    faults:
        A :class:`FaultPlan` or a sequence of fault records.
    **backend_options:
        Forwarded to the backend factory when ``backend`` is a name (e.g.
        ``transport="pickle"`` or ``schedule_seed=7``).

    The wrapper leaves fabric construction to the inner backend (so the
    process backend keeps its real fabric, transports, pools) and only
    wraps the dispatched program; everything else -- capabilities,
    ``close()``, ``persistent`` -- is delegated.  Pass an instance of this
    class as ``PROMachine(..., backend=...)``.
    """

    def __init__(self, backend, faults, **backend_options):
        self._backend = resolve_backend(backend, **backend_options)
        self.plan = faults if isinstance(faults, FaultPlan) else FaultPlan(faults)
        #: How many ``run()`` calls this wrapper has dispatched; fault
        #: records pinned with ``at_run=k`` fire on the k-th one only.
        #: A retry policy's second attempt is a fresh ``run()``, so
        #: ``at_run=0`` plans replay fault-free on retry.
        self.runs_started = 0

    @property
    def name(self) -> str:
        return f"faulty+{getattr(self._backend, 'name', '?')}"

    @property
    def capabilities(self):
        return getattr(self._backend, "capabilities", None)

    @property
    def backend(self):
        """The wrapped backend (e.g. to read ``last_schedule`` off a sim)."""
        return self._backend

    def create_fabric(self, n_procs: int, *, timeout: float):
        return self._backend.create_fabric(n_procs, timeout=timeout)

    def run(self, contexts: Sequence, program: Callable, args: tuple, kwargs: dict) -> list:
        run_index = self.runs_started
        self.runs_started += 1
        return self._backend.run(
            contexts, _FaultedProgram(program, self.plan.for_run(run_index)), args, kwargs
        )

    def close(self) -> None:
        closer = getattr(self._backend, "close", None)
        if closer is not None:
            closer()

    def __getattr__(self, item):
        # Delegate everything else (persistent, last_schedule, transport...).
        # Private names are never delegated: that keeps the lookup of
        # self._backend itself from recursing while __init__ is underway.
        if item.startswith("_"):
            raise AttributeError(item)
        return getattr(self._backend, item)


# ----------------------------------------------------------------------------
# Schedule shrinking
# ----------------------------------------------------------------------------
def shrink_schedule(still_fails: Callable[[list[int]], bool],
                    schedule: Sequence[int], *,
                    max_probes: int = 2000) -> list[int]:
    """Minimise a failing sim schedule to a short reproducer (ddmin).

    ``still_fails(candidate)`` replays ``candidate`` (e.g. by running the
    machine with ``SimBackend(schedule=candidate)``) and returns True when
    the failure still occurs.  The input ``schedule`` must itself fail.
    Deletion is sound because sim replay treats any prefix/subsequence as
    a valid schedule: exhausted or diverging decisions fall back to
    deterministic run-to-block order.

    The classic delta-debugging deletion pass: remove chunks of
    geometrically shrinking size while the failure persists, stopping
    after ``max_probes`` replays.  Returns the shortest failing schedule
    found (1-minimal when the probe budget suffices).
    """
    current = [int(choice) for choice in schedule]
    if not still_fails(list(current)):
        raise ValidationError(
            "shrink_schedule needs a failing schedule to start from "
            "(still_fails(schedule) returned False)"
        )
    probes = 0
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        index = 0
        while index < len(current):
            if probes >= max_probes:
                return current
            candidate = current[:index] + current[index + chunk:]
            probes += 1
            if still_fails(list(candidate)):
                current = candidate  # keep the deletion, retry same index
            else:
                index += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return current
