"""Inline (single-rank) execution backend.

Used when the machine is configured with ``n_procs == 1``: the single rank is
executed directly in the calling thread, which keeps sequential reference
runs free of thread start-up noise and makes debugging with ``pdb`` trivial.
The backend refuses multi-rank programs because a single thread cannot serve
blocking receives between ranks.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.pro.backends.registry import (
    BackendCapabilities,
    ExecutionBackend,
    register_backend,
)
from repro.util.errors import BackendError

__all__ = ["InlineBackend"]


class InlineBackend(ExecutionBackend):
    """Run a one-processor program in the calling thread."""

    name = "inline"
    capabilities = BackendCapabilities(
        multirank=False,
        blocking_p2p=False,
        true_parallelism=False,
        shared_address_space=True,
        deterministic_schedule=True,
    )

    def run(self, contexts: Sequence, program: Callable, args: tuple, kwargs: dict) -> list:
        """Execute the single-rank program and return ``[result]``."""
        if len(contexts) != 1:
            raise BackendError(
                f"the inline backend only supports n_procs == 1, got {len(contexts)} ranks; "
                "use the thread backend for multi-processor runs"
            )
        return [program(contexts[0], *args, **kwargs)]


register_backend(
    "inline",
    InlineBackend,
    description="single rank in the calling thread (p == 1 only)",
)
