"""PRO-model quality analysis of a measured run.

The PRO model (Gebremedhin, Guerin Lassous, Gustedt & Telle 2002) judges a
parallel algorithm *relative to a fixed sequential reference*: an algorithm
is admissible only when it is work- and space-optimal with respect to that
reference, and its quality is expressed by its **granularity function**
``Grain(n)`` -- the largest number of processors for which the algorithm
still yields linear speed-up.  For the permutation algorithm the paper
claims ``Grain(n) = sqrt(n)`` when the matrix is computed in parallel
(Algorithm 6) and ``sqrt(n / log n)`` with the log-factor Algorithm 5.

This module turns a measured :class:`~repro.pro.cost.CostReport` plus a
sequential reference cost into exactly these judgements:

* is the run work-optimal (total work within a constant of the reference)?
* is it space-optimal (per-processor memory O(reference / p))?
* is it balanced (max/mean per-processor load bounded)?
* what speed-up does the cost model predict, and up to which ``p`` does the
  predicted speed-up stay within a factor of the ideal ``p``?

These checks back the work-optimality/balance assertions in the integration
tests and give library users a one-call audit of their own PRO programs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pro.cost import CostReport
from repro.util.errors import ValidationError
from repro.util.tables import format_table
from repro.util.validation import check_positive_int

__all__ = ["SequentialReference", "PROAssessment", "assess_run", "granularity"]


@dataclass(frozen=True)
class SequentialReference:
    """Resource usage of the sequential reference algorithm.

    For random permutation the reference is Fisher-Yates on one processor:
    ``operations = n`` item moves, ``memory_words = n`` and
    ``random_variates = n - 1``.
    """

    operations: int
    memory_words: int
    random_variates: int = 0

    @classmethod
    def fisher_yates(cls, n_items: int) -> "SequentialReference":
        """The reference used throughout the paper for permutations of ``n_items``."""
        n_items = check_positive_int(n_items, "n_items")
        return cls(operations=n_items, memory_words=n_items, random_variates=max(n_items - 1, 0))


@dataclass
class PROAssessment:
    """Outcome of :func:`assess_run`."""

    n_procs: int
    work_ratio: float                 # total parallel work / sequential work
    memory_ratio: float               # max per-proc memory / (sequential memory / p)
    variate_ratio: float              # total variates / sequential variates (0 if reference has none)
    compute_imbalance: float          # max/mean per-processor compute
    communication_imbalance: float    # max/mean per-processor words sent
    work_optimal: bool
    space_optimal: bool
    balanced: bool

    @property
    def admissible(self) -> bool:
        """True when the run satisfies all three PRO admissibility criteria."""
        return self.work_optimal and self.space_optimal and self.balanced

    def summary_table(self) -> str:
        """Human-readable assessment."""
        rows = [
            ["total work / sequential work", f"{self.work_ratio:.2f}", "<= allowed constant"],
            ["max memory / (sequential / p)", f"{self.memory_ratio:.2f}", "<= allowed constant"],
            ["random variates / sequential", f"{self.variate_ratio:.2f}", "<= allowed constant"],
            ["compute imbalance (max/mean)", f"{self.compute_imbalance:.2f}", "~ 1 means balanced"],
            ["communication imbalance", f"{self.communication_imbalance:.2f}", "~ 1 means balanced"],
            ["work-optimal", self.work_optimal, ""],
            ["space-optimal", self.space_optimal, ""],
            ["balanced", self.balanced, ""],
            ["PRO-admissible", self.admissible, ""],
        ]
        return format_table(["criterion", "value", "note"], rows,
                            title=f"PRO assessment ({self.n_procs} processors)")


def assess_run(
    report: CostReport,
    reference: SequentialReference,
    *,
    work_constant: float = 8.0,
    space_constant: float = 8.0,
    balance_constant: float = 2.0,
) -> PROAssessment:
    """Judge a measured run against a sequential reference in the PRO sense.

    The constants bound the acceptable constant factors; the defaults are
    deliberately generous (the model only cares about asymptotics) but tight
    enough that a log-factor blow-up on realistic sizes trips them.
    """
    if reference.operations <= 0:
        raise ValidationError("the sequential reference must do at least one operation")
    p = report.n_procs

    total_work = report.total("compute_ops")
    work_ratio = total_work / reference.operations

    max_memory = report.max_over_ranks("memory_words_peak")
    per_proc_budget = reference.memory_words / p if reference.memory_words else 1
    memory_ratio = max_memory / per_proc_budget if per_proc_budget else 0.0

    if reference.random_variates > 0:
        variate_ratio = report.total("random_variates") / reference.random_variates
    else:
        variate_ratio = 0.0

    compute_imbalance = report.imbalance("compute_ops")
    communication_imbalance = report.imbalance("words_sent")

    return PROAssessment(
        n_procs=p,
        work_ratio=work_ratio,
        memory_ratio=memory_ratio,
        variate_ratio=variate_ratio,
        compute_imbalance=compute_imbalance,
        communication_imbalance=communication_imbalance,
        work_optimal=work_ratio <= work_constant and (variate_ratio <= work_constant),
        space_optimal=memory_ratio <= space_constant,
        balanced=compute_imbalance <= balance_constant and communication_imbalance <= balance_constant,
    )


def granularity(
    n_items: int,
    *,
    matrix_algorithm: str = "alg6",
) -> float:
    """The paper's granularity bound: the largest useful processor count.

    With Algorithm 6 the matrix work is ``O(p)`` per processor, so linear
    speed-up persists while ``p <= sqrt(n)``; with Algorithm 5 an extra
    ``log p`` is paid, shaving the bound to roughly ``sqrt(n / log n)``.
    The root-sequential variant computes the full ``p^2`` matrix on one
    processor, giving ``p <= n**(1/3)`` before the matrix dominates.
    """
    n_items = check_positive_int(n_items, "n_items")
    import math

    if matrix_algorithm == "alg6":
        return math.sqrt(n_items)
    if matrix_algorithm == "alg5":
        if n_items <= 2:
            return 1.0
        return math.sqrt(n_items / max(math.log2(n_items), 1.0))
    if matrix_algorithm == "root":
        return n_items ** (1.0 / 3.0)
    raise ValidationError(
        f"unknown matrix_algorithm {matrix_algorithm!r}; use 'alg5', 'alg6' or 'root'"
    )
