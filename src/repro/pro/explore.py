"""Systematic state-space exploration over the deterministic sim backend.

``tests/simulation/test_schedule_sweep.py`` established the *sampling*
regime: draw a few dozen ``schedule_seed`` interleavings per cell and check
that results never move.  Random draws, however, re-explore the same few
interleavings over and over -- measured on Algorithm 5 at ``p = 4``, five
hundred random seeds produce five hundred near-identical traces that all
collapse into a **single** commutation class of fabric operations.  This
module replaces sampling with *exploration*:

Fingerprints
    Every run is summarised by the occurrence order of its fabric
    operations plus its outcome.  :func:`canonical_fingerprint` hashes the
    **Foata normal form** of that op sequence under a conflict relation
    (:func:`ops_conflict`), so two interleavings that merely commute
    independent operations share a fingerprint -- the explorer counts
    *distinct behaviours*, not scheduler noise.
    :func:`interleaving_fingerprint` is the finer raw-order variant kept as
    a secondary coverage signal.

Guided search
    Each cell (program x p x fault plan) starts from its run-to-block
    reference run, then expands a frontier of **prefix flips**: at every
    recorded decision with more than one runnable rank, the explorer
    enqueues the prefix that forces an alternative choice -- except when
    the alternative's pending op is independent of the chosen op
    (sleep-set-style pruning: that flip provably lands in the same
    commutation class).  A PCT-style priority sampler
    (:class:`PCTPolicy`) adds depth-bounded random probes, and the budget
    is spent on whichever cell is still discovering new fingerprints
    fastest.

Findings
    Within one cell the outcome must be schedule-independent.  Any
    divergence (different result digest, failure where the reference
    succeeds) or hang (``max_decisions`` exceeded) is ddmin-shrunk with
    :func:`repro.pro.backends.faults.shrink_schedule` and can be emitted
    as a ready-to-commit pytest reproducer under
    ``tests/simulation/reproducers/``.

Surfaces: :func:`explore` (the engine), ``repro explore`` (CLI), the
nightly CI job, and telemetry events ``explore-start`` /
``explore-divergence`` / ``explore-shrink``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import re
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.pro.backends.faults import FaultInjectingBackend, shrink_schedule
from repro.pro.backends.sim import ScheduleLimitExceeded, SimBackend
from repro.pro.machine import PROMachine
from repro.pro.telemetry import record_event
from repro.util.errors import ValidationError

__all__ = [
    "ops_conflict",
    "foata_normal_form",
    "canonical_fingerprint",
    "interleaving_fingerprint",
    "outcomes_equivalent",
    "PCTPolicy",
    "EXPLORE_PROGRAMS",
    "DEFAULT_PROGRAMS",
    "default_row_sums",
    "replay_cell",
    "baseline_distinct",
    "generated_fault_plans",
    "committed_plans_for",
    "Finding",
    "ExplorationReport",
    "write_reproducer",
    "explore",
]


# ----------------------------------------------------------------------------
# Conflict relation and trace fingerprints
# ----------------------------------------------------------------------------
def _acting_rank(op: tuple) -> int:
    """The rank that performs ``op`` (put -> src, get -> dst, barrier -> rank)."""
    kind, a, b = op
    return b if kind == "get" else a


def ops_conflict(a: tuple, b: tuple) -> bool:
    """Dependence relation between two fabric ops ``(kind, src, dst)``.

    Two ops conflict (their order matters) when they are performed by the
    same rank (program order), touch the same ``(src, dst)`` channel
    (FIFO delivery order), or exactly one of them is a barrier (a barrier
    is a superstep fence for every rank).  Two barrier *arrivals* by
    different ranks commute: only the completed barrier matters.
    """
    if _acting_rank(a) == _acting_rank(b):
        return True
    a_barrier = a[0] == "barrier"
    b_barrier = b[0] == "barrier"
    if a_barrier != b_barrier:
        return True
    if a_barrier:
        return False
    return (a[1], a[2]) == (b[1], b[2])


def foata_normal_form(op_log: Sequence[tuple]) -> tuple:
    """Layered canonical form of an op sequence under :func:`ops_conflict`.

    Standard Mazurkiewicz-trace construction: each op is placed in the
    earliest layer strictly after every earlier conflicting op, and layers
    are sorted.  Two op sequences have the same Foata normal form exactly
    when one can be turned into the other by swapping adjacent independent
    ops, so the normal form *is* the commutation class.
    """
    layer_of: list[int] = []
    layers: list[list[tuple]] = []
    for i, op in enumerate(op_log):
        depth = 0
        for j in range(i):
            if ops_conflict(op_log[j], op):
                depth = max(depth, layer_of[j] + 1)
        layer_of.append(depth)
        while len(layers) <= depth:
            layers.append([])
        layers[depth].append(op)
    return tuple(tuple(sorted(layer)) for layer in layers)


def _hash(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def canonical_fingerprint(op_log: Sequence[tuple], outcome=None) -> str:
    """Fingerprint of a run's commutation class (plus its outcome).

    Interleavings that only reorder independent fabric ops share this
    fingerprint; the outcome is folded in so that runs whose op logs agree
    but whose results differ (the shared-state races the op log cannot
    see) still register as distinct behaviours.
    """
    return _hash(repr((foata_normal_form(op_log), outcome)))


def interleaving_fingerprint(op_log: Sequence[tuple], outcome=None) -> str:
    """Fingerprint of the exact op occurrence order (plus outcome)."""
    return _hash(repr((tuple(op_log), outcome)))


# ----------------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------------
def _digest(value) -> str:
    """Stable content digest of a program result."""
    h = hashlib.sha256()
    if isinstance(value, np.ndarray):
        h.update(repr((value.shape, str(value.dtype))).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    else:
        h.update(repr(value).encode())
    return h.hexdigest()[:16]


def outcomes_equivalent(a: tuple, b: tuple) -> bool:
    """Whether two ``replay_cell`` outcomes count as the same behaviour.

    Successful runs must match bit-for-bit (same result digest).  Two
    failing runs are equivalent regardless of the error class: which rank's
    error wins the race to be reported legitimately depends on the
    schedule, and flagging that as divergence would drown real findings.
    Hangs only match hangs.
    """
    if a[0] != b[0]:
        return False
    if a[0] == "ok":
        return a[1] == b[1]
    return True


# ----------------------------------------------------------------------------
# PCT-style sampling policy
# ----------------------------------------------------------------------------
class PCTPolicy:
    """Probabilistic concurrency testing sampler for the sim scheduler.

    Every rank gets a random priority; the highest-priority runnable rank
    always runs.  At ``depth`` pre-drawn decision indices the current
    front-runner is demoted below everyone, which is the PCT trick that
    hits any depth-``d`` ordering bug with known probability rather than
    hoping a uniform draw stumbles on it.
    """

    def __init__(self, seed: int, *, depth: int = 3, horizon: int = 64):
        rng = random.Random(seed)
        self._rng = rng
        self._priority: dict[int, float] = {}
        changes = min(depth, max(horizon - 1, 0))
        self._changes = sorted(rng.sample(range(1, horizon), changes)) if changes else []
        self._demotions = 0

    def choose(self, step: int, runnable: Sequence[int], pending: Mapping) -> int:
        for rank in runnable:
            if rank not in self._priority:
                self._priority[rank] = self._rng.random()
        if self._changes and step >= self._changes[0]:
            self._changes.pop(0)
            top = max(runnable, key=lambda r: (self._priority[r], r))
            self._demotions += 1
            self._priority[top] = -float(self._demotions)
        return max(runnable, key=lambda r: (self._priority[r], r))


# ----------------------------------------------------------------------------
# Cell programs
# ----------------------------------------------------------------------------
def default_row_sums(n_procs: int) -> np.ndarray:
    """The schedule-sweep suite's canonical row sums, shared for parity."""
    return (np.arange(1, n_procs + 1) * 3) % 7 + 2


def _matrix_program(algorithm: str) -> Callable:
    def run(machine: PROMachine):
        from repro.core.parallel_matrix import sample_matrix_parallel

        matrix, _ = sample_matrix_parallel(
            default_row_sums(machine.n_procs), algorithm=algorithm, machine=machine
        )
        return matrix

    run.__name__ = f"run_{algorithm}"
    return run


def _barrier_ring(machine: PROMachine):
    """Two rounds of ring token passing with a barrier between send/recv."""

    def program(ctx):
        token = ctx.rank
        for round_index in range(2):
            right = (ctx.rank + 1) % ctx.n_procs
            left = (ctx.rank - 1) % ctx.n_procs
            ctx.comm.send(token * 31 + round_index, right, tag=round_index)
            ctx.comm.barrier()
            token = ctx.comm.recv(left, tag=round_index)
        return token

    return tuple(machine.run(program).results)


def _scatter_gather(machine: PROMachine):
    """Root scatters work, everyone barriers, root gathers the echoes."""

    def program(ctx):
        parts = [i * i + 1 for i in range(ctx.n_procs)] if ctx.is_root else None
        mine = ctx.comm.scatter(parts)
        ctx.comm.barrier()
        return ctx.comm.gather(mine * 10 + ctx.rank)

    return tuple(machine.run(program).result(0))


def _racy_append(machine: PROMachine):
    """Planted bug: the result leaks the pre-barrier scheduling order.

    Every rank appends to one shared list before the barrier, and every
    rank returns the list's final order.  Under the sim backend's shared
    address space the result therefore depends on which rank was scheduled
    first -- a deliberate schedule-dependence the explorer must catch
    (the mutation self-check in ``tests/simulation/test_explore.py``).
    """
    shared: list[int] = []

    def program(ctx, log):
        log.append(ctx.rank)
        ctx.comm.barrier()
        return tuple(log)

    return machine.run(program, shared).result(0)


EXPLORE_PROGRAMS: dict[str, Callable] = {
    "alg5": _matrix_program("alg5"),
    "alg6": _matrix_program("alg6"),
    "barrier-ring": _barrier_ring,
    "scatter-gather": _scatter_gather,
    # The planted-bug demo is registered (so its reproducers can name it)
    # but deliberately excluded from DEFAULT_PROGRAMS: its divergence is
    # the explorer's self-check, not a product defect.
    "racy-append": _racy_append,
}

#: The product-sweep defaults: every program here must be schedule-independent.
DEFAULT_PROGRAMS: tuple[str, ...] = ("alg5", "alg6", "barrier-ring", "scatter-gather")


def _resolve_program(program) -> tuple[str, Callable]:
    if callable(program):
        return getattr(program, "__name__", "custom"), program
    try:
        return program, EXPLORE_PROGRAMS[program]
    except KeyError:
        known = ", ".join(sorted(EXPLORE_PROGRAMS))
        raise ValidationError(
            f"unknown explore program {program!r}; known programs: {known}"
        ) from None


# ----------------------------------------------------------------------------
# Running one cell
# ----------------------------------------------------------------------------
def replay_cell(program, n_procs: int, *, machine_seed: int = 8128, plan=(),
                schedule=None, schedule_seed=None, policy=None,
                max_decisions: int | None = 2048, _collect: dict | None = None) -> tuple:
    """Run one explore cell under one schedule and classify the outcome.

    Builds a fresh :class:`~repro.pro.machine.PROMachine` (fresh machine,
    identical rank streams for a fixed ``machine_seed``) over a
    :class:`~repro.pro.backends.sim.SimBackend`, optionally wrapped in a
    :class:`~repro.pro.backends.faults.FaultInjectingBackend` for ``plan``.

    Returns ``("ok", digest)``, ``("fail", error_class_name)`` or
    ``("hang", reason)``.  When ``_collect`` is given, the run's recorded
    ``schedule`` / ``decisions`` / ``op_log`` are stored into it (partial
    on failure), which is what the explorer's frontier expansion reads.
    """
    _, runner = _resolve_program(program)
    sim = SimBackend(schedule=schedule, schedule_seed=schedule_seed,
                     policy=policy, max_decisions=max_decisions)
    backend = FaultInjectingBackend(sim, tuple(plan)) if plan else sim
    machine = PROMachine(n_procs, seed=machine_seed, backend=backend)
    try:
        value = runner(machine)
    except ScheduleLimitExceeded:
        outcome = ("hang", f"no termination within {max_decisions} decisions")
    except Exception as exc:  # noqa: BLE001 - any failure is a classified outcome
        outcome = ("fail", type(exc).__name__)
    else:
        outcome = ("ok", _digest(value))
    finally:
        if _collect is not None:
            _collect["schedule"] = list(sim.last_schedule or [])
            _collect["decisions"] = list(sim.last_decisions or [])
            _collect["op_log"] = list(sim.last_op_log or [])
        machine.close()
    return outcome


def baseline_distinct(program, n_procs: int, draws: int, *,
                      machine_seed: int = 8128,
                      max_decisions: int | None = 2048) -> set[str]:
    """Canonical fingerprints reached by plain ``schedule_seed`` draws.

    This is the status-quo sweeping strategy the explorer is measured
    against: ``draws`` independent random interleavings of the fault-free
    cell, fingerprinted exactly like explorer runs.
    """
    seen: set[str] = set()
    for seed in range(draws):
        collect: dict = {}
        outcome = replay_cell(program, n_procs, machine_seed=machine_seed,
                              schedule_seed=seed, max_decisions=max_decisions,
                              _collect=collect)
        seen.add(canonical_fingerprint(collect["op_log"], outcome))
    return seen


# ----------------------------------------------------------------------------
# Fault-plan axes
# ----------------------------------------------------------------------------
def _plan_ranks(plan) -> set[int]:
    ranks: set[int] = set()
    for fault in plan:
        for attr in ("rank", "src", "dst"):
            value = getattr(fault, attr, None)
            if value is not None:
                ranks.add(value)
    return ranks


def _normalized(plan) -> tuple:
    """Plan identity ignoring ``at_run`` pinning (used to dedupe axes)."""
    return tuple(dataclasses.replace(fault, at_run=None) for fault in plan)


def committed_plans_for(n_procs: int) -> dict[str, tuple]:
    """The committed chaos plans that are well-formed at this ``p``."""
    from repro.pro.resilience import committed_chaos_plans

    return {
        name: tuple(plan)
        for name, plan in committed_chaos_plans().items()
        if all(rank < n_procs for rank in _plan_ranks(plan))
    }


def generated_fault_plans(op_log: Sequence[tuple], n_procs: int, *,
                          max_crash_ops: int = 3, max_drops: int = 2,
                          delays: Sequence[int] = (1,),
                          limit: int = 24) -> dict[str, tuple]:
    """Derive single-fault plans from a cell's fault-free op log.

    Crash each rank at each of its first fabric ops, drop/delay the first
    messages of every used channel, and time out the first barrier entry
    of every barrier-using rank -- the reachable single-fault neighbourhood
    of the program, rather than a fixed hand-written list.  Deterministic:
    sorted by name and capped at ``limit`` plans.
    """
    from repro.pro.backends.faults import (
        BarrierTimeout,
        CrashRank,
        DelayMessage,
        DropMessage,
    )

    plans: dict[str, tuple] = {}
    per_rank: dict[int, int] = {}
    for op in op_log:
        rank = _acting_rank(op)
        per_rank[rank] = per_rank.get(rank, 0) + 1
    for rank in range(n_procs):
        for at_op in range(min(per_rank.get(rank, 0), max_crash_ops)):
            plans[f"crash-r{rank}-op{at_op}"] = (CrashRank(rank=rank, at_op=at_op),)
    channels: dict[tuple, int] = {}
    for kind, src, dst in op_log:
        if kind == "put":
            channels[(src, dst)] = channels.get((src, dst), 0) + 1
    for (src, dst), count in sorted(channels.items()):
        for nth in range(min(count, max_drops)):
            plans[f"drop-{src}to{dst}-n{nth}"] = (DropMessage(src=src, dst=dst, nth=nth),)
        for by in delays:
            plans[f"delay-{src}to{dst}-by{by}"] = (
                DelayMessage(src=src, dst=dst, nth=0, by=by),
            )
    for rank in sorted({op[1] for op in op_log if op[0] == "barrier"}):
        plans[f"barrier-timeout-r{rank}"] = (BarrierTimeout(rank=rank, nth=0),)
    return dict(sorted(plans.items())[:limit])


# ----------------------------------------------------------------------------
# Findings and the report
# ----------------------------------------------------------------------------
@dataclass
class Finding:
    """One schedule-dependent behaviour the explorer uncovered."""

    program: str
    n_procs: int
    plan_name: str
    plan: tuple
    kind: str                    # divergence | failure | hang | reference-failure
    schedule: list[int]          # shrunk decision trace that reproduces it
    original_length: int         # decisions before shrinking
    observed: tuple
    reference: tuple
    reproducer: str | None = None

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "n_procs": self.n_procs,
            "plan": self.plan_name,
            "plan_repr": repr(self.plan),
            "kind": self.kind,
            "schedule": list(self.schedule),
            "original_length": self.original_length,
            "observed": list(self.observed),
            "reference": list(self.reference),
            "reproducer": self.reproducer,
        }


@dataclass
class ExplorationReport:
    """Coverage and findings of one :func:`explore` invocation."""

    SCHEMA = 1

    budget: int
    runs_used: int
    machine_seed: int
    max_decisions: int | None
    programs: list[str]
    procs: list[int]
    plans_mode: str
    cells: list[dict] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    baseline: dict | None = None

    @property
    def distinct_total(self) -> int:
        """Sum of per-cell distinct canonical fingerprints (the headline)."""
        return sum(cell["distinct"] for cell in self.cells)

    @property
    def distinct_global(self) -> int:
        """Distinct canonical fingerprints across all cells combined."""
        union: set[str] = set()
        for cell in self.cells:
            union.update(cell["fingerprints"])
        return len(union)

    @property
    def interleavings_total(self) -> int:
        return sum(cell["interleavings"] for cell in self.cells)

    def coverage_ratio(self) -> float | None:
        """Explorer coverage relative to the plain random-draw baseline."""
        if not self.baseline or not self.baseline["distinct"]:
            return None
        return self.distinct_total / self.baseline["distinct"]

    def to_dict(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "budget": self.budget,
            "runs_used": self.runs_used,
            "machine_seed": self.machine_seed,
            "max_decisions": self.max_decisions,
            "programs": list(self.programs),
            "procs": list(self.procs),
            "plans_mode": self.plans_mode,
            "distinct_total": self.distinct_total,
            "distinct_global": self.distinct_global,
            "interleavings_total": self.interleavings_total,
            "baseline": dict(self.baseline) if self.baseline else None,
            "coverage_ratio": self.coverage_ratio(),
            "cells": [
                {key: value for key, value in cell.items() if key != "fingerprints"}
                for cell in self.cells
            ],
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def summary(self) -> str:
        lines = [
            f"explored {len(self.cells)} cells in {self.runs_used}/{self.budget} runs: "
            f"{self.distinct_total} distinct trace fingerprints "
            f"({self.distinct_global} globally distinct, "
            f"{self.interleavings_total} raw interleavings)",
        ]
        if self.baseline:
            ratio = self.coverage_ratio()
            lines.append(
                f"baseline: {self.baseline['draws']} plain schedule_seed draws reached "
                f"{self.baseline['distinct']} fingerprints -> coverage ratio "
                f"{ratio:.1f}x" if ratio is not None else "baseline: no fingerprints"
            )
        if self.findings:
            lines.append(f"FINDINGS ({len(self.findings)}):")
            for finding in self.findings:
                lines.append(
                    f"  {finding.kind}: {finding.program} p={finding.n_procs} "
                    f"plan={finding.plan_name} schedule={finding.schedule} "
                    f"({finding.original_length} -> {len(finding.schedule)} decisions)"
                    + (f" -> {finding.reproducer}" if finding.reproducer else "")
                )
        else:
            lines.append("no schedule-dependent behaviour found")
        return "\n".join(lines)


_REPRODUCER_TEMPLATE = '''"""Auto-generated schedule reproducer (repro.pro.explore).

finding  : {kind}
program  : {program}  (p={n_procs}, machine seed {machine_seed})
plan     : {plan_name}
observed : {observed!r}
reference: {reference!r}
shrunk   : {original_length} -> {shrunk_length} decisions

Replays the exact interleaving that diverged; the test passes once the
behaviour is schedule-independent again -- and guards it forever after.
"""
import pytest
{fault_imports}
from repro.pro.explore import outcomes_equivalent, replay_cell

pytestmark = pytest.mark.sim

PROGRAM = {program!r}
N_PROCS = {n_procs}
MACHINE_SEED = {machine_seed}
PLAN = {plan_repr}
SCHEDULE = {schedule!r}


def test_interleaving_is_schedule_independent():
    replayed = replay_cell(PROGRAM, N_PROCS, machine_seed=MACHINE_SEED,
                           plan=PLAN, schedule=SCHEDULE)
    reference = replay_cell(PROGRAM, N_PROCS, machine_seed=MACHINE_SEED,
                            plan=PLAN, schedule=[])
    assert outcomes_equivalent(replayed, reference), (
        f"schedule {{SCHEDULE}} still produces {{replayed!r}} while the "
        f"run-to-block reference produces {{reference!r}}"
    )
'''


def write_reproducer(finding: Finding, directory, *, machine_seed: int) -> str:
    """Emit a ready-to-commit pytest file replaying ``finding``.

    The file is self-contained (program name, fault-plan literal, shrunk
    decision trace) and belongs under ``tests/simulation/reproducers/``,
    where tier-1 replays it on every run.
    """
    from pathlib import Path

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    fault_classes = sorted({type(fault).__name__ for fault in finding.plan})
    fault_imports = (
        "\nfrom repro.pro.backends.faults import " + ", ".join(fault_classes)
        if fault_classes else ""
    )
    stamp = _hash(repr((finding.program, finding.n_procs, finding.plan_name,
                        finding.kind, tuple(finding.schedule))))[:10]
    slug = re.sub(r"[^a-z0-9]+", "_",
                  f"{finding.program}_p{finding.n_procs}_{finding.kind}".lower())
    path = directory / f"test_repro_{slug}_{stamp}.py"
    path.write_text(_REPRODUCER_TEMPLATE.format(
        kind=finding.kind,
        program=finding.program,
        n_procs=finding.n_procs,
        machine_seed=machine_seed,
        plan_name=finding.plan_name,
        observed=finding.observed,
        reference=finding.reference,
        original_length=finding.original_length,
        shrunk_length=len(finding.schedule),
        fault_imports=fault_imports,
        plan_repr=repr(tuple(finding.plan)),
        schedule=list(finding.schedule),
    ))
    return str(path)


# ----------------------------------------------------------------------------
# The explorer
# ----------------------------------------------------------------------------
class _Cell:
    """Mutable search state of one (program, p, plan) cell."""

    def __init__(self, program: str, n_procs: int, plan_name: str, plan: tuple):
        self.program = program
        self.n_procs = n_procs
        self.plan_name = plan_name
        self.plan = plan
        self.reference: tuple | None = None
        self.fingerprints: set[str] = set()
        self.interleavings: set[str] = set()
        self.frontier: deque[tuple] = deque()
        self.tried: set[tuple] = set()
        self.reported: set[tuple] = set()
        self.runs = 0
        self.new_hits = 0
        self.pct_used = 0
        self.shrink_attempts = 0
        self.exhausted = False

    def score(self) -> float:
        return (1.0 + self.new_hits) / (1.0 + self.runs)

    def label(self) -> str:
        return f"{self.program}/p{self.n_procs}/{self.plan_name}"


_FRONTIER_CAP = 512
_FINDING_KIND = {"ok": "divergence", "fail": "failure", "hang": "hang"}
#: A schedule-dependent cell can diverge in combinatorially many ways (every
#: digest differs); a handful of shrunk witnesses per cell tells the story.
_MAX_FINDINGS_PER_CELL = 3


def _extend_frontier(cell: _Cell, trace: list[int], decisions: list[tuple],
                     start: int) -> None:
    """Enqueue prefix flips from a run's decision log, pruning equivalents.

    For every decision (at index ``start`` or later) with more than one
    runnable rank, force each alternative via ``trace[:i] + [alt]`` --
    unless the alternative's pending op is known to be independent of the
    chosen op, in which case the flip provably stays inside the same
    commutation class and is skipped (sleep-set-style pruning).
    """
    for i in range(start, min(len(decisions), len(trace))):
        ordered, pendings, choice = decisions[i]
        if len(ordered) < 2:
            continue
        chosen_op = pendings[ordered.index(choice)]
        for idx, alt in enumerate(ordered):
            if alt == choice:
                continue
            alt_op = pendings[idx]
            if (chosen_op is not None and alt_op is not None
                    and not ops_conflict(chosen_op, alt_op)):
                continue
            prefix = tuple(trace[:i]) + (alt,)
            if prefix in cell.tried or len(cell.frontier) >= _FRONTIER_CAP:
                continue
            cell.tried.add(prefix)
            cell.frontier.append(prefix)


def explore(programs: Sequence = DEFAULT_PROGRAMS, procs: Sequence[int] = (2, 4, 8), *,
            plans: str | Mapping = "auto", budget: int = 500, machine_seed: int = 8128,
            baseline_draws: int = 0, commit_dir=None, max_decisions: int | None = 2048,
            pct_draws_per_cell: int = 6, pct_depth: int = 3,
            shrink_probes: int = 200, explore_seed: int = 0) -> ExplorationReport:
    """Coverage-guided sweep of schedules x fault plans x programs x p.

    ``plans`` selects the fault axis: ``"none"`` (schedules only),
    ``"committed"`` (adds :func:`~repro.pro.resilience.committed_chaos_plans`),
    ``"auto"`` (default: committed plans plus single-fault plans derived
    from each cell's own op log), or an explicit ``{name: (faults...)}``
    mapping.  ``budget`` bounds the number of simulated runs (shrinking
    probes for findings are budgeted separately by ``shrink_probes``).
    When ``commit_dir`` is set, every finding is emitted there as a pytest
    reproducer file.  With ``baseline_draws > 0`` the report also measures
    the plain random-seed baseline on each fault-free cell for the
    coverage ratio.
    """
    if isinstance(plans, str) and plans not in ("auto", "committed", "none"):
        raise ValidationError(
            f"plans must be 'auto', 'committed', 'none' or a mapping, got {plans!r}"
        )
    program_names = [_resolve_program(p)[0] for p in programs]
    plans_mode = plans if isinstance(plans, str) else "explicit"
    record_event("explore-start", programs=",".join(program_names),
                 procs=",".join(str(p) for p in procs), budget=budget,
                 plans=plans_mode)

    report = ExplorationReport(
        budget=budget, runs_used=0, machine_seed=machine_seed,
        max_decisions=max_decisions, programs=program_names,
        procs=[int(p) for p in procs], plans_mode=plans_mode,
    )
    cells: list[_Cell] = []

    def run_cell(cell: _Cell, *, schedule=None, policy=None) -> tuple[tuple, dict]:
        collect: dict = {}
        outcome = replay_cell(cell.program, cell.n_procs, machine_seed=machine_seed,
                              plan=cell.plan, schedule=schedule, policy=policy,
                              max_decisions=max_decisions, _collect=collect)
        report.runs_used += 1
        cell.runs += 1
        return outcome, collect

    def note_run(cell: _Cell, outcome: tuple, collect: dict, start: int) -> None:
        fingerprint = canonical_fingerprint(collect["op_log"], outcome)
        if fingerprint not in cell.fingerprints:
            cell.fingerprints.add(fingerprint)
            cell.new_hits += 1
        cell.interleavings.add(interleaving_fingerprint(collect["op_log"], outcome))
        _extend_frontier(cell, collect["schedule"], collect["decisions"], start)
        if cell.reference is not None and not outcomes_equivalent(outcome, cell.reference):
            _report_finding(cell, outcome, collect["schedule"])

    def _report_finding(cell: _Cell, outcome: tuple, trace: list[int]) -> None:
        if (len(cell.reported) >= _MAX_FINDINGS_PER_CELL
                or cell.shrink_attempts >= 2 * _MAX_FINDINGS_PER_CELL):
            return
        cell.shrink_attempts += 1
        kind = _FINDING_KIND[outcome[0]]
        record_event("explore-divergence", program=cell.program,
                     n_procs=cell.n_procs, plan=cell.plan_name, finding=kind)

        def still_fails(candidate: list[int]) -> bool:
            probe = replay_cell(cell.program, cell.n_procs, machine_seed=machine_seed,
                                plan=cell.plan, schedule=candidate,
                                max_decisions=max_decisions)
            return not outcomes_equivalent(probe, cell.reference)

        shrunk = shrink_schedule(still_fails, trace, max_probes=shrink_probes)
        key = (kind, tuple(shrunk))
        if key in cell.reported:
            return
        cell.reported.add(key)
        record_event("explore-shrink", program=cell.program, plan=cell.plan_name,
                     before=len(trace), after=len(shrunk))
        finding = Finding(
            program=cell.program, n_procs=cell.n_procs, plan_name=cell.plan_name,
            plan=cell.plan, kind=kind, schedule=list(shrunk),
            original_length=len(trace), observed=outcome, reference=cell.reference,
        )
        if commit_dir is not None:
            finding.reproducer = write_reproducer(finding, commit_dir,
                                                  machine_seed=machine_seed)
        report.findings.append(finding)

    # Seed the cell grid: one fault-free reference per (program, p), whose
    # op log also derives the generated fault axis.
    for program in program_names:
        for p in procs:
            if report.runs_used >= budget:
                break
            cell = _Cell(program, int(p), "none", ())
            outcome, collect = run_cell(cell)
            cell.reference = outcome
            cells.append(cell)
            note_run(cell, outcome, collect, start=0)
            if outcome[0] != "ok":
                # The program itself fails under run-to-block: surface it
                # and skip the fault axis (faults on a broken baseline
                # would only report noise).
                report.findings.append(Finding(
                    program=program, n_procs=int(p), plan_name="none", plan=(),
                    kind="reference-failure", schedule=list(collect["schedule"]),
                    original_length=len(collect["schedule"]),
                    observed=outcome, reference=("ok", "<expected>"),
                ))
                continue
            plan_map: dict[str, tuple] = {}
            if plans_mode == "explicit":
                plan_map.update({
                    name: tuple(plan) for name, plan in plans.items()
                    if all(rank < p for rank in _plan_ranks(plan))
                })
            if plans_mode in ("committed", "auto"):
                plan_map.update(committed_plans_for(int(p)))
            if plans_mode == "auto":
                committed_shapes = {_normalized(plan) for plan in plan_map.values()}
                for name, plan in generated_fault_plans(collect["op_log"], int(p)).items():
                    if _normalized(plan) not in committed_shapes:
                        plan_map[name] = plan
            for name, plan in plan_map.items():
                cells.append(_Cell(program, int(p), name, tuple(plan)))

    # Guided loop: spend the remaining budget on whichever cell is still
    # discovering fingerprints fastest.
    while report.runs_used < budget:
        candidates = [cell for cell in cells if not cell.exhausted]
        if not candidates:
            break
        cell = max(candidates, key=_Cell.score)
        if cell.reference is None:
            outcome, collect = run_cell(cell)
            cell.reference = outcome
            note_run(cell, outcome, collect, start=0)
        elif cell.frontier:
            prefix = cell.frontier.popleft()
            outcome, collect = run_cell(cell, schedule=list(prefix))
            note_run(cell, outcome, collect, start=len(prefix))
        elif cell.pct_used < pct_draws_per_cell:
            seed = explore_seed * 1_000_003 + cells.index(cell) * 7919 + cell.pct_used
            cell.pct_used += 1
            outcome, collect = run_cell(cell, policy=PCTPolicy(seed, depth=pct_depth))
            note_run(cell, outcome, collect, start=0)
        else:
            cell.exhausted = True

    for cell in cells:
        report.cells.append({
            "program": cell.program,
            "n_procs": cell.n_procs,
            "plan": cell.plan_name,
            "plan_repr": repr(cell.plan),
            "runs": cell.runs,
            "distinct": len(cell.fingerprints),
            "interleavings": len(cell.interleavings),
            "frontier_exhausted": cell.exhausted,
            "reference": list(cell.reference) if cell.reference else None,
            "fingerprints": sorted(cell.fingerprints),
        })

    if baseline_draws:
        pairs = [(program, int(p)) for program in program_names for p in procs]
        per_pair = max(1, baseline_draws // max(1, len(pairs)))
        distinct = 0
        drawn = 0
        for program, p in pairs:
            distinct += len(baseline_distinct(program, p, per_pair,
                                              machine_seed=machine_seed,
                                              max_decisions=max_decisions))
            drawn += per_pair
        report.baseline = {"draws": drawn, "distinct": distinct}

    return report
