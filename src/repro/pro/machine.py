"""The PRO machine: run SPMD programs on ``p`` virtual processors.

A *program* is an ordinary Python callable ``program(ctx, *args, **kwargs)``
executed once per virtual processor.  The :class:`ProcessorContext` it
receives bundles everything a coarse-grained algorithm needs:

``ctx.rank`` / ``ctx.n_procs``
    The processor id and the machine size.
``ctx.comm``
    A :class:`~repro.pro.communicator.Communicator` for message passing.
``ctx.rng``
    An independent per-processor random stream (optionally a
    :class:`~repro.rng.counting.CountingRNG` when the machine is created
    with ``count_random_variates=True``).
``ctx.cost``
    The processor's :class:`~repro.pro.cost.CostRecorder`.

Example
-------
>>> from repro.pro import PROMachine
>>> def hello(ctx):
...     return ctx.comm.allreduce(ctx.rank)
>>> machine = PROMachine(4, seed=0)
>>> machine.run(hello).results
[6, 6, 6, 6]
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.pro.backends.registry import resolve_backend
from repro.pro.communicator import Communicator, MessageFabric
from repro.pro.cost import CostRecorder, CostReport, MachineParameters
from repro.pro.resilience import RetryPolicy, active_deadline, run_with_recovery
from repro.pro.topology import Topology, topology_from_name
from repro.rng.counting import CountingRNG
from repro.rng.streams import StreamFactory
from repro.util.errors import ValidationError
from repro.util.validation import check_positive_int

__all__ = ["ProcessorContext", "RunResult", "PROMachine", "resolve_machine"]


@dataclass
class ProcessorContext:
    """Everything one virtual processor sees during a run."""

    rank: int
    n_procs: int
    comm: Communicator
    rng: Any
    cost: CostRecorder

    @property
    def is_root(self) -> bool:
        """True on rank 0 (the conventional root of rooted collectives)."""
        return self.rank == 0

    def log_compute(self, ops: int) -> None:
        """Charge ``ops`` basic operations to this processor's account."""
        self.cost.add_compute(ops)

    def log_random_variates(self, count: int) -> None:
        """Charge ``count`` random variates to this processor's account."""
        self.cost.add_random_variates(count)


@dataclass
class RunResult:
    """Per-rank return values plus the aggregated resource report of one run."""

    results: list
    cost_report: CostReport
    wall_clock_seconds: float
    n_procs: int

    def result(self, rank: int = 0):
        """Return value of one rank (rank 0 by default)."""
        return self.results[rank]

    def predicted_time(self, params: MachineParameters, **kwargs) -> float:
        """Predicted wall-clock on a machine described by ``params``.

        Convenience forwarding to
        :meth:`repro.pro.cost.CostReport.predicted_time`.
        """
        return self.cost_report.predicted_time(params, **kwargs)


class PROMachine:
    """A coarse-grained parallel machine with ``n_procs`` virtual processors.

    Parameters
    ----------
    n_procs:
        Number of virtual processors ``p``.
    seed:
        Seed (or ``numpy.random.SeedSequence``) from which the independent
        per-processor streams are derived.  Two machines built with the same
        seed and the same ``n_procs`` produce identical runs.
    backend:
        A backend name from the registry -- ``"thread"`` (default),
        ``"process"`` (one OS process per rank), ``"sim"`` (all ranks
        stepped cooperatively under a deterministic, seedable schedule;
        see :mod:`repro.pro.backends.sim`) or ``"inline"`` (only for
        ``n_procs == 1``) -- or an object with a
        ``run(contexts, program, args, kwargs)`` method (see
        :mod:`repro.pro.backends.registry` for the full contract).  For a
        fixed ``seed`` the per-rank streams, and hence the results, are
        identical across backends.
    backend_options:
        Extra keyword arguments forwarded to the backend factory when
        ``backend`` is a name, e.g.
        ``backend="process", backend_options={"transport": "sharedmem"}``.
        Rejected (``ValidationError``) when ``backend`` is an instance or
        when the factory does not understand an option.
    topology:
        Interconnect model used by the analytic time predictions; a
        :class:`~repro.pro.topology.Topology` instance or a name
        (``"fully-connected"``, ``"ring"``, ``"mesh"``, ``"hypercube"``).
    count_random_variates:
        When True each rank's stream is wrapped in a
        :class:`~repro.rng.counting.CountingRNG` and the consumed variates
        are transferred into the cost report at the end of the run.
    timeout:
        Seconds a blocking receive or barrier waits before declaring a
        deadlock.
    persistent:
        When True the machine runs on a *standing* worker fleet instead of
        paying backend start-up per run -- currently supported by the
        process backend, whose :class:`~repro.pro.backends.pool.WorkerPool`
        keeps ``p`` daemon ranks (and their shared-memory rings) alive
        across ``run()`` calls.  Results stay bit-identical to the
        non-persistent machine for a fixed seed, because the per-rank
        streams are still derived in the parent on every run.  Requires a
        backend *name* (the flag is forwarded as the factory option
        ``persistent=True``; backends without the option reject it), and
        programs/arguments must be picklable.  Call :meth:`close` (or use
        the machine as a context manager, or the module-level
        :func:`repro.pro.backends.pool.pool` helper) to release the
        workers; they are also reaped by an ``atexit`` hook.

        The fleet is private to this machine by default; pass
        ``backend_options={"pool_scope": "process"}`` to borrow the
        process-wide default pool cache instead (what the drivers do for
        their warm-by-default calls; such fleets survive :meth:`close`
        and are released by
        :func:`repro.pro.backends.pool.clear_default_pools` or at
        interpreter exit).
    kernels:
        Kernel-tier request for the sampling hot paths
        (``"auto"``/``"numba"``/``"numpy"``; ``None`` defers to the
        ``REPRO_KERNELS`` environment variable).  The machine itself only
        validates and stores it; the drivers forward :attr:`kernels` into
        the programs they run, where each rank resolves it against
        :mod:`repro.core.kernels`.  Bit-identical across tiers for a
        fixed seed.
    retry:
        Recovery policy for transient backend failures: ``None`` (default)
        keeps today's fail-fast behaviour, an ``int`` gives that many
        total attempts, a :class:`~repro.pro.resilience.RetryPolicy` adds
        backoff, a wall-clock ``deadline`` and a ``fallback`` chain of
        degraded backends.  Every attempt replays the *same* per-rank
        streams (the seed-sequence children are spawned once per
        ``run()``), so a recovered run is bit-identical to a fault-free
        one; see :mod:`repro.pro.resilience` for the contract.
    telemetry:
        A :class:`~repro.pro.telemetry.Telemetry` recorder (or ``None``,
        the default, for no collection).  Every completed ``run()``
        appends one :class:`~repro.pro.telemetry.FleetReport` merging the
        per-rank transport counters and ring geometry repatriated on the
        cost recorders with the pool/resilience events observed during
        the run.  Collection is passive: results and RNG accounting stay
        bit-identical with telemetry on or off.
    """

    def __init__(
        self,
        n_procs: int,
        *,
        seed=None,
        backend: str | object = "thread",
        backend_options: dict | None = None,
        topology: str | Topology = "fully-connected",
        count_random_variates: bool = False,
        timeout: float = 60.0,
        persistent: bool = False,
        kernels: str | None = None,
        retry: int | RetryPolicy | None = None,
        telemetry=None,
    ):
        self.n_procs = check_positive_int(n_procs, "n_procs")
        self._stream_factory = StreamFactory(seed)
        self.count_random_variates = bool(count_random_variates)
        self.timeout = float(timeout)
        self.retry_policy = RetryPolicy.resolve(retry)
        if telemetry is not None and not hasattr(telemetry, "record"):
            raise ValidationError(
                "telemetry must be a repro.pro.telemetry.Telemetry recorder "
                "(an object with a record(report) method) or None"
            )
        self.telemetry = telemetry
        if kernels is not None:
            # Validate the request eagerly (unknown names fail at machine
            # construction, not mid-run on a worker); resolution to an
            # actual tier happens per rank inside the programs.
            from repro.core.kernels import normalize_kernels

            kernels = normalize_kernels(kernels)
        self.kernels = kernels
        if persistent:
            if not isinstance(backend, str):
                raise ValidationError(
                    "persistent=True only applies when the backend is given by "
                    "name; configure a backend instance with persistent=True "
                    "directly instead"
                )
            backend_options = {**(backend_options or {}), "persistent": True}

        if isinstance(topology, Topology):
            if topology.n_nodes != self.n_procs:
                raise ValidationError(
                    f"topology has {topology.n_nodes} nodes but the machine has {self.n_procs}"
                )
            self.topology = topology
        else:
            self.topology = topology_from_name(str(topology), self.n_procs)

        self.backend = resolve_backend(backend, **(backend_options or {}))
        capabilities = getattr(self.backend, "capabilities", None)
        if (
            capabilities is not None
            and not capabilities.multirank
            and self.n_procs != 1
        ):
            raise ValidationError(
                f"the {getattr(self.backend, 'name', '?')} backend requires n_procs == 1"
            )

    # -- running programs -------------------------------------------------------
    def _build_contexts(self, children=None, *, timeout: float | None = None) -> list[ProcessorContext]:
        make_fabric = getattr(self.backend, "create_fabric", None)
        timeout = self.timeout if timeout is None else float(timeout)
        if make_fabric is not None:
            fabric = make_fabric(self.n_procs, timeout=timeout)
        else:  # duck-typed custom backend without a fabric hook
            fabric = MessageFabric(self.n_procs, timeout=timeout)
        if children is None:
            streams = self._stream_factory.processor_streams(self.n_procs)
        else:
            # Replay path: rebuild fresh, unadvanced generators from the
            # immutable children this run() call spawned, so every retry
            # attempt draws exactly what the first attempt drew.
            streams = self._stream_factory.streams_from_children(children)
        contexts = []
        for rank in range(self.n_procs):
            cost = CostRecorder(rank)
            rng = CountingRNG(streams[rank]) if self.count_random_variates else streams[rank]
            comm = Communicator(fabric, rank, cost)
            contexts.append(ProcessorContext(rank=rank, n_procs=self.n_procs, comm=comm, rng=rng, cost=cost))
        return contexts

    def _attempt(self, program: Callable, args: tuple, kwargs: dict,
                 children, *, deadline=None) -> RunResult:
        """One execution of ``program`` on freshly rebuilt contexts.

        ``children`` are the seed-sequence children of the owning ``run()``
        call; ``deadline`` (a :class:`~repro.pro.resilience.Deadline`)
        clamps the fabric timeout and is published thread-locally so
        deadline-aware layers (the worker pool's dispatch loop) can bound
        their own waits.
        """
        timeout = self.timeout if deadline is None else deadline.clamp(self.timeout)
        contexts = self._build_contexts(children, timeout=timeout)
        start = time.perf_counter()
        with active_deadline(deadline):
            results = self.backend.run(contexts, program, args, kwargs)
        elapsed = time.perf_counter() - start

        if self.count_random_variates:
            for ctx in contexts:
                ctx.cost.add_random_variates(ctx.rng.total_variates)

        report = CostReport([ctx.cost for ctx in contexts])
        return RunResult(
            results=results,
            cost_report=report,
            wall_clock_seconds=elapsed,
            n_procs=self.n_procs,
        )

    def run(self, program: Callable, *args, **kwargs) -> RunResult:
        """Execute ``program(ctx, *args, **kwargs)`` on every virtual processor.

        Returns a :class:`RunResult` with the per-rank return values (ordered
        by rank), the aggregated :class:`~repro.pro.cost.CostReport` and the
        measured wall-clock time of the whole run.  With a ``retry`` policy
        configured, transient backend failures are retried (and optionally
        degraded to fallback backends) with bit-identical streams; see
        :mod:`repro.pro.resilience`.

        .. note::
           Each call spawns fresh per-processor random streams derived from
           the machine seed, so *consecutive* runs of the same machine see
           different randomness while two machines created with the same seed
           replay identical sequences of runs.
        """
        if not callable(program):
            raise ValidationError("program must be callable: program(ctx, *args, **kwargs)")
        children = self._stream_factory.spawn(self.n_procs)
        if self.telemetry is None:
            if self.retry_policy is None:
                return self._attempt(program, args, kwargs, children)
            return run_with_recovery(self, program, args, kwargs, children)

        from repro.pro.telemetry import FleetReport, event_seq, events_since

        window_start = event_seq()
        if self.retry_policy is None:
            result = self._attempt(program, args, kwargs, children)
        else:
            result = run_with_recovery(self, program, args, kwargs, children)
        self.telemetry.record(
            FleetReport.from_run(self, result, events_since(window_start))
        )
        return result

    # -- lifecycle ----------------------------------------------------------------
    @property
    def persistent(self) -> bool:
        """True when the machine's backend keeps a standing worker fleet."""
        return bool(getattr(self.backend, "persistent", False))

    def close(self) -> None:
        """Release backend resources held across runs (idempotent).

        Only persistent backends hold any (the process backend's standing
        worker pools); for every other configuration this is a no-op.
        Running a persistent machine again after ``close`` simply spawns a
        fresh fleet -- but a *poisoned* fleet (a worker crashed) is not
        replaced: every later run raises
        :class:`~repro.util.errors.BackendError` until the machine is
        rebuilt.
        """
        closer = getattr(self.backend, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "PROMachine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- convenience --------------------------------------------------------------
    def map_blocks(self, func: Callable, blocks: Sequence[np.ndarray]) -> list:
        """Apply ``func(ctx, block)`` with block ``i`` on rank ``i`` (helper for examples).

        ``blocks`` must have exactly ``n_procs`` entries.
        """
        if len(blocks) != self.n_procs:
            raise ValidationError(
                f"map_blocks needs {self.n_procs} blocks, got {len(blocks)}"
            )

        def program(ctx):
            return func(ctx, blocks[ctx.rank])

        return self.run(program).results

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"PROMachine(n_procs={self.n_procs}, backend={self.backend.name!r}, "
            f"topology={type(self.topology).__name__})"
        )


def resolve_machine(
    n_procs: int,
    *,
    machine: PROMachine | None = None,
    backend: str | object | None = None,
    seed=None,
    transport: str | object | None = None,
    persistent: bool | None = None,
    schedule_seed: int | None = None,
    kernels: str | None = None,
    retry: int | RetryPolicy | None = None,
    telemetry=None,
) -> PROMachine:
    """Return ``machine``, or build one with ``n_procs`` ranks on ``backend``.

    This is the shared machine-or-backend resolution of the driver layer
    (:func:`~repro.core.parallel_matrix.sample_matrix_parallel`,
    :func:`~repro.core.permutation.permute_distributed`): passing both a
    pre-configured machine and a backend name is rejected because the
    machine already fixes its backend.  ``transport`` selects the payload
    transport of backends that take one (the process backend:
    ``"sharedmem"`` or ``"pickle"``), and ``schedule_seed`` seeds the
    rank-interleaving schedule of backends that take one (the sim
    backend) -- both are rejected for backends without the option and for
    pre-configured machines.

    ``persistent`` is tri-state.  With ``backend="process"`` the default
    (``None``) already runs **warm**: the machine borrows a keyed standing
    fleet from the process-wide default pool cache
    (:func:`repro.pro.backends.pool.get_default_pool`), so repeated driver
    calls stop paying ``p`` process spawns each.  ``persistent=False``
    forces the old cold path (fresh processes per call);
    ``persistent=True`` makes the warm request explicit (and is rejected,
    like the other options, by backends without the option and by
    pre-configured machines).  ``kernels`` selects the sampling kernel
    tier the drivers forward into their programs
    (``"auto"``/``"numba"``/``"numpy"``); like the other options it is
    rejected for pre-configured machines (build the machine with
    ``kernels=`` instead).  ``retry`` (an attempt count or a
    :class:`~repro.pro.resilience.RetryPolicy`) turns on transient-failure
    recovery for the built machine -- also rejected for pre-configured
    machines (build the machine with ``retry=`` instead).  ``telemetry``
    (a :class:`~repro.pro.telemetry.Telemetry` recorder) attaches
    fleet-wide observability to the built machine: every run appends a
    :class:`~repro.pro.telemetry.FleetReport` -- also rejected for
    pre-configured machines (build the machine with ``telemetry=``
    instead).  None of these options affect what the ranks draw: a fixed
    ``seed`` stays bit-identical across all of them -- including retried,
    degraded and telemetry-collected runs.

    Examples
    --------
    >>> from repro.pro.machine import resolve_machine
    >>> machine = resolve_machine(2, seed=0)          # thread backend
    >>> machine.n_procs
    2
    >>> resolve_machine(4, backend="process").persistent  # warm by default
    True
    >>> resolve_machine(4, backend="process", persistent=False).persistent
    False
    """
    if machine is None:
        options = {}
        if transport is not None:
            options["transport"] = transport
        if schedule_seed is not None:
            options["schedule_seed"] = schedule_seed
        name = "thread" if backend is None else backend
        # Warm-by-default: unless the caller forces the cold path, process
        # machines built by the drivers share the process-wide default
        # pool cache instead of spawning p ranks per call.
        warm = (name == "process") if persistent is None else bool(persistent)
        if warm and name == "process":
            options.setdefault("pool_scope", "process")
        return PROMachine(
            n_procs, seed=seed, backend=name,
            backend_options=options, persistent=warm, kernels=kernels,
            retry=retry, telemetry=telemetry,
        )
    if backend is not None:
        raise ValidationError(
            "pass either a pre-configured machine or a backend name, not both"
        )
    if transport is not None:
        raise ValidationError(
            "pass either a pre-configured machine or a transport name, not both "
            "(the machine's backend already fixes its transport)"
        )
    if persistent:
        raise ValidationError(
            "pass either a pre-configured machine or persistent=True, not both "
            "(build the machine with persistent=True instead)"
        )
    if schedule_seed is not None:
        raise ValidationError(
            "pass either a pre-configured machine or schedule_seed, not both "
            "(configure the machine's sim backend with schedule_seed instead)"
        )
    if kernels is not None:
        raise ValidationError(
            "pass either a pre-configured machine or kernels, not both "
            "(build the machine with kernels= instead)"
        )
    if retry is not None:
        raise ValidationError(
            "pass either a pre-configured machine or retry, not both "
            "(build the machine with retry= instead)"
        )
    if telemetry is not None:
        raise ValidationError(
            "pass either a pre-configured machine or telemetry, not both "
            "(build the machine with telemetry= instead)"
        )
    return machine
