"""Resource accounting and the analytic time model.

Theorem 1 of the paper bounds four resources per processor -- memory,
computation time, random numbers and bandwidth -- and the experimental
section reports wall-clock times on machines (48-processor SGI Origin) that
this reproduction does not have.  The cost layer therefore plays two roles:

1. **Measurement.**  Every virtual processor carries a
   :class:`CostRecorder`; the communicator records every word sent and
   received, the samplers record every random variate and every basic
   operation, and user code can add its own compute counts.  The recorder is
   organised by *superstep* so that BSP-style analyses (max over processors
   per superstep, summed over supersteps) are possible.

2. **Prediction.**  :class:`MachineParameters` holds per-operation costs
   (seconds per compute op, per word, per message, per variate).  Combining a
   :class:`CostReport` with machine parameters yields a predicted running
   time; with parameters calibrated from the constants the paper itself
   quotes (60-100 cycles per item sequentially, communication bound by
   memory bandwidth) this is how the scaling table T1 is regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.util.errors import ValidationError
from repro.util.tables import format_table

__all__ = [
    "SuperstepCost",
    "CostRecorder",
    "CostReport",
    "MachineParameters",
    "ORIGIN_2000_PARAMETERS",
    "LAPTOP_PYTHON_PARAMETERS",
]


@dataclass
class SuperstepCost:
    """Resources one processor consumed during one superstep."""

    compute_ops: int = 0
    words_sent: int = 0
    words_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    random_variates: int = 0

    def merge(self, other: "SuperstepCost") -> "SuperstepCost":
        """Return the elementwise sum of two superstep records."""
        return SuperstepCost(
            compute_ops=self.compute_ops + other.compute_ops,
            words_sent=self.words_sent + other.words_sent,
            words_received=self.words_received + other.words_received,
            messages_sent=self.messages_sent + other.messages_sent,
            messages_received=self.messages_received + other.messages_received,
            random_variates=self.random_variates + other.random_variates,
        )

    @property
    def h_relation(self) -> int:
        """The h of the BSP h-relation this processor realised: max(sent, received)."""
        return max(self.words_sent, self.words_received)


class CostRecorder:
    """Per-processor resource recorder, organised by superstep.

    The recorder is deliberately forgiving: all methods accept zero counts
    and the recorder can be used outside a machine run (superstep 0).
    """

    def __init__(self, rank: int = 0):
        self.rank = rank
        self._supersteps: list[SuperstepCost] = [SuperstepCost()]
        self.memory_words_peak = 0
        self._memory_words_current = 0
        self.kernel_tier: str | None = None
        self.kernel_warmup_seconds = 0.0
        #: Observability blob repatriated with the recorder: out-of-process
        #: workers set this to the capture of
        #: :func:`repro.pro.telemetry.capture_rank_telemetry` just before
        #: queueing their result record, exactly like ``note_kernel_tier``
        #: rides here -- anything attached to the recorder crosses the
        #: address-space gap with no wire-format change.  ``None`` for
        #: in-address-space ranks (the parent reports zeroed counters).
        self.telemetry: dict | None = None

    # -- superstep structure ------------------------------------------------
    @property
    def current_superstep(self) -> int:
        """Index of the superstep currently being recorded."""
        return len(self._supersteps) - 1

    def next_superstep(self) -> int:
        """Close the current superstep and open a new one (called at barriers)."""
        self._supersteps.append(SuperstepCost())
        return self.current_superstep

    @property
    def supersteps(self) -> list[SuperstepCost]:
        """The list of per-superstep records (read-only use expected)."""
        return self._supersteps

    # -- recording ------------------------------------------------------------
    def add_compute(self, ops: int) -> None:
        """Record ``ops`` basic operations (comparisons, moves, arithmetic)."""
        self._supersteps[-1].compute_ops += int(ops)

    def add_random_variates(self, count: int) -> None:
        """Record ``count`` random variates drawn."""
        self._supersteps[-1].random_variates += int(count)

    def record_send(self, words: int, n_messages: int = 1) -> None:
        """Record an outgoing message of ``words`` payload words."""
        step = self._supersteps[-1]
        step.words_sent += int(words)
        step.messages_sent += int(n_messages)

    def record_receive(self, words: int, n_messages: int = 1) -> None:
        """Record an incoming message of ``words`` payload words."""
        step = self._supersteps[-1]
        step.words_received += int(words)
        step.messages_received += int(n_messages)

    def allocate(self, words: int) -> None:
        """Record ``words`` of memory acquired (tracks the peak)."""
        self._memory_words_current += int(words)
        self.memory_words_peak = max(self.memory_words_peak, self._memory_words_current)

    def release(self, words: int) -> None:
        """Record ``words`` of memory released."""
        self._memory_words_current = max(0, self._memory_words_current - int(words))

    def note_kernel_tier(self, name: str, warmup_seconds: float = 0.0) -> None:
        """Record which sampling kernel tier this rank actually ran.

        Programs call this after resolving their ``kernels=`` request (see
        :mod:`repro.core.kernels`), so the parent can report the tier -- and
        the one-time JIT warm-up cost it paid -- per rank even when the rank
        executed in another process.
        """
        self.kernel_tier = str(name)
        self.kernel_warmup_seconds = float(warmup_seconds)

    # -- summaries ------------------------------------------------------------
    def total(self) -> SuperstepCost:
        """Sum of all supersteps."""
        out = SuperstepCost()
        for step in self._supersteps:
            out = out.merge(step)
        return out

    def as_dict(self) -> dict:
        """Totals as a plain dictionary (used by reports and tests)."""
        tot = self.total()
        return {
            "rank": self.rank,
            "supersteps": len(self._supersteps),
            "compute_ops": tot.compute_ops,
            "words_sent": tot.words_sent,
            "words_received": tot.words_received,
            "messages_sent": tot.messages_sent,
            "messages_received": tot.messages_received,
            "random_variates": tot.random_variates,
            "memory_words_peak": self.memory_words_peak,
            "kernel_tier": self.kernel_tier,
            "kernel_warmup_seconds": self.kernel_warmup_seconds,
        }


@dataclass(frozen=True)
class MachineParameters:
    """Per-operation costs of a (real or hypothetical) machine, in seconds.

    Attributes
    ----------
    seconds_per_op:
        Cost of one basic compute operation charged through
        :meth:`CostRecorder.add_compute` (for the paper's platforms this is
        the 60-100 cycles/item figure divided by the clock rate; the
        permutation algorithms charge O(1) ops per item).
    seconds_per_word:
        Cost of moving one payload word across the network (inverse
        point-to-point bandwidth).  The PRO model assumes this constant
        depends only on the machine.
    seconds_per_message:
        Fixed start-up latency per message.
    seconds_per_variate:
        Cost of producing one pseudo-random variate.
    hop_factor:
        Multiplier applied to per-word cost for each extra hop beyond the
        first (0 for shared-memory/crossbar machines).
    name:
        Human-readable label used in reports.
    """

    seconds_per_op: float = 2.0e-7
    seconds_per_word: float = 2.5e-8
    seconds_per_message: float = 1.0e-5
    seconds_per_variate: float = 2.0e-7
    hop_factor: float = 0.0
    name: str = "generic"

    def validate(self) -> "MachineParameters":
        """Check all rates are non-negative, returning self for chaining."""
        for attr in ("seconds_per_op", "seconds_per_word", "seconds_per_message",
                     "seconds_per_variate", "hop_factor"):
            if getattr(self, attr) < 0:
                raise ValidationError(f"MachineParameters.{attr} must be >= 0")
        return self

    def superstep_time(self, step: SuperstepCost, average_hops: float = 1.0) -> float:
        """Predicted time one processor spends in one superstep."""
        hop_penalty = 1.0 + self.hop_factor * max(average_hops - 1.0, 0.0)
        return (
            step.compute_ops * self.seconds_per_op
            + step.h_relation * self.seconds_per_word * hop_penalty
            + (step.messages_sent + step.messages_received) * self.seconds_per_message
            + step.random_variates * self.seconds_per_variate
        )


#: Parameters loosely calibrated to the paper's 400 MHz SGI Origin 2000 runs:
#: 137 s sequential for 480e6 items works out to ~0.285 us of work per item
#: (~114 cycles, inside the 60-100 cycles + memory-stall range quoted in
#: Section 1); the exchange bandwidth and latency values are typical of the
#: machine's CrayLink interconnect.
ORIGIN_2000_PARAMETERS = MachineParameters(
    seconds_per_op=2.85e-7,
    seconds_per_word=2.6e-8,
    seconds_per_message=8.0e-6,
    seconds_per_variate=2.4e-7,
    hop_factor=0.0,
    name="SGI Origin 2000 (400 MHz), calibrated from the paper",
)

#: Parameters for interpreting measured in-process (thread backend) runs on a
#: present-day laptop: per-item work dominated by NumPy bulk operations.
LAPTOP_PYTHON_PARAMETERS = MachineParameters(
    seconds_per_op=6.0e-9,
    seconds_per_word=1.0e-9,
    seconds_per_message=5.0e-6,
    seconds_per_variate=1.0e-8,
    hop_factor=0.0,
    name="in-process NumPy backend",
)


class CostReport:
    """Aggregated view over the recorders of every processor of one run."""

    def __init__(self, recorders: Iterable[CostRecorder]):
        self.recorders = list(recorders)
        if not self.recorders:
            raise ValidationError("CostReport needs at least one recorder")
        #: Failed attempts the resilience layer absorbed before this
        #: (successful) run, the wall-clock they cost, and the backend the
        #: run degraded to (None when it succeeded on the configured one).
        #: The recorders themselves describe only the successful attempt --
        #: a retried epoch replays the same streams, so its per-rank
        #: accounting is identical to a fault-free run by construction.
        self.retries = 0
        self.recovery_seconds = 0.0
        self.degraded_to: str | None = None

    def note_retry(self, failed_attempts: int, recovery_seconds: float,
                   *, degraded_to: str | None = None) -> None:
        """Repatriate recovery effort (called by the resilience layer)."""
        self.retries += int(failed_attempts)
        self.recovery_seconds += float(recovery_seconds)
        if degraded_to is not None:
            self.degraded_to = degraded_to

    @property
    def n_procs(self) -> int:
        """Number of processors that contributed records."""
        return len(self.recorders)

    # -- totals ---------------------------------------------------------------
    def per_rank_totals(self) -> list[dict]:
        """One totals dictionary per rank (see :meth:`CostRecorder.as_dict`)."""
        return [rec.as_dict() for rec in self.recorders]

    def total(self, field_name: str) -> int:
        """Sum a totals field (e.g. ``"words_sent"``) across all ranks."""
        return int(sum(rec.as_dict()[field_name] for rec in self.recorders))

    def max_over_ranks(self, field_name: str) -> int:
        """Maximum of a totals field across ranks (balance checks)."""
        return int(max(rec.as_dict()[field_name] for rec in self.recorders))

    def imbalance(self, field_name: str) -> float:
        """Ratio max/mean of a totals field across ranks; 1.0 means perfectly balanced."""
        values = [rec.as_dict()[field_name] for rec in self.recorders]
        mean = float(np.mean(values))
        if mean == 0:
            return 1.0
        return float(np.max(values)) / mean

    def n_supersteps(self) -> int:
        """Number of supersteps of the longest-running processor."""
        return max(len(rec.supersteps) for rec in self.recorders)

    def kernel_tiers(self) -> list[tuple[str | None, float]]:
        """Per-rank ``(kernel_tier, warmup_seconds)`` pairs, ordered by rank.

        ``kernel_tier`` is ``None`` for ranks whose program never noted a
        tier (programs that predate the kernel registry, or plain compute
        programs with no sampling hot path).
        """
        return [
            (rec.kernel_tier, rec.kernel_warmup_seconds) for rec in self.recorders
        ]

    # -- BSP/PRO-style predicted time ----------------------------------------
    def predicted_time(
        self,
        params: MachineParameters,
        *,
        average_hops: float = 1.0,
        mode: str = "bsp",
    ) -> float:
        """Predicted wall-clock time of the recorded run on a machine.

        ``mode="bsp"`` sums, over supersteps, the maximum per-processor time
        of that superstep (processors wait for each other at barriers);
        ``mode="max"`` simply takes the busiest processor's total (an
        optimistic bound with perfect overlap).
        """
        params.validate()
        if mode not in ("bsp", "max"):
            raise ValidationError(f"mode must be 'bsp' or 'max', got {mode!r}")
        if mode == "max":
            return max(
                sum(params.superstep_time(s, average_hops) for s in rec.supersteps)
                for rec in self.recorders
            )
        n_steps = self.n_supersteps()
        total = 0.0
        for step_idx in range(n_steps):
            worst = 0.0
            for rec in self.recorders:
                if step_idx < len(rec.supersteps):
                    worst = max(worst, params.superstep_time(rec.supersteps[step_idx], average_hops))
            total += worst
        return total

    # -- reporting ------------------------------------------------------------
    def summary_table(self) -> str:
        """Human-readable per-rank summary table."""
        headers = [
            "rank", "supersteps", "compute_ops", "words_sent", "words_received",
            "msgs_sent", "msgs_recv", "variates", "mem_peak",
        ]
        rows = []
        for rec in self.recorders:
            d = rec.as_dict()
            rows.append([
                d["rank"], d["supersteps"], d["compute_ops"], d["words_sent"],
                d["words_received"], d["messages_sent"], d["messages_received"],
                d["random_variates"], d["memory_words_peak"],
            ])
        return format_table(headers, rows, title="Per-processor resource usage")

    def as_dict(self) -> Mapping[str, float]:
        """Machine-readable grand totals."""
        return {
            "n_procs": self.n_procs,
            "n_supersteps": self.n_supersteps(),
            "compute_ops_total": self.total("compute_ops"),
            "words_sent_total": self.total("words_sent"),
            "random_variates_total": self.total("random_variates"),
            "compute_ops_max": self.max_over_ranks("compute_ops"),
            "words_sent_max": self.max_over_ranks("words_sent"),
            "memory_words_peak_max": self.max_over_ranks("memory_words_peak"),
            "retries": self.retries,
            "recovery_seconds": self.recovery_seconds,
            "degraded_to": self.degraded_to,
        }
