"""Self-healing runs: retry policies, deadlines and graceful degradation.

The PRO algorithms assume every rank survives the run; real substrates do
not always cooperate.  This module is the recovery layer between the
machine and its backends:

* :class:`RetryPolicy` -- how many attempts a run gets
  (``max_attempts``), how long to pause between them (``backoff``), the
  wall-clock budget for the whole sequence (``deadline``) and which
  backends to degrade to when the budget for the configured backend is
  exhausted (``fallback``).  Threaded through
  :func:`~repro.pro.machine.resolve_machine`, every driver, the
  :func:`~repro.pro.backends.pool.pool` helper and the CLI
  (``--retries`` / ``--deadline``).
* :func:`run_with_recovery` -- the attempt loop
  :meth:`~repro.pro.machine.PROMachine.run` delegates to when a policy is
  set.  Only *transient* failures
  (:func:`~repro.util.errors.is_transient_failure`: crashed ranks, broken
  barriers, communication timeouts, injected faults) are retried; program
  exceptions are fatal because the replay is deterministic and would
  simply fail again.  Between attempts the backend's optional ``heal()``
  hook runs, which is how a poisoned persistent
  :class:`~repro.pro.backends.pool.WorkerPool` respawns its dead ranks in
  place instead of being thrown away.
* :class:`Deadline` and the :func:`current_deadline` thread-local --
  deadline propagation *into* fabric waits.  Each attempt clamps the
  fabric timeout to the remaining budget and publishes the deadline for
  the process backend's parent-side collection loop, so a stuck barrier
  surfaces as a typed :class:`~repro.util.errors.DeadlineError` within
  bound instead of burning the full communication timeout.

Determinism of retry
--------------------
Per-rank streams are derived in the parent from ``SeedSequence`` children
spawned **once per run() call**; every attempt (and every fallback
backend) rebuilds fresh generators from those same immutable children
(:meth:`~repro.rng.streams.StreamFactory.streams_from_children`).  A
retried or degraded run therefore returns a result bit-identical to the
fault-free run -- recovery is exact, not best-effort.  The committed
chaos plans (:func:`committed_chaos_plans`) pin exactly this property in
the test matrix and the CI chaos job.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.pro.telemetry import record_event
from repro.util.errors import DeadlineError, ValidationError, is_transient_failure
from repro.util.timeouts import scale_timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pro.machine import PROMachine, RunResult

__all__ = [
    "RetryPolicy",
    "Deadline",
    "current_deadline",
    "active_deadline",
    "run_with_recovery",
    "committed_chaos_plans",
]

#: Fabric waits are never clamped below this (seconds): a deadline that is
#: effectively spent still gives the attempt a sliver to fail *through the
#: fabric* rather than with a zero timeout that would mask the real error.
_MIN_WAIT = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """How a run may recover from transient backend failures.

    Parameters
    ----------
    max_attempts:
        Total attempts on the configured backend (1 = today's fail-fast
        behaviour; the default 2 gives one retry).
    backoff:
        Seconds to pause between attempts (scaled by
        ``REPRO_TEST_TIMEOUT_FACTOR`` like every other wait).  Mostly
        useful against substrate-level flakiness outside the library's
        control; the standing-pool heal path needs no pause.
    deadline:
        Wall-clock budget in seconds for the *whole* recovery sequence
        (all attempts plus fallbacks).  Propagated into fabric waits; when
        it expires the run raises :class:`~repro.util.errors.DeadlineError`
        and no further attempt or fallback is made.  ``None`` = no budget.
    fallback:
        Backend names to degrade to, in order, once ``max_attempts`` on
        the configured backend are exhausted (e.g. ``("thread",
        "inline")``).  Results stay bit-identical across backends, so
        degradation trades parallelism for survival, never correctness.
        Entries naming the already-failing backend are skipped, as is
        ``"inline"`` when the machine has more than one rank.
    """

    max_attempts: int = 2
    backoff: float = 0.0
    deadline: float | None = None
    fallback: tuple[str, ...] = ()

    def __post_init__(self):
        if not isinstance(self.max_attempts, int) or isinstance(self.max_attempts, bool) \
                or self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be a positive integer, got {self.max_attempts!r}"
            )
        if not (float(self.backoff) >= 0.0):
            raise ValidationError(f"backoff must be >= 0, got {self.backoff!r}")
        if self.deadline is not None and not (float(self.deadline) > 0.0):
            raise ValidationError(
                f"deadline must be positive (or None), got {self.deadline!r}"
            )
        object.__setattr__(self, "fallback", tuple(self.fallback))
        for name in self.fallback:
            if not isinstance(name, str) or not name:
                raise ValidationError(
                    f"fallback entries must be backend names, got {name!r}"
                )

    @classmethod
    def resolve(cls, retry) -> "RetryPolicy | None":
        """Normalise the ``retry=`` argument of machines and drivers.

        ``None`` -> ``None`` (no recovery, today's behaviour), an ``int``
        -> ``RetryPolicy(max_attempts=retry)``, a policy -> itself.
        """
        if retry is None or isinstance(retry, cls):
            return retry
        if isinstance(retry, int) and not isinstance(retry, bool):
            return cls(max_attempts=retry)
        raise ValidationError(
            f"retry must be None, an int (max attempts) or a RetryPolicy, got {retry!r}"
        )


class Deadline:
    """A monotonic wall-clock budget shared by one recovery sequence."""

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: float):
        self.seconds = float(seconds)
        self._expires_at = time.monotonic() + self.seconds

    def remaining(self) -> float:
        """Seconds left (may be negative once expired)."""
        return self._expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def clamp(self, timeout: float) -> float:
        """Bound a fabric wait by the remaining budget (floor ``_MIN_WAIT``)."""
        clamped = max(min(float(timeout), self.remaining()), _MIN_WAIT)
        if clamped < float(timeout):
            record_event("deadline-clamp", requested=float(timeout),
                         clamped=round(clamped, 3))
        return clamped


# ----------------------------------------------------------------------------
# Deadline propagation: attempts publish their deadline thread-locally so
# layers with fixed signatures (the pool's dispatch/collect loop) can bound
# their waits without threading a parameter through the backend contract.
# ----------------------------------------------------------------------------
_ACTIVE = threading.local()


def current_deadline() -> Deadline | None:
    """The deadline of the attempt running on this thread, if any."""
    return getattr(_ACTIVE, "deadline", None)


@contextlib.contextmanager
def active_deadline(deadline: Deadline | None):
    """Publish ``deadline`` for the duration of one attempt."""
    previous = getattr(_ACTIVE, "deadline", None)
    _ACTIVE.deadline = deadline
    try:
        yield deadline
    finally:
        _ACTIVE.deadline = previous


# ----------------------------------------------------------------------------
# The recovery loop
# ----------------------------------------------------------------------------
def _skip_fallback(name: str, machine: "PROMachine") -> bool:
    current = str(getattr(machine.backend, "name", ""))
    if name == current or current.endswith("+" + name):
        return True  # the substrate that just failed (possibly fault-wrapped)
    return name == "inline" and machine.n_procs > 1


def _heal_backend(machine: "PROMachine") -> bool:
    """Run the backend's optional ``heal()`` hook between attempts."""
    healer = getattr(machine.backend, "heal", None)
    if healer is None:
        return True  # stateless backends build a fresh fabric per attempt
    try:
        return healer() is not False
    except Exception:
        return False


def run_with_recovery(machine: "PROMachine", program, args, kwargs, children) -> "RunResult":
    """Execute one run under ``machine.retry_policy``.

    ``children`` are the per-rank ``SeedSequence`` children spawned by this
    ``run()`` call; every attempt and fallback rebuilds its generators from
    them, which is what makes recovery bit-exact.  Raises the last failure
    when every attempt and fallback is exhausted, or
    :class:`~repro.util.errors.DeadlineError` the moment the budget is.
    """
    policy = machine.retry_policy
    deadline = Deadline(scale_timeout(policy.deadline)) if policy.deadline else None
    last_exc: Exception | None = None
    recovery_seconds = 0.0
    failed_attempts = 0

    def _finish(result: "RunResult", *, degraded_to: str | None = None) -> "RunResult":
        if failed_attempts:
            result.cost_report.note_retry(
                failed_attempts, recovery_seconds, degraded_to=degraded_to
            )
        return result

    for attempt in range(policy.max_attempts):
        if deadline is not None and deadline.expired:
            raise DeadlineError(
                f"deadline of {policy.deadline}s exhausted after "
                f"{failed_attempts} failed attempt(s)"
            ) from last_exc
        started = time.perf_counter()
        try:
            return _finish(machine._attempt(program, args, kwargs, children,
                                            deadline=deadline))
        except DeadlineError:
            raise
        except Exception as exc:
            recovery_seconds += time.perf_counter() - started
            failed_attempts += 1
            last_exc = exc
            if deadline is not None and deadline.expired:
                raise DeadlineError(
                    f"deadline of {policy.deadline}s exhausted during "
                    f"attempt {attempt + 1}: {exc!r}"
                ) from exc
            if not is_transient_failure(exc):
                raise  # deterministic replay would fail identically
            record_event("retry", attempt=attempt + 1,
                         error=type(exc).__name__)
            if attempt + 1 >= policy.max_attempts:
                break  # respawn budget spent; degrade if configured
            if not _heal_backend(machine):
                break  # the substrate cannot be restored; degrade
            if policy.backoff:
                time.sleep(scale_timeout(policy.backoff))

    for name in policy.fallback:
        if _skip_fallback(name, machine):
            continue
        if deadline is not None and deadline.expired:
            raise DeadlineError(
                f"deadline of {policy.deadline}s exhausted before degrading "
                f"to the {name!r} backend"
            ) from last_exc
        started = time.perf_counter()
        try:
            result = _run_on_fallback(machine, name, program, args, kwargs,
                                      children, deadline)
        except DeadlineError:
            raise
        except Exception as exc:
            recovery_seconds += time.perf_counter() - started
            failed_attempts += 1
            last_exc = exc
            continue
        record_event("degraded", backend=name)
        return _finish(result, degraded_to=name)

    assert last_exc is not None
    raise last_exc


def _run_on_fallback(machine: "PROMachine", name: str, program, args, kwargs,
                     children, deadline: Deadline | None) -> "RunResult":
    """One attempt on a degraded backend, same streams, then tear it down."""
    from repro.pro.machine import PROMachine  # lazy: machine imports us

    fallback = PROMachine(
        machine.n_procs,
        backend=name,
        topology=machine.topology,
        count_random_variates=machine.count_random_variates,
        timeout=machine.timeout,
        kernels=machine.kernels,
    )
    try:
        return fallback._attempt(program, args, kwargs, children, deadline=deadline)
    finally:
        fallback.close()


# ----------------------------------------------------------------------------
# Committed chaos plans: the recovery scenarios CI sweeps on every push
# ----------------------------------------------------------------------------
def committed_chaos_plans() -> dict:
    """The named fault plans the chaos suites run under a retry policy.

    Shared by ``tests/integration/test_retry_fault_matrix.py`` and the CI
    chaos gate (``benchmarks/check_chaos_recovery.py``) so the committed
    recovery guarantees are one list, not two.  Every fault is pinned to
    ``at_run=0``: the first attempt fails, the replay runs fault-free, and
    the caller must receive a result bit-identical to a never-faulted run.
    The rank indices assume the chaos suites' canonical ``p = 4``.

    (A function rather than a module constant so this module keeps
    leaf-level imports; the fault records live in
    :mod:`repro.pro.backends.faults`.)
    """
    from repro.pro.backends.faults import BarrierTimeout, CrashRank, DropMessage

    return {
        "crash-root-early": (CrashRank(rank=0, at_op=0, at_run=0),),
        "crash-rank1-mid": (CrashRank(rank=1, at_op=2, at_run=0),),
        "drop-first-0-to-1": (DropMessage(src=0, dst=1, nth=0, at_run=0),),
        "barrier-timeout-last-rank": (BarrierTimeout(rank=3, at_run=0),),
    }
