"""Coarse-grained parallel machine substrate (the "PRO machine").

The paper analyses its algorithms in the PRO model (Gebremedhin, Guerin
Lassous, Gustedt & Telle, 2002), a descendant of Valiant's BSP: ``p``
homogeneous processors, each with private memory of size ``O(n/p)``, linked
by a point-to-point network; computation proceeds in supersteps, and an
algorithm is only admissible when it is work- and space-optimal with respect
to a reference sequential algorithm.

This subpackage is an executable stand-in for the paper's experimental
environment (SSCRAP on top of MPI / shared memory).  It provides

* :class:`~repro.pro.machine.PROMachine` -- run an SPMD program on ``p``
  virtual processors,
* :mod:`~repro.pro.backends` -- the pluggable execution-backend registry.
  Backends are selected by name (``backend="inline" | "thread" |
  "process" | "sim"``) everywhere a machine is built -- drivers, CLI,
  bench harness -- and new ones are added with
  :func:`~repro.pro.backends.registry.register_backend`.  The contract a
  backend must honour (fabric semantics ``put``/``get``/``barrier_wait``/
  ``abort``, error-propagation rules mirroring the thread backend's
  abort-the-barrier behaviour, cost/variate repatriation for backends
  outside the calling address space) is documented in
  :mod:`repro.pro.backends.registry`.  For a fixed machine seed, results
  are bit-identical across backends because the per-rank streams are
  derived in the parent and shipped to wherever the rank runs,
* :mod:`~repro.pro.resilience` -- transient-failure recovery:
  :class:`~repro.pro.resilience.RetryPolicy` (attempt budget, backoff,
  wall-clock :class:`~repro.pro.resilience.Deadline`, graceful-degradation
  fallback chain) accepted by every machine and driver as ``retry=``;
  replayed attempts reuse the per-rank streams captured at the first
  attempt, so a recovered run is bit-identical to a fault-free one,
* :class:`~repro.pro.communicator.Communicator` -- message passing
  (point-to-point and collective operations built from point-to-point),
* :mod:`~repro.pro.cost` -- per-processor, per-superstep resource accounting
  (compute operations, words communicated, messages, random variates,
  memory), plus an analytic time model used to reproduce the paper's scaling
  table on hardware we do not have,
* :mod:`~repro.pro.topology` -- interconnect models (fully connected, ring,
  2-D mesh, hypercube) that feed hop counts into the time model.

Every algorithm of the paper (Algorithms 1, 5 and 6) is implemented as an
ordinary Python function ``program(ctx, ...)`` that receives a
:class:`~repro.pro.machine.ProcessorContext` and can be executed by the
machine on any number of virtual processors.
"""

from repro.pro.analysis import PROAssessment, SequentialReference, assess_run, granularity
from repro.pro.backends.registry import (
    BackendCapabilities,
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
)
from repro.pro.machine import PROMachine, ProcessorContext, RunResult
from repro.pro.resilience import Deadline, RetryPolicy
from repro.pro.communicator import Communicator
from repro.pro.cost import (
    CostRecorder,
    CostReport,
    MachineParameters,
    SuperstepCost,
)
from repro.pro.topology import (
    Topology,
    FullyConnected,
    Ring,
    Mesh2D,
    Hypercube,
    topology_from_name,
)

__all__ = [
    "PROMachine",
    "ProcessorContext",
    "RunResult",
    "BackendCapabilities",
    "available_backends",
    "backend_capabilities",
    "get_backend",
    "register_backend",
    "PROAssessment",
    "SequentialReference",
    "assess_run",
    "granularity",
    "Communicator",
    "RetryPolicy",
    "Deadline",
    "CostRecorder",
    "CostReport",
    "MachineParameters",
    "SuperstepCost",
    "Topology",
    "FullyConnected",
    "Ring",
    "Mesh2D",
    "Hypercube",
    "topology_from_name",
]
