"""External-memory random permutations (the paper's outlook, Section 6).

The paper closes by observing that coarse-grained algorithms translate to
the external-memory / cache-conscious setting (citing Cormen & Goodrich 1996
and Dehne, Dittrich & Hutchinson 1997): the blocks of the coarse-grained
machine become disk blocks (or cache lines), and the all-to-all exchange
becomes two sequential passes over the data -- avoiding the cache misses of
the straightforward Fisher-Yates, whose memory accesses are essentially
random.

This subpackage realises that idea:

* :mod:`repro.extmem.blockstore` -- block-granular storage with exact I/O
  accounting: an in-memory store for tests and a file-backed store that
  keeps one ``.npy`` file per block, plus an LRU cache wrapper that models a
  small fast memory in front of either;
* :mod:`repro.extmem.permutation` -- the two-pass external permutation built
  on communication-matrix sampling, and the naive random-access permutation
  it is compared against.

The accompanying benchmark (``benchmarks/bench_external_memory.py``) shows
the block-transfer counts: ``O(n/B)`` for the two-pass algorithm versus
``~n`` cache misses for the naive one once the data exceeds the cache.
"""

from repro.extmem.blockstore import (
    BlockStore,
    CachedBlockStore,
    FileBlockStore,
    IOStatistics,
    MemoryBlockStore,
)
from repro.extmem.permutation import (
    external_random_permutation,
    naive_external_permutation,
)

__all__ = [
    "BlockStore",
    "MemoryBlockStore",
    "FileBlockStore",
    "CachedBlockStore",
    "IOStatistics",
    "external_random_permutation",
    "naive_external_permutation",
]
