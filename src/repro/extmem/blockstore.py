"""Block-granular storage with exact I/O accounting.

External-memory algorithms are analysed in the number of *block transfers*
between a small fast memory and a large slow one (the I/O model of Aggarwal
and Vitter).  The stores below expose exactly that interface -- read a whole
block, write a whole block -- and count every transfer, so the benchmarks
can report block-transfer numbers instead of noisy wall-clock times.

Three implementations:

* :class:`MemoryBlockStore` -- blocks live in a dictionary; the "disk" is
  simulated.  Fast, used by tests and benchmarks.
* :class:`FileBlockStore` -- one ``.npy`` file per block inside a directory;
  a real out-of-core store for data sets that genuinely do not fit in RAM.
* :class:`CachedBlockStore` -- an LRU cache of a fixed number of blocks in
  front of any other store; models the fast memory and counts hits/misses.
  The naive random-access permutation run through a small cache is exactly
  the "cache misses of the straightforward algorithm" the paper refers to.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError
from repro.util.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "IOStatistics",
    "BlockStore",
    "MemoryBlockStore",
    "FileBlockStore",
    "CachedBlockStore",
]


@dataclass
class IOStatistics:
    """Counters of block transfers performed by a store."""

    blocks_read: int = 0
    blocks_written: int = 0
    words_read: int = 0
    words_written: int = 0

    @property
    def total_block_transfers(self) -> int:
        """Reads plus writes -- the I/O-model cost."""
        return self.blocks_read + self.blocks_written

    def reset(self) -> None:
        """Zero all counters."""
        self.blocks_read = 0
        self.blocks_written = 0
        self.words_read = 0
        self.words_written = 0


class BlockStore(ABC):
    """Abstract block-granular storage."""

    def __init__(self):
        self.io = IOStatistics()

    # -- interface ---------------------------------------------------------
    @abstractmethod
    def _read(self, block_id: int) -> np.ndarray:
        """Fetch a block from the backing storage (no accounting)."""

    @abstractmethod
    def _write(self, block_id: int, values: np.ndarray) -> None:
        """Store a block in the backing storage (no accounting)."""

    @abstractmethod
    def block_ids(self) -> list[int]:
        """All block ids currently present, sorted."""

    def has_block(self, block_id: int) -> bool:
        """True when ``block_id`` is present."""
        return block_id in set(self.block_ids())

    # -- accounted operations ----------------------------------------------
    def read_block(self, block_id: int) -> np.ndarray:
        """Read one block, counting the transfer."""
        block_id = check_nonnegative_int(block_id, "block_id")
        values = self._read(block_id)
        self.io.blocks_read += 1
        self.io.words_read += int(values.size)
        return values

    def write_block(self, block_id: int, values) -> None:
        """Write one block, counting the transfer."""
        block_id = check_nonnegative_int(block_id, "block_id")
        arr = np.asarray(values)
        self._write(block_id, arr)
        self.io.blocks_written += 1
        self.io.words_written += int(arr.size)

    # -- convenience ----------------------------------------------------------
    def total_items(self) -> int:
        """Total number of items over all blocks (reads bypass accounting)."""
        return int(sum(self._read(block_id).size for block_id in self.block_ids()))

    def load_vector(self, values, block_size: int) -> None:
        """Split an in-memory vector into blocks of ``block_size`` and store them."""
        block_size = check_positive_int(block_size, "block_size")
        arr = np.asarray(values)
        n_blocks = int(np.ceil(arr.shape[0] / block_size)) if arr.shape[0] else 0
        for block_id in range(n_blocks):
            self.write_block(block_id, arr[block_id * block_size:(block_id + 1) * block_size])

    def dump_vector(self) -> np.ndarray:
        """Concatenate all blocks in id order (counting the reads)."""
        ids = self.block_ids()
        if not ids:
            return np.empty(0)
        return np.concatenate([self.read_block(block_id) for block_id in ids])


class MemoryBlockStore(BlockStore):
    """Blocks kept in a dictionary -- a simulated disk with exact accounting."""

    def __init__(self):
        super().__init__()
        self._blocks: dict[int, np.ndarray] = {}

    def _read(self, block_id: int) -> np.ndarray:
        if block_id not in self._blocks:
            raise ValidationError(f"block {block_id} does not exist")
        return self._blocks[block_id]

    def _write(self, block_id: int, values: np.ndarray) -> None:
        self._blocks[block_id] = np.array(values, copy=True)

    def block_ids(self) -> list[int]:
        return sorted(self._blocks)


class FileBlockStore(BlockStore):
    """One ``.npy`` file per block inside a directory."""

    def __init__(self, directory: str):
        super().__init__()
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, block_id: int) -> str:
        return os.path.join(self.directory, f"block_{block_id:08d}.npy")

    def _read(self, block_id: int) -> np.ndarray:
        path = self._path(block_id)
        if not os.path.exists(path):
            raise ValidationError(f"block {block_id} does not exist in {self.directory}")
        return np.load(path, allow_pickle=False)

    def _write(self, block_id: int, values: np.ndarray) -> None:
        np.save(self._path(block_id), np.asarray(values), allow_pickle=False)

    def block_ids(self) -> list[int]:
        ids = []
        for name in os.listdir(self.directory):
            if name.startswith("block_") and name.endswith(".npy"):
                ids.append(int(name[len("block_"):-len(".npy")]))
        return sorted(ids)


class CachedBlockStore(BlockStore):
    """An LRU cache of ``capacity_blocks`` blocks in front of another store.

    Reads served from the cache are *hits* and cost no block transfer on the
    backing store; misses fetch the block from the backing store (counted
    there) and may evict the least recently used cached block, writing it
    back if dirty.  This is how the benchmarks model a CPU cache or a small
    main memory in front of a big data set.
    """

    def __init__(self, backing: BlockStore, capacity_blocks: int):
        super().__init__()
        self.backing = backing
        self.capacity_blocks = check_positive_int(capacity_blocks, "capacity_blocks")
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0

    # -- cache mechanics -------------------------------------------------------
    def _evict_if_needed(self) -> None:
        while len(self._cache) > self.capacity_blocks:
            victim_id, victim = self._cache.popitem(last=False)
            if victim_id in self._dirty:
                self.backing.write_block(victim_id, victim)
                self._dirty.discard(victim_id)

    def _load(self, block_id: int) -> np.ndarray:
        if block_id in self._cache:
            self._cache.move_to_end(block_id)
            self.hits += 1
            return self._cache[block_id]
        self.misses += 1
        values = self.backing.read_block(block_id)
        self._cache[block_id] = np.array(values, copy=True)
        self._evict_if_needed()
        return self._cache[block_id]

    # -- BlockStore interface ------------------------------------------------------
    def _read(self, block_id: int) -> np.ndarray:
        return self._load(block_id)

    def _write(self, block_id: int, values: np.ndarray) -> None:
        self._cache[block_id] = np.array(values, copy=True)
        self._cache.move_to_end(block_id)
        self._dirty.add(block_id)
        self._evict_if_needed()

    def block_ids(self) -> list[int]:
        ids = set(self.backing.block_ids()) | set(self._cache)
        return sorted(ids)

    def flush(self) -> None:
        """Write every dirty cached block back to the backing store."""
        for block_id in list(self._dirty):
            self.backing.write_block(block_id, self._cache[block_id])
        self._dirty.clear()

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that had to go to the backing store."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
