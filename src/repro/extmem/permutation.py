"""External-memory uniform random permutation (two passes over the data).

The classic Fisher-Yates shuffle addresses memory "in an unpredictable way
and thus caus[es] a lot of cache misses" (Section 1 of the paper); run out
of core it performs ~1 random block access per item.  The coarse-grained
algorithm maps directly to the external-memory model (the paper's outlook,
citing Cormen & Goodrich and Dehne et al.): treat every disk block as the
block of a virtual processor, sample the communication matrix between the
``B`` source blocks and ``B`` target blocks exactly as in Problem 2, and
realise the permutation in two sequential passes:

1. **Distribution pass** -- read each source block once, shuffle it in fast
   memory, cut it according to its matrix row and append the pieces to
   per-target staging buckets.  The cut is *vectorized*: one ``cumsum``
   over the matrix row yields every piece boundary and only the targets
   with a non-empty piece (``np.flatnonzero`` of the row) are visited, so
   the Python-level work per source block is proportional to the number of
   actual transfers instead of ``Theta(B)`` -- for ``B`` blocks the whole
   pass drops from ``Theta(B^2)`` interpreted iterations to the number of
   non-zero matrix entries (the same bulk row-cut kernel as
   :func:`repro.core.permutation.cut_rows`);
2. **Collection pass** -- read each target's staged pieces, concatenate,
   shuffle in fast memory, and write the final target block.

Every item is read twice and written twice, i.e. ``Theta(n / B)`` block
transfers, and the result is *exactly* uniform for the same reason
Algorithm 1 is (the matrix has the right law and the in-memory shuffles
randomise within the fixed subsets).

:func:`naive_external_permutation` implements Fisher-Yates on top of a
cached block store so the benchmarks can show the cache-miss blow-up that
motivates the two-pass algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import commmatrix
from repro.extmem.blockstore import BlockStore, CachedBlockStore, MemoryBlockStore
from repro.rng.streams import default_rng
from repro.util.validation import check_positive_int

__all__ = [
    "ExternalPermutationResult",
    "external_random_permutation",
    "naive_external_permutation",
]


@dataclass
class ExternalPermutationResult:
    """Outcome and I/O accounting of an external permutation run."""

    n_items: int
    n_blocks: int
    block_size: int
    block_transfers: int
    words_transferred: int
    algorithm: str

    @property
    def transfers_per_block_of_data(self) -> float:
        """Block transfers divided by ``ceil(n / B)`` -- the I/O-model constant.

        The two-pass algorithm achieves a small constant (about 4: each item
        is read twice and written twice); the naive algorithm degrades to
        ``Theta(B)`` once the data no longer fits in the cache.
        """
        data_blocks = max(1, int(np.ceil(self.n_items / self.block_size)))
        return self.block_transfers / data_blocks


def _collect_sizes(store: BlockStore) -> list[int]:
    return [int(store._read(block_id).size) for block_id in store.block_ids()]


def external_random_permutation(
    source: BlockStore,
    target: BlockStore,
    *,
    staging: BlockStore | None = None,
    rng=None,
    seed=None,
    method: str = "auto",
) -> ExternalPermutationResult:
    """Uniformly permute the items of ``source`` into ``target`` in two passes.

    Parameters
    ----------
    source:
        Block store holding the input vector (block ``i`` is read exactly
        once).  Block sizes may be uneven.
    target:
        Block store the permuted vector is written to; it receives the same
        block layout as the source.
    staging:
        Optional store for the intermediate buckets (defaults to an
        in-memory store; pass a file-backed store for genuinely out-of-core
        runs).  One staging block is written per (source, target) pair with
        a non-empty transfer, and each is read exactly once.
    rng, seed:
        Randomness (a generator, or a seed for a fresh one).
    method:
        Hypergeometric sampling method forwarded to the matrix sampler.

    Returns
    -------
    ExternalPermutationResult
        The I/O statistics of the run (source + staging + target transfers).
    """
    rng = default_rng(rng if rng is not None else seed) if not hasattr(rng, "random") else rng
    staging = staging if staging is not None else MemoryBlockStore()

    block_ids = source.block_ids()
    if not block_ids:
        return ExternalPermutationResult(0, 0, 0, 0, 0, "two-pass")
    sizes = _collect_sizes(source)
    n_items = int(sum(sizes))
    n_blocks = len(block_ids)
    block_size = max(sizes)

    # The communication matrix between source blocks and target blocks,
    # drawn from the exact law of Problem 2.
    matrix = commmatrix.sample_matrix_sequential(sizes, sizes, rng, method=method)

    # Pass 1: distribute.  Each target owns a run of staging block ids; pieces
    # destined to a target are appended to an in-memory buffer of at most one
    # block and flushed to staging whenever it fills (this is the standard
    # distribution pass of external-memory algorithms: the fast memory only
    # needs one buffer per target plus the block being read).
    stride = n_blocks + int(np.ceil(n_items / max(block_size, 1))) + 2
    staged_counts = [0] * n_blocks
    buffers: list[list[np.ndarray]] = [[] for _ in range(n_blocks)]
    buffered_items = [0] * n_blocks

    def flush(target_idx: int) -> None:
        if buffered_items[target_idx] == 0:
            return
        chunk = np.concatenate(buffers[target_idx])
        staging.write_block(target_idx * stride + staged_counts[target_idx], chunk)
        staged_counts[target_idx] += 1
        buffers[target_idx] = []
        buffered_items[target_idx] = 0

    for source_idx, block_id in enumerate(block_ids):
        values = source.read_block(block_id)
        shuffled = np.array(values, copy=True)
        if shuffled.shape[0] > 1:
            rng.shuffle(shuffled)
        # Vectorized row cut: one cumsum gives every piece boundary, and
        # only targets actually receiving data are visited (the staging
        # layout is identical to the per-piece loop formulation, which the
        # property suite checks against cut_rows).
        row = matrix[source_idx, :]
        ends = np.cumsum(row)
        starts = ends - row
        for target_idx in np.flatnonzero(row):
            buffers[target_idx].append(shuffled[starts[target_idx]:ends[target_idx]])
            buffered_items[target_idx] += int(row[target_idx])
            if buffered_items[target_idx] >= block_size:
                flush(target_idx)
    for target_idx in range(n_blocks):
        flush(target_idx)

    # Pass 2: collect.
    for target_idx, block_id in enumerate(block_ids):
        pieces = [
            staging.read_block(target_idx * stride + chunk_idx)
            for chunk_idx in range(staged_counts[target_idx])
        ]
        if pieces:
            merged = np.concatenate(pieces)
        else:
            merged = np.empty(0, dtype=source._read(block_ids[0]).dtype)
        if merged.shape[0] > 1:
            rng.shuffle(merged)
        target.write_block(block_id, merged)

    transfers = (
        source.io.total_block_transfers
        + staging.io.total_block_transfers
        + target.io.total_block_transfers
    )
    words = (
        source.io.words_read + source.io.words_written
        + staging.io.words_read + staging.io.words_written
        + target.io.words_read + target.io.words_written
    )
    return ExternalPermutationResult(
        n_items=n_items,
        n_blocks=n_blocks,
        block_size=block_size,
        block_transfers=transfers,
        words_transferred=words,
        algorithm="two-pass",
    )


def naive_external_permutation(
    source: BlockStore,
    target: BlockStore,
    *,
    cache_blocks: int = 4,
    rng=None,
    seed=None,
) -> ExternalPermutationResult:
    """Fisher-Yates run directly against the block store through a small cache.

    Every swap touches two random positions; once the data is larger than
    ``cache_blocks`` blocks most accesses miss, so the number of block
    transfers approaches one per item -- the behaviour the paper's
    introduction measures as the memory-bandwidth bottleneck.  The output is
    uniform (it is plain Fisher-Yates); only the I/O cost is bad.
    """
    cache_blocks = check_positive_int(cache_blocks, "cache_blocks")
    rng = default_rng(rng if rng is not None else seed) if not hasattr(rng, "integers") else rng

    block_ids = source.block_ids()
    if not block_ids:
        return ExternalPermutationResult(0, 0, 0, 0, 0, "naive")
    sizes = _collect_sizes(source)
    n_items = int(sum(sizes))
    block_size = max(sizes)
    offsets = np.concatenate(([0], np.cumsum(sizes)))

    # Copy the input into the target store first (sequential pass), then
    # shuffle the target in place through the cache.
    for block_id in block_ids:
        target.write_block(block_id, source.read_block(block_id))

    cached = CachedBlockStore(target, capacity_blocks=cache_blocks)

    def locate(global_index: int) -> tuple[int, int]:
        block = int(np.searchsorted(offsets, global_index, side="right") - 1)
        return block_ids[block], int(global_index - offsets[block])

    def read_item(global_index: int):
        block_id, offset = locate(global_index)
        return cached.read_block(block_id)[offset]

    def write_item(global_index: int, value) -> None:
        block_id, offset = locate(global_index)
        block = np.array(cached.read_block(block_id), copy=True)
        block[offset] = value
        cached.write_block(block_id, block)

    for i in range(n_items - 1, 0, -1):
        j = int(rng.integers(0, i + 1))
        if i == j:
            continue
        vi, vj = read_item(i), read_item(j)
        write_item(i, vj)
        write_item(j, vi)
    cached.flush()

    transfers = source.io.total_block_transfers + target.io.total_block_transfers
    words = (
        source.io.words_read + source.io.words_written
        + target.io.words_read + target.io.words_written
    )
    return ExternalPermutationResult(
        n_items=n_items,
        n_blocks=len(block_ids),
        block_size=block_size,
        block_transfers=transfers,
        words_transferred=words,
        algorithm="naive",
    )
