"""repro -- coarse-grained parallel uniform random permutations.

A production-quality reproduction of Jens Gustedt, *Randomized Permutations
in a Coarse Grained Parallel Environment* (INRIA RR-4639, 2002 / SPAA 2003).

The library permutes block-distributed data uniformly at random while being
work-optimal and balanced: every processor touches only ``O(n/p)`` items,
draws ``O(n/p)`` random variates and communicates ``O(n/p)`` words.  The key
ingredient is exact sampling of the inter-processor *communication matrix*,
whose law generalises the multivariate hypergeometric distribution.

Quickstart
----------
>>> import numpy as np
>>> from repro import random_permutation
>>> shuffled = random_permutation(np.arange(12), n_procs=3, seed=42)
>>> sorted(shuffled.tolist()) == list(range(12))
True

Package layout
--------------
``repro.core``
    The paper's algorithms (1-6) and the distribution theory of Section 3.
``repro.pro``
    The coarse-grained machine substrate (SPMD execution, message passing,
    cost accounting, topologies).
``repro.rng``
    Independent per-processor random streams and variate counting.
``repro.baselines``
    Sequential Fisher-Yates and the competing parallel methods the paper
    compares against (sort-based, dart-throwing, rejection).
``repro.stats``
    Statistical validation: uniformity tests and goodness-of-fit of the
    matrix law.
``repro.workloads``
    Input generators used by the examples and benchmarks.
``repro.bench``
    The harness that regenerates every table and figure of the paper
    (see ``EXPERIMENTS.md``).
"""

from repro.core import (
    BlockDistribution,
    permute_distributed,
    random_permutation,
    random_permutation_indices,
    sample_communication_matrix,
    sample_matrix_parallel,
)
from repro.pro import PROMachine
from repro.rng import CountingRNG, StreamFactory

__version__ = "1.0.0"

__all__ = [
    "BlockDistribution",
    "PROMachine",
    "CountingRNG",
    "StreamFactory",
    "permute_distributed",
    "random_permutation",
    "random_permutation_indices",
    "sample_communication_matrix",
    "sample_matrix_parallel",
    "__version__",
]
