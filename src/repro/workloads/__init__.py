"""Workload and input generators for the examples, tests and benchmarks."""

from repro.workloads.generators import (
    integer_vector,
    record_vector,
    skewed_block_sizes,
    balanced_block_sizes,
    matrix_marginals,
    load_balancing_scenario,
)

__all__ = [
    "integer_vector",
    "record_vector",
    "skewed_block_sizes",
    "balanced_block_sizes",
    "matrix_marginals",
    "load_balancing_scenario",
]
