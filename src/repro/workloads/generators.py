"""Input generators.

The paper's experiments permute vectors of ``long int``'s of up to 480
million items; the introduction motivates the problem with load balancing,
random sampling for algorithm testing, statistical tests and games.  The
generators here produce the corresponding synthetic inputs:

* plain integer vectors (the paper's workload),
* record vectors (an integer key plus payload words, to exercise non-trivial
  item sizes in the exchange),
* balanced and skewed block layouts,
* marginal vectors for stand-alone communication-matrix experiments,
* a "load balancing" scenario where the items arrive heavily skewed across
  processors and a random permutation is the classic fix.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import BlockDistribution
from repro.rng.streams import default_rng
from repro.util.errors import ValidationError
from repro.util.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "integer_vector",
    "record_vector",
    "balanced_block_sizes",
    "skewed_block_sizes",
    "matrix_marginals",
    "load_balancing_scenario",
]


def integer_vector(n_items: int, *, dtype=np.int64, distinct: bool = True, seed=None) -> np.ndarray:
    """A vector of ``n_items`` integers.

    With ``distinct=True`` (default) the vector is ``0..n-1`` -- handy
    because multiset equality after permutation reduces to sorting; with
    ``distinct=False`` values are drawn uniformly from a 32-bit range, which
    exercises duplicate handling in the baselines.
    """
    n_items = check_nonnegative_int(n_items, "n_items")
    if distinct:
        return np.arange(n_items, dtype=dtype)
    rng = default_rng(seed)
    return rng.integers(0, 2**31 - 1, size=n_items).astype(dtype)


def record_vector(n_items: int, *, payload_words: int = 3, seed=None) -> np.ndarray:
    """A structured vector: an ``int64`` key plus ``payload_words`` payload columns.

    Used to verify that the exchange moves whole records, not just keys, and
    to benchmark the bandwidth term with heavier items.
    """
    n_items = check_nonnegative_int(n_items, "n_items")
    payload_words = check_positive_int(payload_words, "payload_words")
    rng = default_rng(seed)
    dtype = [("key", np.int64), ("payload", np.float64, (payload_words,))]
    out = np.zeros(n_items, dtype=dtype)
    out["key"] = np.arange(n_items)
    out["payload"] = rng.random((n_items, payload_words))
    return out


def balanced_block_sizes(n_items: int, n_procs: int) -> np.ndarray:
    """Block sizes of the balanced distribution (differ by at most one)."""
    return BlockDistribution.balanced(n_items, n_procs).sizes


def skewed_block_sizes(n_items: int, n_procs: int, *, skew: float = 2.0, seed=None) -> np.ndarray:
    """Block sizes following a geometric-like skew: block 0 largest, then decaying.

    ``skew`` is the approximate ratio between the largest and the smallest
    block.  Useful to model the unbalanced inputs that motivate using a
    random permutation for load balancing.
    """
    n_items = check_nonnegative_int(n_items, "n_items")
    n_procs = check_positive_int(n_procs, "n_procs")
    if skew < 1.0:
        raise ValidationError(f"skew must be >= 1, got {skew}")
    weights = np.geomspace(skew, 1.0, num=n_procs)
    raw = weights / weights.sum() * n_items
    sizes = np.floor(raw).astype(np.int64)
    deficit = n_items - int(sizes.sum())
    # Distribute the rounding remainder over the largest fractional parts.
    order = np.argsort(-(raw - np.floor(raw)))
    for i in range(deficit):
        sizes[order[i % n_procs]] += 1
    return sizes


def matrix_marginals(
    n_procs: int,
    items_per_proc: int,
    *,
    layout: str = "balanced",
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Source/target marginal vectors for stand-alone matrix experiments.

    ``layout`` is one of

    * ``"balanced"`` -- all blocks equal (the paper's symmetric case);
    * ``"uneven"`` -- random block sizes on both sides (same totals);
    * ``"gather"`` -- balanced sources, targets concentrated on half of the
      processors (a redistribution / repartitioning workload).
    """
    n_procs = check_positive_int(n_procs, "n_procs")
    items_per_proc = check_nonnegative_int(items_per_proc, "items_per_proc")
    total = n_procs * items_per_proc
    if layout == "balanced":
        sizes = np.full(n_procs, items_per_proc, dtype=np.int64)
        return sizes, sizes.copy()
    if layout == "uneven":
        rng = default_rng(seed)
        rows = BlockDistribution.random_uneven(total, n_procs, seed=rng, min_size=0).sizes
        cols = BlockDistribution.random_uneven(total, n_procs, seed=rng, min_size=0).sizes
        return rows, cols
    if layout == "gather":
        rows = np.full(n_procs, items_per_proc, dtype=np.int64)
        cols = np.zeros(n_procs, dtype=np.int64)
        receivers = max(1, n_procs // 2)
        base, extra = divmod(total, receivers)
        cols[:receivers] = base
        cols[:extra] += 1
        return rows, cols
    raise ValidationError(f"unknown layout {layout!r}; use 'balanced', 'uneven' or 'gather'")


def load_balancing_scenario(
    n_items: int,
    n_procs: int,
    *,
    skew: float = 4.0,
    seed=None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """A skewed distributed workload and the balanced target layout.

    Returns ``(blocks, target_sizes)``: ``blocks[i]`` holds processor ``i``'s
    (heavily unbalanced) share of synthetic work items, ``target_sizes`` is
    the balanced layout a random permutation should redistribute them into.
    The items carry a "cost" value drawn from a heavy-tailed distribution so
    the example can also show that *expensive* items spread out evenly.
    """
    n_items = check_nonnegative_int(n_items, "n_items")
    n_procs = check_positive_int(n_procs, "n_procs")
    rng = default_rng(seed)
    sizes = skewed_block_sizes(n_items, n_procs, skew=skew, seed=rng)
    costs = rng.pareto(2.0, size=n_items) + 1.0
    distribution = BlockDistribution(sizes)
    blocks = [block.copy() for block in distribution.split(costs)]
    target = balanced_block_sizes(n_items, n_procs)
    return blocks, target
