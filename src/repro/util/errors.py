"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library errors with a single
``except`` clause while still letting programming errors (``TypeError`` from
misuse of NumPy, ``KeyError`` from internal bugs, ...) propagate unchanged.

The backend layer additionally splits failures along the *transient vs
fatal* axis that drives the resilience layer
(:mod:`repro.pro.resilience`): a :class:`TransientBackendError` (or any
error for which :func:`is_transient_failure` is true) marks a failure of
the execution substrate -- a crashed rank, a broken barrier, a timed-out
wait -- that a deterministic replay of the epoch can reasonably survive,
while plain :class:`BackendError`\\ s and program exceptions are fatal: the
per-rank streams are rebuilt identically on retry, so a deterministic
program bug would simply fail again.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong sign, wrong shape, wrong total).

    Derives from :class:`ValueError` so that code written against the
    standard library conventions (``except ValueError``) keeps working.
    """


class DistributionError(ReproError):
    """A probability-distribution computation is impossible or inconsistent.

    Examples: asking for the hypergeometric pmf outside of its support in a
    context where that is a logic error, or requesting a communication matrix
    whose row and column marginals do not sum to the same total.
    """


class CommunicationError(ReproError):
    """A message-passing operation on the PRO machine failed.

    Raised for mismatched collective participation, messages that were never
    sent, deadlocks detected through timeouts, or payload size mismatches.

    Fabric waits attach context as plain attributes where they know it:
    ``rank`` (the rank that was waiting), ``op`` (``"recv"`` / ``"barrier"``)
    and ``src`` (the awaited sender, for receives).  Attributes rather than
    constructor arguments so the exception stays trivially picklable across
    the process backend's result queue.
    """

    #: Substrate failures are retry-safe: replaying the epoch with the same
    #: per-rank streams cannot re-trigger a lost message or broken barrier.
    transient = True


class BackendError(ReproError):
    """The selected execution backend cannot run the requested program."""


class TransientBackendError(BackendError):
    """A backend failure that a deterministic epoch replay may survive.

    Raised (instead of the plain, fatal :class:`BackendError`) when the
    root cause of a failed run is itself transient -- a rank that died, a
    communication timeout, an injected fault -- so that
    :class:`~repro.pro.resilience.RetryPolicy` knows the attempt is worth
    repeating.  Subclasses :class:`BackendError`, so existing ``except
    BackendError`` call sites are unaffected.
    """

    transient = True


class DeadlineError(BackendError):
    """A run (or retry sequence) exceeded its wall-clock deadline.

    Deliberately *not* transient: the budget is spent, so neither a retry
    nor a fallback backend is attempted once this is raised.
    """

    transient = False


class RemoteTraceback(ReproError):
    """Carrier for a worker-side traceback that crossed a process boundary.

    The worker formats its traceback as text (the frames themselves are not
    picklable); the parent chains this as the ``__cause__`` of the remote
    exception so a normal ``traceback.print_exception`` of the caller-side
    :class:`BackendError` shows the full remote stack -- the same idiom
    :mod:`concurrent.futures.process` uses.
    """

    def __init__(self, tb: str):
        super().__init__(tb)
        self.tb = tb

    def __str__(self) -> str:
        return f"\n{self.tb}"


def attach_wait_context(exc: BaseException, *, rank=None, op=None, src=None) -> BaseException:
    """Attach rank/op context to a fabric-wait error, without clobbering.

    Fabric ``get``/``barrier_wait`` implementations and the communicator
    call this on the :class:`CommunicationError` they raise so the failed
    wait is attributable (``exc.rank``: who was waiting, ``exc.op``:
    ``"recv"``/``"barrier"``, ``exc.src``: awaited sender).  First writer
    wins -- proxies re-raising an already-annotated error keep its context.
    """
    if rank is not None and getattr(exc, "rank", None) is None:
        exc.rank = rank
    if op is not None and getattr(exc, "op", None) is None:
        exc.op = op
    if src is not None and getattr(exc, "src", None) is None:
        exc.src = src
    return exc


def is_transient_failure(exc: BaseException) -> bool:
    """Whether ``exc`` marks a retry-safe substrate failure.

    True for :class:`CommunicationError` / :class:`TransientBackendError`
    and for any exception carrying a truthy ``transient`` attribute (the
    fault injector's ``InjectedFault`` opts in this way); false for
    everything else, in particular ordinary program exceptions, which a
    deterministic replay would simply reproduce.
    """
    return bool(getattr(exc, "transient", False))


def wrap_rank_failure(rank: int, exc: BaseException) -> BackendError:
    """Build the caller-side error for a rank that failed with ``exc``.

    Shared by every backend's raise site so the error-propagation contract
    (:mod:`repro.pro.backends.registry`) stays uniform: the message keeps
    the historic ``rank N failed: {exc!r}`` shape, the class is
    :class:`TransientBackendError` when the root cause is transient (so
    retry policies can tell substrate failures from program bugs), and a
    worker-side traceback recorded by the process backend's
    ``_portable_exception`` is chained through as a :class:`RemoteTraceback`
    cause of ``exc``.  Callers ``raise wrap_rank_failure(rank, exc) from
    exc`` for plain exceptions and re-raise ``KeyboardInterrupt`` and
    friends unchanged.
    """
    remote = getattr(exc, "remote_traceback", None)
    if remote and exc.__cause__ is None and not exc.__suppress_context__:
        exc.__cause__ = RemoteTraceback(remote)
    cls = TransientBackendError if is_transient_failure(exc) else BackendError
    return cls(f"rank {rank} failed: {exc!r}")
