"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library errors with a single
``except`` clause while still letting programming errors (``TypeError`` from
misuse of NumPy, ``KeyError`` from internal bugs, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong sign, wrong shape, wrong total).

    Derives from :class:`ValueError` so that code written against the
    standard library conventions (``except ValueError``) keeps working.
    """


class DistributionError(ReproError):
    """A probability-distribution computation is impossible or inconsistent.

    Examples: asking for the hypergeometric pmf outside of its support in a
    context where that is a logic error, or requesting a communication matrix
    whose row and column marginals do not sum to the same total.
    """


class CommunicationError(ReproError):
    """A message-passing operation on the PRO machine failed.

    Raised for mismatched collective participation, messages that were never
    sent, deadlocks detected through timeouts, or payload size mismatches.
    """


class BackendError(ReproError):
    """The selected execution backend cannot run the requested program."""
