"""Environment-scaled timeouts for tests and tooling.

Communication timeouts that are perfectly generous on a developer laptop
(tenths of a second) routinely fire on oversubscribed CI runners, where a
forked rank can take longer than that just to get scheduled.  Rather than
inflating every timeout for everybody, the test-suite derives its deadline
values through :func:`scale_timeout`, and slow environments opt in by
setting ``REPRO_TEST_TIMEOUT_FACTOR`` (the CI workflow sets it to 3).

The factor scales *both* sides of a timeout test -- the deadline and the
work that is meant to out-wait it -- so the relative timing invariants of
the tests are preserved.
"""

from __future__ import annotations

import os

__all__ = ["scale_timeout", "timeout_factor"]

#: Environment variable holding the multiplicative timeout factor.
ENV_VAR = "REPRO_TEST_TIMEOUT_FACTOR"


def timeout_factor() -> float:
    """The current timeout multiplier (>= 1.0; malformed values mean 1.0)."""
    raw = os.environ.get(ENV_VAR, "")
    try:
        factor = float(raw)
    except (TypeError, ValueError):
        return 1.0
    return factor if factor >= 1.0 else 1.0


def scale_timeout(seconds: float) -> float:
    """Scale ``seconds`` by ``REPRO_TEST_TIMEOUT_FACTOR`` (default 1)."""
    return float(seconds) * timeout_factor()
