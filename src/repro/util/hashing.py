"""Order-sensitive fingerprints and ranking of permutations.

Uniformity tests need to map each observed permutation of ``{0, ..., n-1}``
to a bucket.  For small ``n`` we use the *Lehmer code* rank, which is a
bijection between permutations and ``{0, ..., n!-1}``; for large ``n`` (where
``n!`` overflows anything) we fall back to a 64-bit polynomial fingerprint
which is adequate for collision testing and for detecting accidental
determinism across runs.
"""

from __future__ import annotations

from math import factorial
from typing import Sequence

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["permutation_fingerprint", "lehmer_rank", "lehmer_unrank", "is_permutation"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def is_permutation(values: Sequence[int]) -> bool:
    """Return True when ``values`` is a permutation of ``0..len(values)-1``."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        return False
    n = arr.size
    if n == 0:
        return True
    if arr.dtype.kind not in "iu":
        return False
    seen = np.zeros(n, dtype=bool)
    if arr.min() < 0 or arr.max() >= n:
        return False
    seen[arr] = True
    return bool(seen.all())


def permutation_fingerprint(values: Sequence[int]) -> int:
    """Return a 64-bit order-sensitive FNV-1a style fingerprint of ``values``.

    Two different orderings of the same multiset get different fingerprints
    with overwhelming probability; equal sequences always hash equal.
    """
    h = _FNV_OFFSET
    for v in np.asarray(values, dtype=np.int64).tolist():
        # mix the 8 bytes of the value
        x = v & _MASK64
        for _ in range(8):
            h ^= x & 0xFF
            h = (h * _FNV_PRIME) & _MASK64
            x >>= 8
    return h


def lehmer_rank(perm: Sequence[int]) -> int:
    """Rank a permutation of ``0..n-1`` into ``0..n!-1`` via its Lehmer code.

    The identity permutation has rank 0; the reverse permutation has rank
    ``n! - 1``.  Quadratic in ``n``; intended only for the small ``n`` used by
    exhaustive uniformity tests.
    """
    arr = list(np.asarray(perm, dtype=np.int64))
    n = len(arr)
    if not is_permutation(arr):
        raise ValidationError(f"lehmer_rank expects a permutation of 0..n-1, got {perm!r}")
    rank = 0
    for i in range(n):
        smaller_later = sum(1 for j in range(i + 1, n) if arr[j] < arr[i])
        rank += smaller_later * factorial(n - 1 - i)
    return rank


def lehmer_unrank(rank: int, n: int) -> np.ndarray:
    """Inverse of :func:`lehmer_rank`: build the permutation with the given rank."""
    if not (0 <= rank < factorial(n)):
        raise ValidationError(f"rank must be in [0, {n}!), got {rank}")
    available = list(range(n))
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        f = factorial(n - 1 - i)
        idx, rank = divmod(rank, f)
        out[i] = available.pop(idx)
    return out
