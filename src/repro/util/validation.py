"""Argument-validation helpers.

Every public entry point of the library validates its inputs through these
helpers so that error messages are uniform and informative.  The helpers
return the validated (and possibly converted) value so they can be used in a
fluent style::

    m = check_vector_of_nonnegative_ints(m, "m")
    p = check_positive_int(p, "p")
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.util.errors import ValidationError

__all__ = [
    "check_nonnegative_int",
    "check_positive_int",
    "check_probability",
    "check_vector_of_nonnegative_ints",
    "check_same_total",
    "check_in_range",
    "as_int_array",
]


def check_nonnegative_int(value, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 0`` and return it as ``int``.

    NumPy integer scalars are accepted; floats are accepted only when they
    are exactly integral (``3.0`` is fine, ``3.5`` is not).
    """
    try:
        as_int = int(value)
    except (TypeError, ValueError) as exc:  # non numeric
        raise ValidationError(f"{name} must be an integer, got {value!r}") from exc
    if isinstance(value, float) and value != as_int:
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, (np.floating,)) and float(value) != as_int:
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if as_int < 0:
        raise ValidationError(f"{name} must be >= 0, got {as_int}")
    return as_int


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 1`` and return it as ``int``."""
    as_int = check_nonnegative_int(value, name)
    if as_int == 0:
        raise ValidationError(f"{name} must be >= 1, got 0")
    return as_int


def check_probability(value, name: str) -> float:
    """Validate that ``value`` is a float in ``[0, 1]`` and return it."""
    try:
        as_float = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value!r}") from exc
    if not (0.0 <= as_float <= 1.0) or np.isnan(as_float):
        raise ValidationError(f"{name} must be a probability in [0, 1], got {as_float!r}")
    return as_float


def as_int_array(values: Iterable, name: str) -> np.ndarray:
    """Convert ``values`` to a 1-D ``int64`` array, rejecting non-integral input."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be a 1-D sequence, got shape {arr.shape}")
    if arr.size == 0:
        return arr.astype(np.int64)
    if arr.dtype.kind == "f":
        if not np.all(arr == np.floor(arr)):
            raise ValidationError(f"{name} must contain integers, got {arr!r}")
        arr = arr.astype(np.int64)
    elif arr.dtype.kind not in "iu":
        raise ValidationError(f"{name} must contain integers, got dtype {arr.dtype}")
    return arr.astype(np.int64)


def check_vector_of_nonnegative_ints(values: Iterable, name: str) -> np.ndarray:
    """Validate a vector of non-negative integers, returning an ``int64`` array."""
    arr = as_int_array(values, name)
    if arr.size and arr.min() < 0:
        raise ValidationError(f"{name} must be >= 0 elementwise, got min {arr.min()}")
    return arr


def check_same_total(left: Sequence, right: Sequence, left_name: str, right_name: str) -> int:
    """Validate ``sum(left) == sum(right)`` and return the common total.

    Used for the communication-matrix marginals, where the source block sizes
    and target block sizes must describe the same number of items
    (equation (1) of the paper).
    """
    left_arr = check_vector_of_nonnegative_ints(left, left_name)
    right_arr = check_vector_of_nonnegative_ints(right, right_name)
    left_total = int(left_arr.sum())
    right_total = int(right_arr.sum())
    if left_total != right_total:
        raise ValidationError(
            f"sum({left_name}) == {left_total} but sum({right_name}) == {right_total}; "
            "the source and target layouts must hold the same number of items"
        )
    return left_total


def check_in_range(value, low, high, name: str):
    """Validate ``low <= value <= high`` (inclusive bounds)."""
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
