"""Plain-text and Markdown table rendering.

The benchmark harness, the examples and ``EXPERIMENTS.md`` generation all
print small tables of results.  These helpers avoid a dependency on external
formatting libraries and keep the output stable (useful for doc tests and for
diffing benchmark logs).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def _normalise(headers: Sequence[str], rows: Iterable[Sequence]) -> tuple[list[str], list[list[str]]]:
    header_strs = [str(h) for h in headers]
    row_strs = [[_stringify(c) for c in row] for row in rows]
    width = len(header_strs)
    for row in row_strs:
        if len(row) != width:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {width}")
    return header_strs, row_strs


def format_table(headers: Sequence[str], rows: Iterable[Sequence], *, title: str | None = None) -> str:
    """Render an aligned, plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; every row must have ``len(headers)`` cells.  Floats
        are rendered with 4 significant digits.
    title:
        Optional title printed above the table.

    Returns
    -------
    str
        The rendered table (no trailing newline).
    """
    header_strs, row_strs = _normalise(headers, rows)
    widths = [len(h) for h in header_strs]
    for row in row_strs:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(header_strs))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in row_strs)
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a GitHub-flavoured Markdown table (used for ``EXPERIMENTS.md``)."""
    header_strs, row_strs = _normalise(headers, rows)
    lines = ["| " + " | ".join(header_strs) + " |", "|" + "|".join("---" for _ in header_strs) + "|"]
    lines.extend("| " + " | ".join(row) + " |" for row in row_strs)
    return "\n".join(lines)
