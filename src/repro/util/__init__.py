"""Utility helpers shared across the :mod:`repro` package.

The utilities are intentionally small and dependency free (NumPy only):

* :mod:`repro.util.errors` -- the exception hierarchy used by the library.
* :mod:`repro.util.validation` -- argument checking helpers that raise
  consistent, descriptive errors.
* :mod:`repro.util.tables` -- plain-text table rendering used by the
  benchmark harness and the examples.
* :mod:`repro.util.hashing` -- order-sensitive hashing of integer sequences,
  used to fingerprint permutations in tests and statistics.
* :mod:`repro.util.timeouts` -- environment-scaled timeouts
  (``REPRO_TEST_TIMEOUT_FACTOR``) so slow CI runners can stretch the
  test-suite's communication deadlines without editing the tests.
"""

from repro.util.errors import (
    ReproError,
    ValidationError,
    DistributionError,
    CommunicationError,
    BackendError,
)
from repro.util.validation import (
    check_nonnegative_int,
    check_positive_int,
    check_probability,
    check_vector_of_nonnegative_ints,
    check_same_total,
)
from repro.util.tables import format_table, format_markdown_table
from repro.util.hashing import permutation_fingerprint, lehmer_rank, lehmer_unrank
from repro.util.timeouts import scale_timeout, timeout_factor

__all__ = [
    "ReproError",
    "ValidationError",
    "DistributionError",
    "CommunicationError",
    "BackendError",
    "check_nonnegative_int",
    "check_positive_int",
    "check_probability",
    "check_vector_of_nonnegative_ints",
    "check_same_total",
    "format_table",
    "format_markdown_table",
    "permutation_fingerprint",
    "lehmer_rank",
    "lehmer_unrank",
    "scale_timeout",
    "timeout_factor",
]
