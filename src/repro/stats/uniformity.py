"""Uniformity tests for permutation samplers.

Theorem 1 claims the parallel algorithm samples *uniformly* from the ``n!``
permutations.  For small ``n`` this can be tested exhaustively by ranking
every observed permutation (Lehmer code) and chi-square testing the counts
against the uniform distribution; for larger ``n`` we fall back to
consequences of uniformity that aggregate over many items:

* every item is equally likely to land on every position (occupancy test);
* the number of fixed points has mean 1 and variance 1;
* the number of inversions has mean ``n(n-1)/4`` and variance
  ``n(n-1)(2n+5)/72``.

The tests take a *sampler*: any callable ``sampler() -> permutation array``.
They are deliberately agnostic about where the permutation comes from so the
same code validates Algorithm 1, the baselines (where some are expected to
fail) and NumPy's own shuffler (as a sanity oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial
from typing import Callable

import numpy as np
from scipy import stats as scipy_stats

from repro.util.errors import ValidationError
from repro.util.hashing import is_permutation, lehmer_rank
from repro.util.validation import check_positive_int

__all__ = [
    "GoodnessOfFitResult",
    "chi_square_permutation_uniformity",
    "position_occupancy_test",
    "fixed_points_summary",
    "inversions_summary",
]


@dataclass
class GoodnessOfFitResult:
    """Outcome of a chi-square goodness-of-fit test."""

    statistic: float
    degrees_of_freedom: int
    p_value: float
    n_samples: int
    detail: str = ""

    def rejects_uniformity(self, alpha: float = 0.001) -> bool:
        """True when the test rejects the null hypothesis at level ``alpha``."""
        return self.p_value < alpha


def _collect(sampler: Callable[[], np.ndarray], n_samples: int, expected_n: int | None = None) -> list[np.ndarray]:
    perms = []
    for _ in range(n_samples):
        perm = np.asarray(sampler())
        if not is_permutation(perm):
            raise ValidationError(
                f"sampler returned something that is not a permutation of 0..n-1: {perm!r}"
            )
        if expected_n is not None and perm.size != expected_n:
            raise ValidationError(
                f"sampler returned a permutation of size {perm.size}, expected {expected_n}"
            )
        perms.append(perm)
    return perms


def chi_square_permutation_uniformity(
    sampler: Callable[[], np.ndarray],
    n: int,
    n_samples: int,
) -> GoodnessOfFitResult:
    """Exhaustive uniformity test over all ``n!`` permutations (small ``n``).

    Draws ``n_samples`` permutations of ``0..n-1`` from ``sampler``, ranks
    each one and chi-square tests the rank counts against the uniform
    distribution on ``{0, ..., n!-1}``.  ``n`` above 8 is rejected (40320
    cells already require hundreds of thousands of samples).
    """
    n = check_positive_int(n, "n")
    if n > 8:
        raise ValidationError("the exhaustive test is limited to n <= 8; use the occupancy test instead")
    n_cells = factorial(n)
    n_samples = check_positive_int(n_samples, "n_samples")
    counts = np.zeros(n_cells, dtype=np.int64)
    for perm in _collect(sampler, n_samples, expected_n=n):
        counts[lehmer_rank(perm)] += 1
    expected = n_samples / n_cells
    statistic = float(((counts - expected) ** 2 / expected).sum())
    dof = n_cells - 1
    p_value = float(scipy_stats.chi2.sf(statistic, dof))
    return GoodnessOfFitResult(
        statistic=statistic,
        degrees_of_freedom=dof,
        p_value=p_value,
        n_samples=n_samples,
        detail=f"exhaustive test over {n_cells} permutations of {n} items",
    )


def position_occupancy_test(
    sampler: Callable[[], np.ndarray],
    n: int,
    n_samples: int,
) -> GoodnessOfFitResult:
    """Test that every item lands on every position equally often.

    Builds the ``n x n`` occupancy matrix ``C[item, position]`` over
    ``n_samples`` draws and tests it against the uniform expectation
    ``n_samples / n`` per cell.  This is a *necessary* condition for
    uniformity that remains testable for moderate ``n``.

    Calibration note: for sums of independent uniform permutation matrices
    the raw Pearson statistic ``sum (O - E)^2 / E`` is asymptotically
    ``n/(n-1)`` times a chi-square with ``(n - 1)^2`` degrees of freedom
    (both margins are fixed *within every sample*, and the covariance of a
    permutation matrix on the interaction space has eigenvalue ``1/(n-1)``,
    not ``1/n``).  The statistic is therefore rescaled by ``(n-1)/n`` before
    the chi-square tail is evaluated; without this correction the test
    over-rejects correct samplers by a factor of a few.
    """
    n = check_positive_int(n, "n")
    n_samples = check_positive_int(n_samples, "n_samples")
    occupancy = np.zeros((n, n), dtype=np.int64)
    for perm in _collect(sampler, n_samples, expected_n=n):
        # perm[pos] = item sitting at position pos after the permutation
        occupancy[perm, np.arange(n)] += 1
    expected = n_samples / n
    raw_statistic = float(((occupancy - expected) ** 2 / expected).sum())
    statistic = raw_statistic * (n - 1) / n if n > 1 else 0.0
    dof = (n - 1) ** 2
    p_value = float(scipy_stats.chi2.sf(statistic, dof)) if dof > 0 else 1.0
    return GoodnessOfFitResult(
        statistic=statistic,
        degrees_of_freedom=dof,
        p_value=p_value,
        n_samples=n_samples,
        detail=f"{n}x{n} item/position occupancy",
    )


@dataclass
class MomentSummary:
    """Observed vs expected mean of a permutation statistic, with a z-score."""

    observed_mean: float
    expected_mean: float
    expected_std_of_mean: float
    n_samples: int

    @property
    def z_score(self) -> float:
        """Standardised deviation of the observed mean from its expectation."""
        if self.expected_std_of_mean == 0:
            return 0.0
        return (self.observed_mean - self.expected_mean) / self.expected_std_of_mean

    @property
    def p_value(self) -> float:
        """Two-sided normal p-value of the z-score."""
        return float(2 * scipy_stats.norm.sf(abs(self.z_score)))


def fixed_points_summary(sampler: Callable[[], np.ndarray], n: int, n_samples: int) -> MomentSummary:
    """Mean number of fixed points vs the uniform expectation of exactly 1."""
    n = check_positive_int(n, "n")
    n_samples = check_positive_int(n_samples, "n_samples")
    values = []
    positions = np.arange(n)
    for perm in _collect(sampler, n_samples, expected_n=n):
        values.append(int(np.sum(perm == positions)))
    observed = float(np.mean(values))
    # For a uniform permutation the number of fixed points has mean 1 and
    # variance 1 (for n >= 2).
    variance = 1.0 if n >= 2 else 0.0
    return MomentSummary(
        observed_mean=observed,
        expected_mean=1.0 if n >= 1 else 0.0,
        expected_std_of_mean=float(np.sqrt(variance / n_samples)),
        n_samples=n_samples,
    )


def inversions_summary(sampler: Callable[[], np.ndarray], n: int, n_samples: int) -> MomentSummary:
    """Mean number of inversions vs the uniform expectation ``n(n-1)/4``."""
    n = check_positive_int(n, "n")
    n_samples = check_positive_int(n_samples, "n_samples")
    values = []
    for perm in _collect(sampler, n_samples, expected_n=n):
        comparison = perm[:, None] > perm[None, :]
        values.append(int(np.triu(comparison, k=1).sum()))
    observed = float(np.mean(values))
    expected = n * (n - 1) / 4
    variance = n * (n - 1) * (2 * n + 5) / 72
    return MomentSummary(
        observed_mean=observed,
        expected_mean=expected,
        expected_std_of_mean=float(np.sqrt(variance / n_samples)),
        n_samples=n_samples,
    )
