"""Goodness-of-fit tests for the hypergeometric samplers.

These tests compare empirical samples against the exact pmfs of
:mod:`repro.core.hypergeometric` and :mod:`repro.core.multivariate`.  Cells
whose expected count falls below a threshold are merged into their neighbour
so the chi-square approximation stays valid.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from repro.core import hypergeometric
from repro.stats.uniformity import GoodnessOfFitResult
from repro.util.errors import ValidationError
from repro.util.validation import check_positive_int, check_vector_of_nonnegative_ints

__all__ = ["chi_square_hypergeometric", "chi_square_multivariate_marginals", "merge_small_cells"]


def merge_small_cells(observed: np.ndarray, expected: np.ndarray, min_expected: float = 5.0):
    """Merge adjacent cells until every expected count is at least ``min_expected``.

    Returns the merged ``(observed, expected)`` arrays.  Cells are merged
    left to right; a trailing under-populated cell is merged into its left
    neighbour.  Raises when fewer than two cells survive.
    """
    if observed.shape != expected.shape:
        raise ValidationError("observed and expected must have the same shape")
    merged_obs: list[float] = []
    merged_exp: list[float] = []
    acc_obs = 0.0
    acc_exp = 0.0
    for obs, exp in zip(observed, expected):
        acc_obs += float(obs)
        acc_exp += float(exp)
        if acc_exp >= min_expected:
            merged_obs.append(acc_obs)
            merged_exp.append(acc_exp)
            acc_obs = 0.0
            acc_exp = 0.0
    if acc_exp > 0:
        if merged_exp:
            merged_obs[-1] += acc_obs
            merged_exp[-1] += acc_exp
        else:
            merged_obs.append(acc_obs)
            merged_exp.append(acc_exp)
    if len(merged_exp) < 2:
        raise ValidationError(
            "not enough probability mass to form two cells; draw more samples "
            "or use less extreme parameters"
        )
    return np.asarray(merged_obs), np.asarray(merged_exp)


def chi_square_hypergeometric(samples, t: int, w: int, b: int, *, min_expected: float = 5.0) -> GoodnessOfFitResult:
    """Chi-square test of samples against the exact ``h(t, w, b)`` pmf."""
    samples = np.asarray(samples, dtype=np.int64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValidationError("samples must be a non-empty 1-D array")
    lo, hi = hypergeometric.support(t, w, b)
    if samples.min() < lo or samples.max() > hi:
        raise ValidationError(
            f"samples outside the support [{lo}, {hi}] of h({t}, {w}, {b})"
        )
    values = np.arange(lo, hi + 1)
    expected_probs = np.array([hypergeometric.pmf(int(k), t, w, b) for k in values])
    observed = np.array([(samples == k).sum() for k in values], dtype=float)
    expected = expected_probs * samples.size
    observed_m, expected_m = merge_small_cells(observed, expected, min_expected)
    # Renormalise the tiny probability mass lost to the merge.
    expected_m *= observed_m.sum() / expected_m.sum()
    statistic = float(((observed_m - expected_m) ** 2 / expected_m).sum())
    dof = len(observed_m) - 1
    return GoodnessOfFitResult(
        statistic=statistic,
        degrees_of_freedom=dof,
        p_value=float(scipy_stats.chi2.sf(statistic, dof)),
        n_samples=int(samples.size),
        detail=f"h(t={t}, w={w}, b={b})",
    )


def chi_square_multivariate_marginals(
    samples,
    n_draws: int,
    class_sizes,
    *,
    min_expected: float = 5.0,
) -> list[GoodnessOfFitResult]:
    """Per-class chi-square tests of multivariate hypergeometric samples.

    The marginal of class ``i`` is ``h(n_draws, m'_i, n - m'_i)``; each class
    gets its own test.  ``samples`` has shape ``(n_samples, n_classes)``.
    """
    class_sizes = check_vector_of_nonnegative_ints(class_sizes, "class_sizes")
    n_draws = check_positive_int(n_draws, "n_draws")
    arr = np.asarray(samples, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != class_sizes.size:
        raise ValidationError(
            f"samples must have shape (n_samples, {class_sizes.size}), got {arr.shape}"
        )
    total = int(class_sizes.sum())
    results = []
    for i, size in enumerate(class_sizes.tolist()):
        results.append(
            chi_square_hypergeometric(
                arr[:, i], n_draws, size, total - size, min_expected=min_expected
            )
        )
    return results
