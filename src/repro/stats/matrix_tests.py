"""Goodness-of-fit tests for the communication-matrix law.

Problem 2 requires the sampled matrix to follow *exactly* the distribution a
uniform permutation induces.  Three complementary checks:

* :func:`chi_square_matrix_law` -- exhaustive test against the exact pmf of
  :mod:`repro.core.matrix_distribution` (small marginals only, where the set
  of admissible matrices can be enumerated);
* :func:`entry_marginal_test` -- Proposition 3: each entry ``a_ij`` is
  hypergeometric ``h(m'_j, m_i, n - m_i)``; works for any size;
* :func:`merged_matrix_test` -- Proposition 4: merging rows/columns of the
  samples must reproduce the law of the merged problem; verified through the
  marginal law of the merged entries.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.core import matrix_distribution
from repro.stats.hypergeom_tests import chi_square_hypergeometric
from repro.stats.uniformity import GoodnessOfFitResult
from repro.util.errors import ValidationError
from repro.util.validation import check_positive_int, check_vector_of_nonnegative_ints

__all__ = ["chi_square_matrix_law", "entry_marginal_test", "merged_matrix_test"]


def chi_square_matrix_law(
    matrix_sampler: Callable[[], np.ndarray],
    row_sums,
    col_sums,
    n_samples: int,
    *,
    min_expected: float = 5.0,
) -> GoodnessOfFitResult:
    """Exhaustive chi-square test of a matrix sampler against the exact law.

    ``matrix_sampler`` is called ``n_samples`` times; each returned matrix is
    binned by its byte representation and the counts are tested against the
    exact probabilities.  Matrices with expected count below ``min_expected``
    are pooled into a single cell.
    """
    rows = check_vector_of_nonnegative_ints(row_sums, "row_sums")
    cols = check_vector_of_nonnegative_ints(col_sums, "col_sums")
    n_samples = check_positive_int(n_samples, "n_samples")

    exact = matrix_distribution.exact_distribution(rows, cols)
    counts: dict[bytes, int] = {key: 0 for key in exact}
    for _ in range(n_samples):
        matrix = np.asarray(matrix_sampler(), dtype=np.int64)
        key = matrix.tobytes()
        if key not in counts:
            raise ValidationError(
                "the sampler produced a matrix outside the admissible set "
                f"(marginals {rows.tolist()} / {cols.tolist()}):\n{matrix}"
            )
        counts[key] += 1

    observed_main, expected_main = [], []
    pooled_obs, pooled_exp = 0.0, 0.0
    for key, prob in exact.items():
        expected = prob * n_samples
        if expected < min_expected:
            pooled_obs += counts[key]
            pooled_exp += expected
        else:
            observed_main.append(counts[key])
            expected_main.append(expected)
    if pooled_exp > 0:
        observed_main.append(pooled_obs)
        expected_main.append(pooled_exp)
    observed_arr = np.asarray(observed_main, dtype=float)
    expected_arr = np.asarray(expected_main, dtype=float)
    statistic = float(((observed_arr - expected_arr) ** 2 / expected_arr).sum())
    dof = len(observed_arr) - 1
    return GoodnessOfFitResult(
        statistic=statistic,
        degrees_of_freedom=dof,
        p_value=float(scipy_stats.chi2.sf(statistic, dof)),
        n_samples=n_samples,
        detail=f"exact matrix law, {len(exact)} admissible matrices",
    )


def entry_marginal_test(
    matrices: Sequence[np.ndarray],
    i: int,
    j: int,
    row_sums,
    col_sums,
    *,
    min_expected: float = 5.0,
) -> GoodnessOfFitResult:
    """Test Proposition 3 on entry ``(i, j)`` of a batch of sampled matrices."""
    if len(matrices) == 0:
        raise ValidationError("entry_marginal_test needs at least one matrix")
    samples = np.asarray([np.asarray(m)[i, j] for m in matrices], dtype=np.int64)
    t, w, b = matrix_distribution.entry_distribution(i, j, row_sums, col_sums)
    return chi_square_hypergeometric(samples, t, w, b, min_expected=min_expected)


def merged_matrix_test(
    matrices: Sequence[np.ndarray],
    row_groups: Sequence[Sequence[int]],
    col_groups: Sequence[Sequence[int]],
    row_sums,
    col_sums,
    *,
    entry: tuple[int, int] = (0, 0),
    min_expected: float = 5.0,
) -> GoodnessOfFitResult:
    """Test Proposition 4: merged samples follow the merged problem's law.

    Merges every sampled matrix by ``row_groups``/``col_groups`` and applies
    the marginal test of Proposition 3 to ``entry`` of the merged matrix,
    whose law is the hypergeometric of the merged marginals.
    """
    rows = check_vector_of_nonnegative_ints(row_sums, "row_sums")
    cols = check_vector_of_nonnegative_ints(col_sums, "col_sums")
    merged_rows = np.asarray([int(rows[list(group)].sum()) for group in row_groups], dtype=np.int64)
    merged_cols = np.asarray([int(cols[list(group)].sum()) for group in col_groups], dtype=np.int64)
    merged_samples = [
        matrix_distribution.merge_blocks(m, row_groups, col_groups) for m in matrices
    ]
    return entry_marginal_test(
        merged_samples, entry[0], entry[1], merged_rows, merged_cols, min_expected=min_expected
    )
