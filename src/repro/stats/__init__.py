"""Statistical validation of the library's samplers.

The correctness claims of the paper are distributional ("every permutation
appears equally likely", "the matrix follows the law induced by a uniform
permutation"), so beyond deterministic unit tests the reproduction needs
statistical machinery:

* :mod:`repro.stats.uniformity` -- chi-square tests over the full permutation
  space (small ``n``), per-position occupancy tests, and classic permutation
  statistics (fixed points, inversions) usable at any scale;
* :mod:`repro.stats.hypergeom_tests` -- goodness-of-fit of the univariate and
  multivariate hypergeometric samplers against their exact pmfs;
* :mod:`repro.stats.matrix_tests` -- goodness-of-fit of sampled communication
  matrices against the exact law of
  :mod:`repro.core.matrix_distribution`, plus marginal (Proposition 3) and
  self-similarity (Proposition 4) checks.

All tests return plain result objects with a ``p_value``; the test-suite and
the uniformity benchmark decide what threshold to apply.
"""

from repro.stats.uniformity import (
    GoodnessOfFitResult,
    chi_square_permutation_uniformity,
    position_occupancy_test,
    fixed_points_summary,
    inversions_summary,
)
from repro.stats.hypergeom_tests import (
    chi_square_hypergeometric,
    chi_square_multivariate_marginals,
)
from repro.stats.matrix_tests import (
    chi_square_matrix_law,
    entry_marginal_test,
    merged_matrix_test,
)

__all__ = [
    "GoodnessOfFitResult",
    "chi_square_permutation_uniformity",
    "position_occupancy_test",
    "fixed_points_summary",
    "inversions_summary",
    "chi_square_hypergeometric",
    "chi_square_multivariate_marginals",
    "chi_square_matrix_law",
    "entry_marginal_test",
    "merged_matrix_test",
]
