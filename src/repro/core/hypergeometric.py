"""The (univariate) hypergeometric distribution ``h(t, w, b)``.

Section 3 of the paper reduces the whole matrix-sampling problem to repeated
sampling from the hypergeometric distribution

.. math::

   P[X_{t,w,b} = k] \\;=\\; \\frac{\\binom{w}{k}\\binom{b}{t-k}}{\\binom{w+b}{t}},

the law of the number of white balls when ``t`` balls are drawn without
replacement from an urn containing ``w`` white and ``b`` black balls.  The
paper's convention ``h(t, w, b)`` (draws, whites, blacks) is kept throughout
this module.

Three samplers are provided:

``sample_hin``
    The classic sequential/inverse method ("HIN"): draws one uniform per
    ball until the sample is exhausted.  Cheap for tiny ``t`` (or tiny
    ``min(w, b)``), linear otherwise.

``sample_hrua``
    The HRUA* ratio-of-uniforms rejection sampler of Stadlober/Zechner --
    the method the paper cites (Zechner 1994) for its "< 1.5 uniforms per
    sample on average, 10 worst case" measurement.  Constant expected cost
    independent of the parameters.

``sample``
    Automatic dispatch (HIN when the transformed sample size is below 10,
    HRUA* otherwise), mirroring the strategy of production libraries.

All samplers accept either a plain NumPy ``Generator`` or a
:class:`~repro.rng.counting.CountingRNG`; with the latter the exact number
of uniform variates consumed can be read back, which is how experiment E2
reproduces the paper's measurement.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from functools import lru_cache
from math import floor, lgamma, log, sqrt

import numpy as np

from repro.rng.streams import default_rng
from repro.util.errors import ValidationError
from repro.util.validation import check_nonnegative_int

__all__ = [
    "support",
    "log_pmf",
    "pmf",
    "mean",
    "variance",
    "mode",
    "sample",
    "sample_hin",
    "sample_hrua",
    "sample_many",
    "sample_with_stats",
    "HypergeometricSampleStats",
    "SampleRecorder",
]

# Constants of the HRUA* method (Stadlober 1989/1990, Zechner 1994):
# 2*sqrt(2/e) and 3 - 2*sqrt(3/e), accurate to 16 decimal digits.
_D1 = 1.7155277699214135
_D2 = 0.8989161620588988

# The HIN-vs-HRUA* selection threshold lives in repro.core.engine
# (SamplerEngine.hin_threshold), the single owner of method dispatch.

# Thread-local stack of active SampleRecorder instances (see SampleRecorder).
_RECORDERS = threading.local()


class SampleRecorder:
    """Record, per call to :func:`sample`, how many uniforms were consumed.

    The paper's Section 6 reports random-number consumption *per call to
    h(,)* over whole matrix-sampling runs.  Because those calls happen deep
    inside Algorithm 2/3/5/6, the recorder is exposed as a context manager
    that hooks every :func:`sample` call made on the current thread::

        rng = CountingRNG(12345)
        with SampleRecorder() as rec:
            sample_communication_matrix(m, m_prime, rng=rng)
        print(rec.mean_uniforms, rec.max_uniforms)

    Uniform counts are only available when the caller supplies a
    :class:`~repro.rng.counting.CountingRNG`; with a plain generator the
    recorder still counts calls but reports zero uniforms.
    """

    def __init__(self, keep_per_call: bool = False):
        self.n_calls = 0
        self.total_uniforms = 0
        self.max_uniforms = 0
        self.per_call: list[int] | None = [] if keep_per_call else None

    # -- bookkeeping ---------------------------------------------------------
    def record(self, uniforms_used: int) -> None:
        """Register one completed sample() call that used ``uniforms_used`` uniforms."""
        self.n_calls += 1
        self.total_uniforms += int(uniforms_used)
        self.max_uniforms = max(self.max_uniforms, int(uniforms_used))
        if self.per_call is not None:
            self.per_call.append(int(uniforms_used))

    @property
    def mean_uniforms(self) -> float:
        """Average uniforms per h(,) call (0.0 before any call)."""
        return self.total_uniforms / self.n_calls if self.n_calls else 0.0

    # -- context manager --------------------------------------------------------
    def __enter__(self) -> "SampleRecorder":
        stack = getattr(_RECORDERS, "stack", None)
        if stack is None:
            stack = []
            _RECORDERS.stack = stack
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _RECORDERS.stack.pop()


def _active_recorder() -> "SampleRecorder | None":
    stack = getattr(_RECORDERS, "stack", None)
    return stack[-1] if stack else None


# ----------------------------------------------------------------------------
# Exact quantities
# ----------------------------------------------------------------------------
def _validate_parameters(t: int, w: int, b: int) -> tuple[int, int, int]:
    t = check_nonnegative_int(t, "t (number of draws)")
    w = check_nonnegative_int(w, "w (white balls)")
    b = check_nonnegative_int(b, "b (black balls)")
    if t > w + b:
        raise ValidationError(
            f"cannot draw t={t} balls from an urn with only w+b={w + b} balls"
        )
    return t, w, b


def support(t: int, w: int, b: int) -> tuple[int, int]:
    """Inclusive support ``[max(0, t-b), min(t, w)]`` of ``h(t, w, b)``."""
    t, w, b = _validate_parameters(t, w, b)
    return max(0, t - b), min(t, w)


@lru_cache(maxsize=65536)
def _log_binomial(n: int, k: int) -> float:
    # Memoized: pmf sweeps and log_pmf-based tests hit the same (n, k)
    # pairs repeatedly, and each miss costs three lgamma evaluations.
    if k < 0 or k > n:
        return float("-inf")
    return lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)


def log_pmf(k: int, t: int, w: int, b: int) -> float:
    """Natural log of ``P[X = k]`` for ``X ~ h(t, w, b)``; ``-inf`` outside the support."""
    t, w, b = _validate_parameters(t, w, b)
    k = int(k)
    lo, hi = max(0, t - b), min(t, w)
    if k < lo or k > hi:
        return float("-inf")
    return _log_binomial(w, k) + _log_binomial(b, t - k) - _log_binomial(w + b, t)


def pmf(k: int, t: int, w: int, b: int) -> float:
    """``P[X = k]`` for ``X ~ h(t, w, b)`` (equation (4) of the paper)."""
    lp = log_pmf(k, t, w, b)
    return 0.0 if lp == float("-inf") else float(np.exp(lp))


def mean(t: int, w: int, b: int) -> float:
    """Expectation ``t * w / (w + b)`` of ``h(t, w, b)``."""
    t, w, b = _validate_parameters(t, w, b)
    n = w + b
    return 0.0 if n == 0 else t * w / n


def variance(t: int, w: int, b: int) -> float:
    """Variance ``t * (w/n) * (b/n) * (n-t)/(n-1)`` of ``h(t, w, b)``."""
    t, w, b = _validate_parameters(t, w, b)
    n = w + b
    if n <= 1:
        return 0.0
    return t * (w / n) * (b / n) * (n - t) / (n - 1)


def mode(t: int, w: int, b: int) -> int:
    """A mode of ``h(t, w, b)``: ``floor((t+1)(w+1)/(n+2))`` clipped to the support."""
    t, w, b = _validate_parameters(t, w, b)
    n = w + b
    raw = int(floor((t + 1) * (w + 1) / (n + 2)))
    lo, hi = max(0, t - b), min(t, w)
    return min(max(raw, lo), hi)


# ----------------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------------
def _trivial_sample(t: int, w: int, b: int):
    """Return the deterministic outcome for degenerate parameters, else None."""
    if t == 0 or w == 0:
        return 0
    if b == 0:
        return t
    if t == w + b:
        return w
    return None


def sample_hin(t: int, w: int, b: int, rng=None) -> int:
    """Inverse/sequential sampler ("HIN").

    Simulates the draw sequence directly, consuming at most ``t`` uniforms
    (one per draw, stopping early once the smaller colour class is
    exhausted).  Intended for small ``t``; :func:`sample` switches to it
    automatically below the threshold.
    """
    t, w, b = _validate_parameters(t, w, b)
    trivial = _trivial_sample(t, w, b)
    if trivial is not None:
        return trivial
    rng = default_rng(rng) if not hasattr(rng, "random") else rng

    good, bad, draws = w, b, t
    d1 = bad + good - draws
    d2 = float(min(bad, good))

    y = d2
    k = draws
    while y > 0.0:
        u = rng.random()
        y -= float(floor(u + y / (d1 + k)))
        k -= 1
        if k == 0:
            break
    z = int(d2 - y)
    if good > bad:
        z = draws - z
    return z


def sample_hrua(t: int, w: int, b: int, rng=None) -> int:
    """HRUA* ratio-of-uniforms rejection sampler (Stadlober/Zechner).

    Expected number of uniform pairs per sample is bounded by a small
    constant for all parameter values (empirically < 1.5 uniform *pairs*
    would be impossible -- the paper's "< 1.5 random numbers" average counts
    the amortised cost over the whole matrix computation where most calls
    are degenerate or small; see ``benchmarks/bench_randoms_per_sample.py``
    for the reproduction).

    Requires a non-degenerate urn; :func:`sample` handles the trivial cases
    before dispatching here.
    """
    t, w, b = _validate_parameters(t, w, b)
    trivial = _trivial_sample(t, w, b)
    if trivial is not None:
        return trivial
    rng = default_rng(rng) if not hasattr(rng, "random") else rng

    good, bad, draws = w, b, t
    popsize = good + bad
    mingoodbad = min(good, bad)
    maxgoodbad = max(good, bad)
    m = min(draws, popsize - draws)

    d4 = mingoodbad / popsize
    d5 = 1.0 - d4
    d6 = m * d4 + 0.5
    d7 = sqrt((popsize - m) * draws * d4 * d5 / (popsize - 1) + 0.5)
    d8 = _D1 * d7 + _D2
    d9 = int(floor((m + 1) * (mingoodbad + 1) / (popsize + 2)))
    d10 = (
        lgamma(d9 + 1)
        + lgamma(mingoodbad - d9 + 1)
        + lgamma(m - d9 + 1)
        + lgamma(maxgoodbad - m + d9 + 1)
    )
    d11 = min(min(m, mingoodbad) + 1.0, floor(d6 + 16 * d7))

    while True:
        x = rng.random()
        y = rng.random()
        wv = d6 + d8 * (y - 0.5) / x

        if wv < 0.0 or wv >= d11:
            continue

        z = int(floor(wv))
        tv = d10 - (
            lgamma(z + 1)
            + lgamma(mingoodbad - z + 1)
            + lgamma(m - z + 1)
            + lgamma(maxgoodbad - m + z + 1)
        )

        if x * (4.0 - x) - 3.0 <= tv:
            break
        if x * (x - tv) >= 1:
            continue
        if 2.0 * log(x) <= tv:
            break

    # Untransform (corrections due to Frohne, as adopted by reference
    # implementations): we sampled the smaller colour class of the smaller
    # sample, map back to "whites among the t draws".
    if good > bad:
        z = m - z
    if m < draws:
        z = good - z
    return int(z)


def sample(t: int, w: int, b: int, rng=None, *, method: str = "auto") -> int:
    """Draw one variate of ``h(t, w, b)``.

    Parameters
    ----------
    t, w, b:
        Number of draws, white balls and black balls.
    rng:
        Seed, NumPy ``Generator`` or :class:`~repro.rng.counting.CountingRNG`.
    method:
        ``"auto"`` (default), ``"hin"``, ``"hrua"`` or ``"numpy"`` (delegate
        to ``Generator.hypergeometric``; handy as an independent oracle).
    """
    from repro.core.engine import get_engine  # deferred: engine imports this module

    engine = get_engine(method)  # raises ValidationError for unknown names
    t, w, b = _validate_parameters(t, w, b)
    rng = default_rng(rng) if not hasattr(rng, "random") else rng
    recorder = _active_recorder()
    uniforms_before = getattr(rng, "uniforms_drawn", None) if recorder is not None else None

    trivial = _trivial_sample(t, w, b)
    if trivial is not None:
        result = trivial
    else:
        # Method selection is owned by the engine (one policy for the whole
        # library); HIN wins for small t because it consumes at most t
        # uniforms, the rejection method has bounded expected cost otherwise.
        result = engine.draw_nontrivial(t, w, b, rng)

    if recorder is not None:
        used = 0
        if uniforms_before is not None:
            used = getattr(rng, "uniforms_drawn", uniforms_before) - uniforms_before
        recorder.record(used)
    return result


def sample_many(t: int, w: int, b: int, size: int, rng=None, *, method: str = "auto") -> np.ndarray:
    """Draw ``size`` i.i.d. variates of ``h(t, w, b)`` as an ``int64`` array.

    For the scalar strategies (``"hin"``/``"hrua"``, or ``"auto"`` resolving
    to one of them) the uniforms for the whole batch are pre-drawn in one
    raw-word block and consumed by the blocked samplers of
    :mod:`repro.core.kernels.portable` -- bit-identical, per draw, to the
    per-call loop it replaces, including the per-call uniform counts seen by
    a :class:`~repro.rng.counting.CountingRNG` and an active
    :class:`SampleRecorder`.  Generators the word stream cannot drive (and
    ``method="numpy"``) keep the scalar loop.
    """
    from repro.core.engine import get_engine  # deferred: engine imports this module

    engine = get_engine(method)
    size = check_nonnegative_int(size, "size")
    rng = default_rng(rng) if not hasattr(rng, "random") else rng
    t, w, b = _validate_parameters(t, w, b)
    recorder = _active_recorder()

    trivial = _trivial_sample(t, w, b)
    if trivial is not None:
        if recorder is not None:
            for _ in range(size):
                recorder.record(0)
        return np.full(size, trivial, dtype=np.int64)

    concrete = engine.resolve_method(t)
    if concrete in ("hin", "hrua") and size > 0:
        from repro.core.kernels import wordstream

        gen = wordstream.supported_generator(rng)
        if gen is not None:
            out, used = wordstream.blocked_scalar_many(gen, concrete, t, w, b, size)
            counting = rng is not gen and hasattr(rng, "uniforms_drawn")
            if counting:
                # The replaced loop made one rng.random() call per uniform.
                total_used = int(used.sum())
                rng.uniforms_drawn += total_used
                rng.calls += total_used
            if recorder is not None:
                for u in used:
                    recorder.record(int(u) if counting else 0)
            return out

    return np.array([sample(t, w, b, rng, method=method) for _ in range(size)], dtype=np.int64)


# ----------------------------------------------------------------------------
# Instrumented sampling (experiment E2)
# ----------------------------------------------------------------------------
@dataclass
class HypergeometricSampleStats:
    """Random-variate consumption statistics of a batch of hypergeometric samples.

    ``mean_uniforms`` and ``max_uniforms`` are the quantities Section 6 of
    the paper reports ("always less than 1.5 on average and 10 for the worst
    case").
    """

    n_samples: int
    total_uniforms: int
    max_uniforms: int

    @property
    def mean_uniforms(self) -> float:
        """Average uniforms consumed per sample."""
        return self.total_uniforms / self.n_samples if self.n_samples else 0.0


def sample_with_stats(
    parameter_list,
    rng=None,
    *,
    method: str = "auto",
) -> tuple[np.ndarray, HypergeometricSampleStats]:
    """Sample ``h(t, w, b)`` for every ``(t, w, b)`` in ``parameter_list`` and count uniforms.

    Returns the array of samples and a :class:`HypergeometricSampleStats`
    summarising how many uniform variates each sample consumed.  The counting
    works regardless of whether the caller passes a counting generator.
    """
    from repro.rng.counting import CountingRNG  # local import to avoid a cycle at import time

    base = default_rng(rng) if not hasattr(rng, "random") else rng
    counter = base if isinstance(base, CountingRNG) else CountingRNG(
        base if isinstance(base, np.random.Generator) else np.random.default_rng()
    )

    samples = np.empty(len(parameter_list), dtype=np.int64)
    total = 0
    worst = 0
    for idx, (t, w, b) in enumerate(parameter_list):
        before = counter.uniforms_drawn
        samples[idx] = sample(t, w, b, counter, method=method)
        used = counter.uniforms_drawn - before
        total += used
        worst = max(worst, used)
    stats = HypergeometricSampleStats(
        n_samples=len(parameter_list), total_uniforms=total, max_uniforms=worst
    )
    return samples, stats
