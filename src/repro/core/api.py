"""High-level public API of the reproduction.

Most users need only three calls:

* :func:`repro.core.permutation.random_permutation` -- permute an in-memory
  vector uniformly at random with the coarse-grained algorithm;
* :func:`repro.core.permutation.permute_distributed` -- permute an already
  block-distributed vector, keeping it distributed;
* :func:`sample_communication_matrix` -- sample the communication matrix of
  Problem 2 on its own (the distribution studied in Section 3 of the paper),
  either sequentially or on a PRO machine.

Everything else (the individual samplers, the machine substrate, the
baselines, the statistics) is available from the corresponding subpackages.
"""

from __future__ import annotations

import numpy as np

from repro.core import commmatrix
from repro.core.parallel_matrix import sample_matrix_parallel
from repro.pro.machine import PROMachine
from repro.util.errors import ValidationError

__all__ = ["sample_communication_matrix"]


def sample_communication_matrix(
    row_sums,
    col_sums=None,
    *,
    parallel: bool = False,
    machine: PROMachine | None = None,
    algorithm: str | None = None,
    backend: str | object | None = None,
    transport: str | object | None = None,
    persistent: bool | None = None,
    schedule_seed: int | None = None,
    kernels: str | None = None,
    retry=None,
    telemetry=None,
    seed=None,
    rng=None,
    method: str = "auto",
) -> np.ndarray:
    """Sample a random communication matrix with the prescribed marginals.

    Parameters
    ----------
    row_sums, col_sums:
        Source and target block sizes (``col_sums`` defaults to
        ``row_sums``).  The matrix has ``len(row_sums)`` rows and
        ``len(col_sums)`` columns, row sums equal to ``row_sums`` and column
        sums equal to ``col_sums``, drawn from the exact law a uniform
        permutation induces (Problem 2 of the paper).
    parallel:
        When False (default) sample sequentially in the calling process
        (Algorithm 3 / 4 / the batched engine kernel according to
        ``algorithm``); when True run one of the parallel algorithms on a
        PRO machine.
    machine:
        Machine to use for the parallel path (one is created when omitted).
    algorithm:
        Sequential path: ``"sequential"`` (default), ``"recursive"`` or
        ``"batched"`` (vectorized :class:`~repro.core.engine.SamplerEngine`
        kernels; same law, fastest for large marginals).
        Parallel path: ``"alg5"``, ``"alg6"`` (default) or ``"root"``.
    backend:
        Execution backend for the parallel path (``"inline"``, ``"thread"``,
        ``"process"`` or any registered name); forwarded to the machine
        built when ``machine`` is omitted and mutually exclusive with
        ``machine``.  For a fixed ``seed`` the matrix is identical across
        backends.  Rejected for the sequential path, which runs no machine.
    transport:
        Payload transport for the process backend (``"sharedmem"`` or
        ``"pickle"``); like ``backend``, parallel-path only and
        seed-invariant.
    persistent:
        Standing-fleet control of the process backend (tri-state).  The
        default ``None`` already runs **warm**: with
        ``backend="process"`` the call reuses a keyed standing worker
        fleet from the process-wide default pool cache
        (:func:`repro.pro.backends.pool.get_default_pool`) instead of
        spawning ``p`` processes.  ``False`` forces the cold per-call
        spawn, ``True`` requests the warm fleet explicitly.  Like
        ``backend``, parallel-path only and seed-invariant.
    schedule_seed:
        Rank-interleaving seed of the sim backend (``backend="sim"``;
        see :mod:`repro.pro.backends.sim`).  Like ``backend``,
        parallel-path only, and the matrix is identical under every
        schedule.
    kernels:
        Kernel tier for the sampling hot path
        (``"auto"``/``"numba"``/``"numpy"``; ``None`` defers to
        ``REPRO_KERNELS``).  Applies to both paths and is bit-identical
        across tiers for a fixed seed; see :mod:`repro.core.kernels`.
    retry:
        Transient-failure recovery of the parallel path (an attempt count
        or a :class:`~repro.pro.resilience.RetryPolicy`): crashed ranks
        are respawned and the run replayed bit-identically.  Only applies
        to ``parallel=True`` -- the sequential path has no substrate to
        recover and rejects it.
    telemetry:
        A :class:`~repro.pro.telemetry.Telemetry` recorder collecting one
        :class:`~repro.pro.telemetry.FleetReport` for the parallel run
        (per-rank transport counters, ring geometry, pool/resilience
        events; collection never perturbs the matrix).  Only applies to
        ``parallel=True`` -- the sequential path runs no fleet and
        rejects it.
    seed, rng:
        Randomness source.  Precedence is explicit:

        * sequential path: ``rng`` (a generator, advanced in place) wins
          when given; otherwise a fresh generator is derived from ``seed``
          (``None`` means OS entropy).
        * parallel path: per-rank streams are always derived from ``seed``;
          a single shared ``rng`` cannot serve independent ranks, so passing
          ``rng`` with ``parallel=True`` raises
          :class:`~repro.util.errors.ValidationError`.
    method:
        Hypergeometric sampling method (``"auto"``, ``"hin"``, ``"hrua"``,
        ``"numpy"``).

    Returns
    -------
    numpy.ndarray
        The sampled matrix (``int64``).

    Examples
    --------
    >>> matrix = sample_communication_matrix([4, 4, 4], seed=0)
    >>> matrix.sum(axis=0).tolist()
    [4, 4, 4]
    >>> parallel = sample_communication_matrix([4, 4, 4], parallel=True,
    ...                                        backend="thread", seed=0)
    >>> parallel.shape
    (3, 3)
    """
    if not parallel:
        strategy = algorithm or "sequential"
        if strategy not in ("sequential", "recursive", "batched"):
            raise ValidationError(
                "sequential sampling supports 'sequential', 'recursive' or "
                f"'batched', got {strategy!r}"
            )
        if backend is not None:
            raise ValidationError(
                "backend= only applies to parallel=True (the sequential path "
                "runs in the calling process)"
            )
        if transport is not None:
            raise ValidationError(
                "transport= only applies to parallel=True (the sequential path "
                "runs in the calling process)"
            )
        if persistent:
            raise ValidationError(
                "persistent= only applies to parallel=True (the sequential path "
                "runs no worker pool)"
            )
        if schedule_seed is not None:
            raise ValidationError(
                "schedule_seed= only applies to parallel=True (the sequential "
                "path schedules no ranks)"
            )
        if retry is not None:
            raise ValidationError(
                "retry= only applies to parallel=True (the sequential path has "
                "no execution substrate to recover)"
            )
        if telemetry is not None:
            raise ValidationError(
                "telemetry= only applies to parallel=True (the sequential path "
                "runs no fleet to observe)"
            )
        generator = rng if rng is not None else seed
        return commmatrix.sample_matrix(
            row_sums, col_sums if col_sums is not None else row_sums,
            generator, method=method, strategy=strategy, kernels=kernels,
        )
    if rng is not None:
        raise ValidationError(
            "rng= only applies to the sequential path; the parallel path derives "
            "independent per-rank streams from seed="
        )
    parallel_algorithm = algorithm or "alg6"
    matrix, _ = sample_matrix_parallel(
        row_sums,
        col_sums,
        machine=machine,
        algorithm=parallel_algorithm,
        backend=backend,
        transport=transport,
        persistent=persistent,
        schedule_seed=schedule_seed,
        kernels=kernels,
        retry=retry,
        telemetry=telemetry,
        seed=seed,
        method=method,
    )
    return matrix
