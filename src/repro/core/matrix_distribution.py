"""The probability law of the communication matrix (Section 3 of the paper).

A uniform random permutation of ``n`` items laid out in source blocks of
sizes ``m`` and target blocks of sizes ``m'`` induces a distribution on the
communication matrix ``A`` (how many items travel from block ``i`` to block
``j``).  The number of permutations realising a fixed admissible ``A`` is

.. math::

   N(A) \\;=\\; \\frac{\\prod_i m_i! \\; \\prod_j m'_j!}{\\prod_{ij} a_{ij}!},

(choose, per source block, which items go to which target -- a multinomial
-- and then arrange the items arriving in each target block in any order),
so ``P[A] = N(A) / n!``.  This module provides that law exactly (in log
space), together with the structural results the paper proves about it:

* Proposition 3 -- each entry ``a_ij`` is marginally hypergeometric
  ``h(m'_j, m_i, n - m_i)``;
* Proposition 4/5 -- merging groups of rows and columns yields the law of the
  merged problem (self-similarity);
* Proposition 6 -- conditioning on a row-group split factorises the law into
  two independent sub-problems.

For small instances the module can also enumerate *every* admissible matrix
(the transportation polytope's lattice points), which is what the exactness
tests and the uniformity benchmark build on.
"""

from __future__ import annotations

from math import lgamma
from typing import Iterator, Sequence

import numpy as np

from repro.core import hypergeometric
from repro.core.commmatrix import check_matrix
from repro.util.errors import ValidationError
from repro.util.validation import check_same_total, check_vector_of_nonnegative_ints

__all__ = [
    "log_number_of_realizing_permutations",
    "log_pmf",
    "pmf",
    "entry_distribution",
    "enumerate_matrices",
    "exact_distribution",
    "merge_blocks",
    "expected_matrix",
]


def _log_factorial(k: int) -> float:
    return lgamma(k + 1)


def _validate_marginals(row_sums, col_sums) -> tuple[np.ndarray, np.ndarray, int]:
    rows = check_vector_of_nonnegative_ints(row_sums, "row_sums")
    cols = check_vector_of_nonnegative_ints(col_sums, "col_sums")
    total = check_same_total(rows, cols, "row_sums", "col_sums")
    return rows, cols, total


# ----------------------------------------------------------------------------
# The exact law
# ----------------------------------------------------------------------------
def log_number_of_realizing_permutations(matrix, row_sums, col_sums) -> float:
    """Natural log of the number of permutations whose communication matrix is ``matrix``."""
    arr = check_matrix(matrix, row_sums, col_sums)
    rows, cols, _ = _validate_marginals(row_sums, col_sums)
    value = sum(_log_factorial(int(m)) for m in rows)
    value += sum(_log_factorial(int(m)) for m in cols)
    value -= float(sum(_log_factorial(int(a)) for a in arr.ravel()))
    return value


def log_pmf(matrix, row_sums, col_sums) -> float:
    """Natural log of ``P[A = matrix]`` under a uniform random permutation."""
    rows, cols, total = _validate_marginals(row_sums, col_sums)
    return (
        log_number_of_realizing_permutations(matrix, rows, cols)
        - _log_factorial(total)
    )


def pmf(matrix, row_sums, col_sums) -> float:
    """``P[A = matrix]`` under a uniform random permutation."""
    return float(np.exp(log_pmf(matrix, row_sums, col_sums)))


def expected_matrix(row_sums, col_sums) -> np.ndarray:
    """Expectation ``E[a_ij] = m_i * m'_j / n`` of the communication matrix."""
    rows, cols, total = _validate_marginals(row_sums, col_sums)
    if total == 0:
        return np.zeros((rows.size, cols.size))
    return np.outer(rows, cols) / total


def entry_distribution(i: int, j: int, row_sums, col_sums) -> tuple[int, int, int]:
    """Hypergeometric parameters ``(t, w, b)`` of the marginal law of ``a_ij``.

    Proposition 3: ``a_ij ~ h(m'_j, m_i, n - m_i)``.  The returned triple can
    be fed directly to :mod:`repro.core.hypergeometric`.
    """
    rows, cols, total = _validate_marginals(row_sums, col_sums)
    if not (0 <= i < rows.size):
        raise ValidationError(f"row index {i} out of range [0, {rows.size})")
    if not (0 <= j < cols.size):
        raise ValidationError(f"column index {j} out of range [0, {cols.size})")
    return int(cols[j]), int(rows[i]), int(total - rows[i])


# ----------------------------------------------------------------------------
# Exhaustive enumeration (small cases)
# ----------------------------------------------------------------------------
def enumerate_matrices(row_sums, col_sums, *, max_matrices: int = 2_000_000) -> Iterator[np.ndarray]:
    """Yield every non-negative integer matrix with the prescribed marginals.

    The enumeration walks the rows recursively, enumerating for each row all
    the compositions compatible with the remaining column capacities.  The
    number of such matrices explodes quickly; ``max_matrices`` guards against
    accidental huge enumerations (a :class:`ValidationError` is raised when
    the limit is hit).
    """
    rows, cols, _ = _validate_marginals(row_sums, col_sums)
    p, q = rows.size, cols.size
    matrix = np.zeros((p, q), dtype=np.int64)
    count = 0

    def row_compositions(total: int, caps: np.ndarray, idx: int) -> Iterator[list[int]]:
        """All ways to write ``total`` as a sum over columns ``idx..q-1`` within caps."""
        if idx == q - 1:
            if total <= caps[idx]:
                yield [total]
            return
        upper = min(total, int(caps[idx]))
        # Lower bound: the remaining columns can absorb at most sum(caps[idx+1:]).
        rest_cap = int(caps[idx + 1:].sum())
        lower = max(0, total - rest_cap)
        for value in range(lower, upper + 1):
            for tail in row_compositions(total - value, caps, idx + 1):
                yield [value] + tail

    def recurse(i: int, caps: np.ndarray) -> Iterator[np.ndarray]:
        nonlocal count
        if i == p:
            count += 1
            if count > max_matrices:
                raise ValidationError(
                    f"more than {max_matrices} matrices with these marginals; "
                    "raise max_matrices if this is intended"
                )
            yield matrix.copy()
            return
        for row in row_compositions(int(rows[i]), caps, 0):
            row_arr = np.asarray(row, dtype=np.int64)
            matrix[i, :] = row_arr
            yield from recurse(i + 1, caps - row_arr)
        matrix[i, :] = 0

    yield from recurse(0, cols.copy())


def exact_distribution(row_sums, col_sums, *, max_matrices: int = 2_000_000) -> dict[bytes, float]:
    """Exact pmf over all admissible matrices, keyed by ``matrix.tobytes()``.

    Useful for goodness-of-fit tests: the values sum to 1 (up to floating
    point error) and each key can be rebuilt with
    ``np.frombuffer(key, dtype=np.int64).reshape(p, p')``.
    """
    rows, cols, _ = _validate_marginals(row_sums, col_sums)
    out: dict[bytes, float] = {}
    for matrix in enumerate_matrices(rows, cols, max_matrices=max_matrices):
        out[matrix.tobytes()] = pmf(matrix, rows, cols)
    return out


# ----------------------------------------------------------------------------
# Self-similarity (Propositions 4 and 5)
# ----------------------------------------------------------------------------
def merge_blocks(matrix, row_groups: Sequence[Sequence[int]], col_groups: Sequence[Sequence[int]]) -> np.ndarray:
    """Merge rows and columns of a matrix according to index groups.

    ``row_groups`` (resp. ``col_groups``) is a partition of the row (resp.
    column) indices into consecutive groups; the result has one row per row
    group and one column per column group, each entry being the sum of the
    covered sub-matrix.  By Proposition 4 the merged matrix of a sample is
    itself a sample of the merged problem -- the property the tests verify.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got shape {arr.shape}")

    def check_partition(groups, size, name):
        flat = [idx for group in groups for idx in group]
        if sorted(flat) != list(range(size)):
            raise ValidationError(
                f"{name} must partition range({size}), got {groups!r}"
            )

    check_partition(row_groups, arr.shape[0], "row_groups")
    check_partition(col_groups, arr.shape[1], "col_groups")

    merged = np.zeros((len(row_groups), len(col_groups)), dtype=arr.dtype)
    for gi, rgroup in enumerate(row_groups):
        for gj, cgroup in enumerate(col_groups):
            merged[gi, gj] = arr[np.ix_(list(rgroup), list(cgroup))].sum()
    return merged


def entry_marginal_pmf(i: int, j: int, row_sums, col_sums, k: int) -> float:
    """``P[a_ij = k]`` directly from Proposition 3 (used in tests against the full law)."""
    t, w, b = entry_distribution(i, j, row_sums, col_sums)
    return hypergeometric.pmf(k, t, w, b)
