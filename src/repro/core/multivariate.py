"""The multivariate hypergeometric distribution (Algorithm 2 of the paper).

Given an urn with ``p`` colour classes of sizes ``m' = (m'_0, ..., m'_{p-1})``
(total ``n``), drawing ``m`` balls without replacement and counting how many
of each colour were drawn yields the *multivariate hypergeometric*
distribution ``MVH(m, m')``.  The paper samples it by conditional peeling
(Algorithm 2): the count of colour ``i`` given the previous colours is a
univariate hypergeometric, so one pass over the colours with one ``h(,)``
sample each produces an exact sample.

Two samplers are provided:

``sample_sequential``
    Algorithm 2 verbatim -- iterate over colours left to right.

``sample_recursive``
    The balanced-splitting variant suggested at the end of Section 4
    ("the recursive formulation also has the advantage that we may split the
    input for the samples of the hypergeometric distribution more or less
    evenly"): split the colour classes into halves, draw the number of balls
    falling into the left half with one ``h(,)`` sample, recurse.  Same law,
    different call tree -- this is the building block of the parallel
    algorithms.

Both consume exactly ``p - 1`` non-trivial ``h(,)`` samples in the worst
case (the last colour is forced).
"""

from __future__ import annotations

from math import lgamma

import numpy as np

from repro.core import hypergeometric
from repro.rng.streams import default_rng
from repro.util.errors import ValidationError
from repro.util.validation import (
    check_nonnegative_int,
    check_vector_of_nonnegative_ints,
)

__all__ = [
    "sample",
    "sample_sequential",
    "sample_recursive",
    "log_pmf",
    "pmf",
    "mean",
    "covariance",
]


def _validate(n_draws: int, class_sizes) -> tuple[int, np.ndarray]:
    n_draws = check_nonnegative_int(n_draws, "n_draws")
    class_sizes = check_vector_of_nonnegative_ints(class_sizes, "class_sizes")
    if class_sizes.size == 0:
        raise ValidationError("class_sizes must contain at least one class")
    total = int(class_sizes.sum())
    if n_draws > total:
        raise ValidationError(
            f"cannot draw {n_draws} balls from an urn with only {total} balls"
        )
    return n_draws, class_sizes


# ----------------------------------------------------------------------------
# Exact quantities
# ----------------------------------------------------------------------------
def log_pmf(counts, n_draws: int, class_sizes) -> float:
    """Natural log of ``P[X = counts]`` for ``X ~ MVH(n_draws, class_sizes)``.

    ``counts`` must have the same length as ``class_sizes``; the result is
    ``-inf`` when the counts are outside the support (wrong total or a count
    exceeding its class size).
    """
    n_draws, class_sizes = _validate(n_draws, class_sizes)
    counts = check_vector_of_nonnegative_ints(counts, "counts")
    if counts.size != class_sizes.size:
        raise ValidationError(
            f"counts has {counts.size} entries but class_sizes has {class_sizes.size}"
        )
    if int(counts.sum()) != n_draws or np.any(counts > class_sizes):
        return float("-inf")
    total = int(class_sizes.sum())

    def log_binom(n, k):
        return lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)

    value = -log_binom(total, n_draws)
    for k, m in zip(counts.tolist(), class_sizes.tolist()):
        value += log_binom(m, k)
    return value


def pmf(counts, n_draws: int, class_sizes) -> float:
    """``P[X = counts]`` for ``X ~ MVH(n_draws, class_sizes)``."""
    lp = log_pmf(counts, n_draws, class_sizes)
    return 0.0 if lp == float("-inf") else float(np.exp(lp))


def mean(n_draws: int, class_sizes) -> np.ndarray:
    """Expectation vector ``n_draws * class_sizes / n``."""
    n_draws, class_sizes = _validate(n_draws, class_sizes)
    total = class_sizes.sum()
    if total == 0:
        return np.zeros(class_sizes.size)
    return n_draws * class_sizes / total


def covariance(n_draws: int, class_sizes) -> np.ndarray:
    """Covariance matrix of ``MVH(n_draws, class_sizes)``.

    ``Cov[X_i, X_j] = -t * (n-t)/(n-1) * p_i * p_j`` for ``i != j`` and
    ``Var[X_i] = t * (n-t)/(n-1) * p_i * (1 - p_i)`` with ``p_i = m'_i / n``.
    """
    n_draws, class_sizes = _validate(n_draws, class_sizes)
    total = int(class_sizes.sum())
    p = class_sizes / total if total else np.zeros(class_sizes.size)
    if total <= 1:
        return np.zeros((class_sizes.size, class_sizes.size))
    factor = n_draws * (total - n_draws) / (total - 1)
    cov = -factor * np.outer(p, p)
    np.fill_diagonal(cov, factor * p * (1 - p))
    return cov


# ----------------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------------
def sample_sequential(n_draws: int, class_sizes, rng=None, *, method: str = "auto") -> np.ndarray:
    """Algorithm 2: sample ``MVH(n_draws, class_sizes)`` by left-to-right peeling.

    For each colour class ``i`` the number of drawn balls *not* of colour
    ``i`` among the remaining draws follows ``h(m, n - m'_i, m'_i)``; the
    complement is the count of colour ``i`` (this is the paper's
    ``toRight``/``alpha`` bookkeeping, kept verbatim).
    """
    n_draws, class_sizes = _validate(n_draws, class_sizes)
    rng = default_rng(rng) if not hasattr(rng, "random") else rng

    remaining_total = int(class_sizes.sum())
    remaining_draws = n_draws
    counts = np.zeros(class_sizes.size, dtype=np.int64)
    for i, class_size in enumerate(class_sizes.tolist()):
        # toRight = number of the remaining draws that fall outside class i.
        to_right = hypergeometric.sample(
            remaining_draws, remaining_total - class_size, class_size, rng, method=method
        )
        counts[i] = remaining_draws - to_right
        remaining_total -= class_size
        remaining_draws = to_right
    return counts


def sample_recursive(
    n_draws: int,
    class_sizes,
    rng=None,
    *,
    method: str = "auto",
    leaf_size: int = 1,
) -> np.ndarray:
    """Balanced-splitting sampler: same law as :func:`sample_sequential`.

    Splits the colour classes at the midpoint, draws how many of the
    ``n_draws`` balls land in the left half (a single ``h(,)`` sample with
    roughly balanced white/black sizes) and recurses into both halves.  With
    ``leaf_size > 1`` the recursion bottoms out into the sequential sampler,
    which is slightly faster for short vectors.
    """
    n_draws, class_sizes = _validate(n_draws, class_sizes)
    rng = default_rng(rng) if not hasattr(rng, "random") else rng
    leaf_size = max(1, int(leaf_size))

    counts = np.zeros(class_sizes.size, dtype=np.int64)

    def recurse(lo: int, hi: int, draws: int) -> None:
        width = hi - lo
        if draws == 0:
            return
        if width == 1:
            counts[lo] = draws
            return
        if width <= leaf_size:
            counts[lo:hi] = sample_sequential(draws, class_sizes[lo:hi], rng, method=method)
            return
        mid = (lo + hi) // 2
        left_total = int(class_sizes[lo:mid].sum())
        right_total = int(class_sizes[mid:hi].sum())
        into_left = hypergeometric.sample(draws, left_total, right_total, rng, method=method)
        recurse(lo, mid, into_left)
        recurse(mid, hi, draws - into_left)

    recurse(0, class_sizes.size, n_draws)
    return counts


def sample(n_draws: int, class_sizes, rng=None, *, method: str = "auto", strategy: str = "sequential") -> np.ndarray:
    """Sample ``MVH(n_draws, class_sizes)``.

    ``strategy`` selects the call tree: ``"sequential"`` (Algorithm 2,
    default), ``"recursive"`` (balanced splitting), ``"batched"`` (the
    balanced splitting evaluated with vectorized NumPy kernels by the
    :class:`~repro.core.engine.SamplerEngine` -- same law, ``O(log p)``
    kernel calls) or ``"numpy"`` (delegate to
    ``Generator.multivariate_hypergeometric``, useful as an independent
    oracle in tests).
    """
    if strategy == "sequential":
        return sample_sequential(n_draws, class_sizes, rng, method=method)
    if strategy == "recursive":
        return sample_recursive(n_draws, class_sizes, rng, method=method)
    if strategy == "batched":
        from repro.core.engine import get_engine

        n_draws, class_sizes = _validate(n_draws, class_sizes)
        return get_engine(method).multivariate(n_draws, class_sizes, rng)
    if strategy == "numpy":
        n_draws, class_sizes = _validate(n_draws, class_sizes)
        generator = default_rng(rng) if not hasattr(rng, "random") else rng
        if hasattr(generator, "generator"):
            generator = generator.generator  # unwrap CountingRNG
        return np.asarray(
            generator.multivariate_hypergeometric(class_sizes, n_draws), dtype=np.int64
        )
    raise ValidationError(
        f"unknown strategy {strategy!r}; use 'sequential', 'recursive', 'batched' or 'numpy'"
    )
