"""Portable kernel bodies of the compiled tier -- one source, two modes.

Every function in this module is written in the numba-compatible subset of
Python/NumPy (explicit loops, int64/float64 scalars, pre-allocated output
arrays, no Python objects) and is decorated with :data:`jit`:

* when numba is importable, ``jit`` is ``numba.njit(cache=True)`` and the
  functions compile to native code on first call (the registry's warm-up
  hook triggers and times that compile);
* when numba is absent -- or its import fails for any reason -- ``jit`` is
  the identity and the very same bodies run as plain Python.  That is what
  the equivalence test-suite executes on numpy-only installations, so the
  algorithms are pinned bit-exact everywhere and the numba CI cell merely
  re-checks the compiled lowering of code that is already proven.

Bit-exactness contract
----------------------
The kernels do not call back into ``numpy.random``.  They consume raw
``uint64`` words pre-drawn from the *same* ``BitGenerator`` the NumPy code
path would have used (see :mod:`repro.core.kernels.wordstream`), and
reproduce NumPy's own consumption rules exactly:

* ``next_double`` is ``(word >> 11) * 2**-53`` -- one word per double;
* ``next_uint32`` returns the **low** half of a fresh word and buffers the
  high half for the next call (the ``has_uint32``/``uinteger`` fields of
  the bit generator state), exactly like ``pcg64_next32``;
* bounded integers use NumPy's ``random_bounded_uint64``/``uint32`` masked
  rejection (``random_interval``), picking the 32-bit path iff the bound
  fits in 32 bits;
* ``Generator.hypergeometric`` is reproduced branch for branch: inversion
  when the (transformed) sample is within 10 of either end, Stadlober's
  HRUA* otherwise, including the 126-entry ``logfactorial`` table and its
  Stirling tail.

The word-stream cursor travels as a 3-element int64 array ``cur``:
``cur[0]`` is the index of the next unread word, ``cur[1]``/``cur[2]`` are
the ``has_uint32`` flag and the buffered half-word.  Every kernel returns
``0`` on success and ``-1`` when the pre-drawn buffer ran out -- the Python
driver then rewinds the generator and retries with a doubled buffer, so an
exhausted run consumes nothing.
"""

from __future__ import annotations

import decimal
import math

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "jit",
    "fill_hypergeometric",
    "fill_hyp_repeat",
    "fill_hin_repeat",
    "fill_hrua_repeat",
    "fill_permutation",
    "fill_multivariate_batch",
    "fill_matrix",
]

try:  # guarded import: any failure leaves the pure-Python mode
    from numba import njit as _njit

    HAVE_NUMBA = True

    def jit(func):
        return _njit(cache=True)(func)

except Exception:  # pragma: no cover - exercised on numba-free installs
    HAVE_NUMBA = False

    def jit(func):
        return func


def _build_logfact_table() -> np.ndarray:
    # NumPy's logfactorial.c lookup table holds correctly-rounded ln(k!)
    # for k = 0..125; regenerating it through Decimal at 60 digits gives
    # the same correctly-rounded doubles without shipping 126 literals.
    with decimal.localcontext() as ctx:
        ctx.prec = 60
        return np.array(
            [float(decimal.Decimal(math.factorial(k)).ln()) for k in range(126)],
            dtype=np.float64,
        )


_LOGFACT = _build_logfact_table()
_HALFLN2PI = 0.9189385332046728
_INV53 = 1.0 / 9007199254740992.0  # 2**-53
# HRUA* constants 2*sqrt(2/e) and 3 - 2*sqrt(3/e) (same as NumPy's C).
_D1 = 1.7155277699214135
_D2 = 0.8989161620588988
_SH11 = np.uint64(11)
_SH32 = np.uint64(32)
_U32_MASK = np.uint64(0xFFFFFFFF)


@jit
def _logfactorial(k):
    # Port of NumPy's logfactorial(): table below 126, Stirling truncated
    # at the 1/k**3 term above, with the C expression's evaluation order.
    if k < 126:
        return _LOGFACT[k]
    kf = float(k)
    return (kf + 0.5) * math.log(kf) - kf + (
        _HALFLN2PI + (1.0 / kf) * (1.0 / 12.0 - 1.0 / (360.0 * kf * kf))
    )


@jit
def _next_double(words, cur):
    w = words[cur[0]]
    cur[0] += 1
    return (w >> _SH11) * _INV53


@jit
def _next_u32(words, cur):
    if cur[1] != 0:
        cur[1] = 0
        return cur[2]
    w = words[cur[0]]
    cur[0] += 1
    cur[1] = 1
    cur[2] = np.int64(w >> _SH32)
    return np.int64(w & _U32_MASK)


@jit
def _random_interval(words, cur, mx):
    """NumPy's ``random_interval``: masked rejection in [0, mx]; -1 = out of words."""
    if mx == 0:
        return np.int64(0)
    mask = mx
    mask |= mask >> 1
    mask |= mask >> 2
    mask |= mask >> 4
    mask |= mask >> 8
    mask |= mask >> 16
    mask |= mask >> 32
    n_words = words.shape[0]
    if mx <= 0xFFFFFFFF:
        # Bounds below 2**32 draw buffered uint32 halves (pcg64_next32).
        while True:
            if cur[1] == 0 and cur[0] >= n_words:
                return np.int64(-1)
            value = _next_u32(words, cur) & mask
            if value <= mx:
                return value
    umask = np.uint64(mask)
    while True:
        if cur[0] >= n_words:
            return np.int64(-1)
        w = words[cur[0]]
        cur[0] += 1
        value = np.int64(w & umask)
        if value <= mx:
            return value


@jit
def _hyp_inversion(words, cur, good, bad, sample):
    total = good + bad
    computed_sample = sample
    if sample > total // 2:
        computed_sample = total - sample
    remaining_total = total
    remaining_good = good
    while computed_sample > 0 and remaining_good > 0 and remaining_total > remaining_good:
        j = _random_interval(words, cur, remaining_total - 1)
        if j < 0:
            return np.int64(-1)
        if j < remaining_good:
            remaining_good -= 1
        computed_sample -= 1
        remaining_total -= 1
    if remaining_total == remaining_good:
        remaining_good -= computed_sample
    if sample > total // 2:
        return remaining_good
    return good - remaining_good


@jit
def _hyp_hrua(words, cur, good, bad, sample):
    popsize = good + bad
    computed_sample = min(sample, popsize - sample)
    mingoodbad = min(good, bad)
    maxgoodbad = max(good, bad)
    p = mingoodbad / popsize
    q = maxgoodbad / popsize
    mu = computed_sample * p
    a = mu + 0.5
    var = float(popsize - computed_sample) * computed_sample * p * q / (popsize - 1)
    c = math.sqrt(var + 0.5)
    h = _D1 * c + _D2
    m = np.int64(math.floor(float(computed_sample + 1) * (mingoodbad + 1) / (popsize + 2)))
    g = (
        _logfactorial(m)
        + _logfactorial(mingoodbad - m)
        + _logfactorial(computed_sample - m)
        + _logfactorial(maxgoodbad - computed_sample + m)
    )
    b = min(float(min(computed_sample, mingoodbad)) + 1.0, math.floor(a + 16.0 * c))
    n_words = words.shape[0]
    K = np.int64(0)
    while True:
        if cur[0] + 2 > n_words:
            return np.int64(-1)
        U = _next_double(words, cur)
        V = _next_double(words, cur)
        if U == 0.0:
            # The C division by zero makes X = +-inf, which the range test
            # rejects; skip explicitly so the pure-Python mode never divides
            # by zero.  Consumption (two words) is identical either way.
            continue
        X = a + h * (V - 0.5) / U
        if X < 0.0 or X >= b:
            continue
        K = np.int64(math.floor(X))
        gp = (
            _logfactorial(K)
            + _logfactorial(mingoodbad - K)
            + _logfactorial(computed_sample - K)
            + _logfactorial(maxgoodbad - computed_sample + K)
        )
        T = g - gp
        if U * (4.0 - U) - 3.0 <= T:
            break
        if U * (U - T) >= 1.0:
            continue
        if 2.0 * math.log(U) <= T:
            break
    if good > bad:
        K = computed_sample - K
    if computed_sample < sample:
        K = good - K
    return K


@jit
def _hyp(words, cur, good, bad, sample):
    # random_hypergeometric's dispatch: inversion within 10 of either end.
    if sample >= 10 and sample <= good + bad - 10:
        return _hyp_hrua(words, cur, good, bad, sample)
    return _hyp_inversion(words, cur, good, bad, sample)


@jit
def fill_hypergeometric(words, cur, ngood, nbad, nsample, out):
    """Elementwise ``Generator.hypergeometric`` with the engine's trivial masks.

    Degenerate entries are resolved without touching the word stream and the
    rest draw in flat index order -- exactly the consumption of
    ``SamplerEngine._hypergeometric_block`` on the flattened arrays.
    """
    for i in range(out.shape[0]):
        w = ngood[i]
        b = nbad[i]
        t = nsample[i]
        if t >= w + b:
            out[i] = w
        elif w == 0 or t == 0:
            out[i] = 0
        elif b == 0:
            out[i] = t
        else:
            r = _hyp(words, cur, w, b, t)
            if r < 0:
                return -1
            out[i] = r
    return 0


@jit
def fill_hyp_repeat(words, cur, good, bad, sample, out):
    """``size`` draws of one non-degenerate ``Generator.hypergeometric``."""
    for i in range(out.shape[0]):
        r = _hyp(words, cur, good, bad, sample)
        if r < 0:
            return -1
        out[i] = r
    return 0


@jit
def fill_permutation(words, cur, out):
    """Fisher-Yates of 0..n-1 with ``Generator.shuffle``'s draw sequence."""
    n = out.shape[0]
    for i in range(n):
        out[i] = i
    for i in range(n - 1, 0, -1):
        j = _random_interval(words, cur, i)
        if j < 0:
            return -1
        tmp = out[i]
        out[i] = out[j]
        out[j] = tmp
    return 0


@jit
def fill_multivariate_batch(words, cur, draws, sizes, out, stats):
    """Whole balanced splitting tree of ``SamplerEngine.multivariate_batch``.

    ``sizes`` is the (batch, classes) urn array, ``draws`` the per-row draw
    counts, ``out`` the (batch, classes) result.  Levels proceed exactly as
    the NumPy tier's segment bookkeeping, and within one level the draws run
    row-major over (batch row, splitting segment) -- the flat order NumPy's
    vectorized call consumes -- so a fixed seed yields identical output.

    ``stats[0]`` accumulates the number of non-degenerate draws and
    ``stats[1]`` the number of levels that drew at all (the CountingRNG
    charges of the NumPy tier: one vectorized call per non-empty level).
    """
    n_batch, n_classes = sizes.shape
    prefix = np.zeros((n_batch, n_classes + 1), dtype=np.int64)
    for bi in range(n_batch):
        acc = np.int64(0)
        for ci in range(n_classes):
            acc += sizes[bi, ci]
            prefix[bi, ci + 1] = acc
    seg_lo = np.empty(n_classes, dtype=np.int64)
    seg_hi = np.empty(n_classes, dtype=np.int64)
    seg_lo[0] = 0
    seg_hi[0] = n_classes
    n_seg = 1
    seg_draws = np.empty((n_batch, n_classes), dtype=np.int64)
    for bi in range(n_batch):
        seg_draws[bi, 0] = draws[bi]
    while True:
        n_split = 0
        for s in range(n_seg):
            if seg_hi[s] - seg_lo[s] > 1:
                n_split += 1
        if n_split == 0:
            break
        into_left = np.empty((n_batch, n_split), dtype=np.int64)
        level_draws = np.int64(0)
        for bi in range(n_batch):
            sj = 0
            for s in range(n_seg):
                lo = seg_lo[s]
                hi = seg_hi[s]
                if hi - lo <= 1:
                    continue
                mid = (lo + hi) // 2
                ngood = prefix[bi, mid] - prefix[bi, lo]
                nbad = prefix[bi, hi] - prefix[bi, mid]
                t = seg_draws[bi, s]
                if t >= ngood + nbad:
                    into_left[bi, sj] = ngood
                elif ngood == 0 or t == 0:
                    into_left[bi, sj] = 0
                elif nbad == 0:
                    into_left[bi, sj] = t
                else:
                    r = _hyp(words, cur, ngood, nbad, t)
                    if r < 0:
                        return -1
                    into_left[bi, sj] = r
                    level_draws += 1
                sj += 1
        stats[0] += level_draws
        if level_draws > 0:
            stats[1] += 1
        new_lo = np.empty(n_classes, dtype=np.int64)
        new_hi = np.empty(n_classes, dtype=np.int64)
        new_draws = np.empty((n_batch, n_classes), dtype=np.int64)
        n_new = 0
        sj = 0
        for s in range(n_seg):
            lo = seg_lo[s]
            hi = seg_hi[s]
            if hi - lo > 1:
                mid = (lo + hi) // 2
                new_lo[n_new] = lo
                new_hi[n_new] = mid
                new_lo[n_new + 1] = mid
                new_hi[n_new + 1] = hi
                for bi in range(n_batch):
                    new_draws[bi, n_new] = into_left[bi, sj]
                    new_draws[bi, n_new + 1] = seg_draws[bi, s] - into_left[bi, sj]
                n_new += 2
                sj += 1
            else:
                new_lo[n_new] = lo
                new_hi[n_new] = hi
                for bi in range(n_batch):
                    new_draws[bi, n_new] = seg_draws[bi, s]
                n_new += 1
        seg_lo = new_lo
        seg_hi = new_hi
        seg_draws = new_draws
        n_seg = n_new
    for s in range(n_seg):
        lo = seg_lo[s]
        for bi in range(n_batch):
            out[bi, lo] = seg_draws[bi, s]
    return 0


@jit
def fill_matrix(words, cur, rows, cols, out, stats):
    """Whole row tree of ``SamplerEngine.sample_matrix_batched``.

    Each row level batches its splitting blocks into one
    :func:`fill_multivariate_batch` call over the blocks' column capacities,
    mirroring the NumPy tier's single ``multivariate_batch`` call per level
    (same draw order, same CountingRNG charge structure through ``stats``).
    """
    n_rows = rows.shape[0]
    n_cols = cols.shape[0]
    row_prefix = np.zeros(n_rows + 1, dtype=np.int64)
    acc = np.int64(0)
    for ri in range(n_rows):
        acc += rows[ri]
        row_prefix[ri + 1] = acc
    blk_lo = np.empty(n_rows, dtype=np.int64)
    blk_hi = np.empty(n_rows, dtype=np.int64)
    blk_lo[0] = 0
    blk_hi[0] = n_rows
    n_blk = 1
    caps = np.empty((n_rows, n_cols), dtype=np.int64)
    for ci in range(n_cols):
        caps[0, ci] = cols[ci]
    while True:
        n_split = 0
        for s in range(n_blk):
            if blk_hi[s] - blk_lo[s] > 1:
                n_split += 1
        if n_split == 0:
            break
        upper = np.empty(n_split, dtype=np.int64)
        split_caps = np.empty((n_split, n_cols), dtype=np.int64)
        sj = 0
        for s in range(n_blk):
            lo = blk_lo[s]
            hi = blk_hi[s]
            if hi - lo <= 1:
                continue
            mid = (lo + hi) // 2
            upper[sj] = row_prefix[hi] - row_prefix[mid]
            for ci in range(n_cols):
                split_caps[sj, ci] = caps[s, ci]
            sj += 1
        to_up = np.empty((n_split, n_cols), dtype=np.int64)
        if fill_multivariate_batch(words, cur, upper, split_caps, to_up, stats) < 0:
            return -1
        new_lo = np.empty(n_rows, dtype=np.int64)
        new_hi = np.empty(n_rows, dtype=np.int64)
        new_caps = np.empty((n_rows, n_cols), dtype=np.int64)
        n_new = 0
        sj = 0
        for s in range(n_blk):
            lo = blk_lo[s]
            hi = blk_hi[s]
            if hi - lo > 1:
                mid = (lo + hi) // 2
                new_lo[n_new] = lo
                new_hi[n_new] = mid
                new_lo[n_new + 1] = mid
                new_hi[n_new + 1] = hi
                for ci in range(n_cols):
                    new_caps[n_new, ci] = caps[s, ci] - to_up[sj, ci]
                    new_caps[n_new + 1, ci] = to_up[sj, ci]
                n_new += 2
                sj += 1
            else:
                new_lo[n_new] = lo
                new_hi[n_new] = hi
                for ci in range(n_cols):
                    new_caps[n_new, ci] = caps[s, ci]
                n_new += 1
        blk_lo = new_lo
        blk_hi = new_hi
        caps = new_caps
        n_blk = n_new
    for s in range(n_blk):
        lo = blk_lo[s]
        for ci in range(n_cols):
            out[lo, ci] = caps[s, ci]
    return 0


@jit
def fill_hin_repeat(words, cur, t, w, b, out, used):
    """``size`` draws of the library's HIN sampler, one pre-drawn word per uniform.

    Mirrors :func:`repro.core.hypergeometric.sample_hin` exactly for
    non-degenerate parameters; ``used[i]`` reports the uniforms the i-th
    draw consumed (what the SampleRecorder and CountingRNG are charged).
    """
    n_words = words.shape[0]
    d1 = b + w - t
    d2 = float(min(b, w))
    for i in range(out.shape[0]):
        y = d2
        k = t
        n_used = np.int64(0)
        while y > 0.0:
            if cur[0] >= n_words:
                return -1
            u = _next_double(words, cur)
            n_used += 1
            y -= math.floor(u + y / (d1 + k))
            k -= 1
            if k == 0:
                break
        z = np.int64(d2 - y)
        if w > b:
            z = t - z
        out[i] = z
        used[i] = n_used
    return 0


@jit
def fill_hrua_repeat(words, cur, t, w, b, out, used):
    """``size`` draws of the library's HRUA* sampler from pre-drawn words.

    Mirrors :func:`repro.core.hypergeometric.sample_hrua` (the lgamma-based
    setup included) for non-degenerate parameters, consuming two words per
    rejection round like the ``rng.random()`` pair it replaces.
    """
    n_words = words.shape[0]
    popsize = w + b
    mingoodbad = min(w, b)
    maxgoodbad = max(w, b)
    m = min(t, popsize - t)
    d4 = mingoodbad / popsize
    d5 = 1.0 - d4
    d6 = m * d4 + 0.5
    d7 = math.sqrt((popsize - m) * t * d4 * d5 / (popsize - 1) + 0.5)
    d8 = _D1 * d7 + _D2
    d9 = np.int64(math.floor((m + 1) * (mingoodbad + 1) / (popsize + 2)))
    d10 = (
        math.lgamma(d9 + 1)
        + math.lgamma(mingoodbad - d9 + 1)
        + math.lgamma(m - d9 + 1)
        + math.lgamma(maxgoodbad - m + d9 + 1)
    )
    d11 = min(float(min(m, mingoodbad)) + 1.0, math.floor(d6 + 16.0 * d7))
    for i in range(out.shape[0]):
        n_used = np.int64(0)
        z = np.int64(0)
        while True:
            if cur[0] + 2 > n_words:
                return -1
            x = _next_double(words, cur)
            y = _next_double(words, cur)
            n_used += 2
            if x == 0.0:
                continue
            wv = d6 + d8 * (y - 0.5) / x
            if wv < 0.0 or wv >= d11:
                continue
            z = np.int64(math.floor(wv))
            tv = d10 - (
                math.lgamma(z + 1)
                + math.lgamma(mingoodbad - z + 1)
                + math.lgamma(m - z + 1)
                + math.lgamma(maxgoodbad - m + z + 1)
            )
            if x * (4.0 - x) - 3.0 <= tv:
                break
            if x * (x - tv) >= 1.0:
                continue
            if 2.0 * math.log(x) <= tv:
                break
        if w > b:
            z = m - z
        if m < t:
            z = w - z
        out[i] = z
        used[i] = n_used
    return 0
