"""The fallback kernel tier: decline everything, keep the NumPy paths.

The registry's contract is that a tier method returning ``None`` sends the
caller down the exact code path it would have taken before the kernel
registry existed.  :class:`NumpyKernels` returns ``None`` from every
capability, so selecting ``kernels="numpy"`` (or failing to build the numba
tier) is byte-for-byte the pre-registry behaviour -- same results, same
CountingRNG charges, same recorder entries.
"""

from __future__ import annotations

__all__ = ["NumpyKernels"]


class NumpyKernels:
    """Tier object that declines every kernel, selecting the NumPy paths."""

    name = "numpy"

    def __init__(self) -> None:
        self.warmup_seconds = 0.0

    def warm_up(self) -> "NumpyKernels":
        """Nothing to compile; present for tier-interface uniformity."""
        return self

    # Every capability declines; callers fall back to their NumPy path.
    def multivariate_batch(self, rng, draws, sizes):
        return None

    def sample_matrix(self, rng, rows, cols):
        return None

    def repeat_hypergeometric(self, rng, w, b, t, size):
        return None

    def permutation(self, rng, n):
        return None
