"""Kernel registry: select the compiled or NumPy tier for the sampling hot path.

The registry resolves a *kernels* request -- ``"auto"``, ``"numba"``,
``"numpy"``, ``None`` (defer to the ``REPRO_KERNELS`` environment variable,
then ``"auto"``) or an already-built tier object -- into a **tier**: an
object with ``name``, ``warmup_seconds``, ``warm_up()`` and the four
capability methods

    multivariate_batch(rng, draws, sizes)
    sample_matrix(rng, rows, cols)
    repeat_hypergeometric(rng, w, b, t, size)
    permutation(rng, n)

each of which returns the result array **or ``None``** when the tier cannot
serve the request, in which case the caller takes its original NumPy path.
That ``None``-means-decline contract is what makes the tiers safe to thread
everywhere: the NumPy tier declines everything, so ``kernels="numpy"`` is
exactly the pre-registry behaviour, and the numba tier declines per call
whenever the rng is not one its word stream can drive.

Resolution is deliberately forgiving: ``"auto"`` and ``"numba"`` try to
build the compiled tier (import numba, JIT-compile, self-verify bit-exact
against NumPy) and **fall back silently to the NumPy tier** on any failure
-- numba absent, compile error, or a self-check mismatch.  A fixed seed
therefore produces the same results on every install; the only observable
difference is throughput, which the bench suite tracks, and the tier name
repatriated through the cost records.
"""

from __future__ import annotations

import os

from repro.util.errors import ValidationError

__all__ = [
    "VALID_KERNELS",
    "normalize_kernels",
    "resolve_kernels",
    "reset_kernels",
]

#: Recognised kernel-tier request names.
VALID_KERNELS = ("auto", "numba", "numpy")

# Resolved tiers, keyed by request name ("auto" may map to either tier).
_TIERS: dict = {}


def _is_tier(obj) -> bool:
    return not isinstance(obj, str) and hasattr(obj, "warm_up") and hasattr(obj, "name")


def normalize_kernels(kernels):
    """Validate a ``kernels=`` argument; ``None`` defers to ``REPRO_KERNELS``.

    Returns one of :data:`VALID_KERNELS` (or the tier object itself when one
    is passed through) and raises :class:`ValidationError` on anything else.
    """
    if _is_tier(kernels):
        return kernels
    if kernels is None:
        kernels = os.environ.get("REPRO_KERNELS") or "auto"
    if not isinstance(kernels, str) or kernels not in VALID_KERNELS:
        raise ValidationError(
            f"unknown kernels {kernels!r}; use one of {', '.join(VALID_KERNELS)} "
            "(or pass a tier object)"
        )
    return kernels


def resolve_kernels(kernels=None):
    """Resolve a kernels request into a ready (warmed-up) tier object."""
    name = normalize_kernels(kernels)
    if _is_tier(name):
        return name
    tier = _TIERS.get(name)
    if tier is None:
        tier = _build_tier(name)
        _TIERS[name] = tier
    return tier


def _build_tier(name: str):
    from repro.core.kernels.numpy_tier import NumpyKernels

    if name in ("auto", "numba"):
        try:
            from repro.core.kernels import numba_tier

            return numba_tier.build()
        except Exception:
            # Silent degrade: numba missing, JIT failure or a self-check
            # mismatch all land on the (bit-identical) NumPy paths.
            pass
    return NumpyKernels()


def reset_kernels() -> None:
    """Drop all cached tiers (test hook; next resolve re-reads the env)."""
    _TIERS.clear()
