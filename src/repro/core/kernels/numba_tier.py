"""The compiled kernel tier: numba-jitted hot paths behind the tier interface.

Every capability method first checks that the provided rng is one the word
stream can drive (:func:`~repro.core.kernels.wordstream.supported_generator`)
and returns ``None`` otherwise -- the caller then takes its NumPy path, so
an exotic generator degrades per call, not per process.  On the happy path
the method runs the :mod:`~repro.core.kernels.portable` kernel through
:func:`~repro.core.kernels.wordstream.run_kernel` and charges a wrapping
:class:`~repro.rng.counting.CountingRNG` exactly what the NumPy path would
have charged it, so cost accounting is tier-invariant.

:func:`build` is the registry's entry point: it refuses cleanly when numba
is absent and otherwise runs :meth:`NumbaKernels.warm_up`, which both
triggers every JIT compile (so no timed dispatch ever pays it) and
*self-verifies* each kernel bit-for-bit against its NumPy oracle on probe
seeds -- a tier that cannot prove equivalence on this host never becomes
active; the registry falls back to the NumPy tier instead.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.kernels import portable, wordstream

__all__ = ["NumbaKernels", "build"]


def _charge(rng, gen, *, uniforms: int = 0, integers: int = 0, calls: int = 0) -> None:
    """Mirror the CountingRNG charges of the replaced NumPy path."""
    if rng is gen or not hasattr(rng, "uniforms_drawn"):
        return
    rng.uniforms_drawn += int(uniforms)
    rng.integers_drawn += int(integers)
    rng.calls += int(calls)


class NumbaKernels:
    """Compiled implementations of the sampling hot paths.

    Each method returns the result array, or ``None`` when this tier cannot
    handle the request (unsupported bit generator / duck-typed rng); the
    caller must treat ``None`` as "take the NumPy path".
    """

    name = "numba"

    def __init__(self) -> None:
        self.warmup_seconds = 0.0

    # -- capabilities ------------------------------------------------------
    def multivariate_batch(self, rng, draws, sizes):
        """Batched multivariate splitting tree; mirrors the engine's level order."""
        gen = wordstream.supported_generator(rng)
        if gen is None:
            return None
        draws = np.ascontiguousarray(draws, dtype=np.int64)
        sizes = np.ascontiguousarray(sizes, dtype=np.int64)
        out = np.zeros(sizes.shape, dtype=np.int64)
        stats = np.zeros(2, dtype=np.int64)

        def invoke(words, cur):
            return portable.fill_multivariate_batch(words, cur, draws, sizes, out, stats)

        wordstream.run_kernel(gen, 4 * sizes.size + 64, invoke)
        _charge(rng, gen, uniforms=stats[0], calls=stats[1])
        return out

    def sample_matrix(self, rng, rows, cols):
        """Whole communication-matrix row tree; mirrors sample_matrix_batched."""
        gen = wordstream.supported_generator(rng)
        if gen is None:
            return None
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        out = np.zeros((rows.size, cols.size), dtype=np.int64)
        stats = np.zeros(2, dtype=np.int64)

        def invoke(words, cur):
            return portable.fill_matrix(words, cur, rows, cols, out, stats)

        wordstream.run_kernel(gen, 4 * rows.size * cols.size + 256, invoke)
        _charge(rng, gen, uniforms=stats[0], calls=stats[1])
        return out

    def repeat_hypergeometric(self, rng, w, b, t, size):
        """``size`` draws of one ``Generator.hypergeometric(w, b, t)``."""
        gen = wordstream.supported_generator(rng)
        if gen is None:
            return None
        out = np.empty(int(size), dtype=np.int64)
        w, b, t = int(w), int(b), int(t)

        def invoke(words, cur):
            return portable.fill_hyp_repeat(words, cur, w, b, t, out)

        wordstream.run_kernel(gen, 4 * out.size + 64, invoke)
        # The replaced path is one vectorized Generator.hypergeometric call.
        _charge(rng, gen, uniforms=out.size, calls=1)
        return out

    def permutation(self, rng, n):
        """Fisher-Yates permutation of ``range(n)``; mirrors Generator.shuffle."""
        gen = wordstream.supported_generator(rng)
        if gen is None:
            return None
        out = np.empty(int(n), dtype=np.int64)

        def invoke(words, cur):
            return portable.fill_permutation(words, cur, out)

        wordstream.run_kernel(gen, 2 * out.size + 16, invoke)
        _charge(rng, gen, integers=max(out.size - 1, 0), calls=1)
        return out

    # -- warm-up & self-verification ---------------------------------------
    def warm_up(self) -> "NumbaKernels":
        """Compile every kernel and prove it bit-exact against NumPy.

        Raises on any divergence (the registry treats that as "tier
        unavailable"); on success :attr:`warmup_seconds` holds the wall time
        the JIT compiles took, for repatriation through the cost records.
        """
        start = time.perf_counter()
        self._verify()
        self.warmup_seconds = time.perf_counter() - start
        return self

    def _verify(self) -> None:
        from repro.core import hypergeometric
        from repro.core.engine import SamplerEngine

        oracle_engine = SamplerEngine("auto", kernels="numpy")

        def pair(seed):
            return (
                np.random.Generator(np.random.PCG64(seed)),
                np.random.Generator(np.random.PCG64(seed)),
            )

        def check_stream(g1, g2, what):
            if not np.array_equal(g1.random(4), g2.random(4)):
                raise AssertionError(f"kernel self-check: stream diverged after {what}")

        # Permutation vs Generator.shuffle (odd size exercises the carried
        # uint32 half-word buffer across the follow-up stream check).
        for n in (1, 2, 13, 257):
            g1, g2 = pair(1000 + n)
            perm = self.permutation(g1, n)
            ref = np.arange(n)
            g2.shuffle(ref)
            if not np.array_equal(perm, ref):
                raise AssertionError("kernel self-check: permutation mismatch")
            check_stream(g1, g2, "permutation")

        # Repeated single-parameter draws vs the vectorized kernel call.
        for w, b, t in ((30, 40, 20), (500, 300, 11), (8, 9, 4)):
            g1, g2 = pair(2000 + t)
            mine = self.repeat_hypergeometric(g1, w, b, t, 40)
            ref = g2.hypergeometric(w, b, t, 40)
            if not np.array_equal(mine, ref):
                raise AssertionError("kernel self-check: repeat_hypergeometric mismatch")
            check_stream(g1, g2, "repeat_hypergeometric")

        # Multivariate splitting tree vs the NumPy-tier engine.
        g1, g2 = pair(3000)
        sizes = np.array([[5, 0, 7, 3, 11], [2, 2, 2, 2, 2]], dtype=np.int64)
        draws = np.array([14, 6], dtype=np.int64)
        mine = self.multivariate_batch(g1, draws, sizes)
        ref = oracle_engine.multivariate_batch(draws, sizes, g2)
        if not np.array_equal(mine, ref):
            raise AssertionError("kernel self-check: multivariate_batch mismatch")
        check_stream(g1, g2, "multivariate_batch")

        # Whole matrix tree vs the NumPy-tier engine.
        g1, g2 = pair(4000)
        rows = np.array([7, 5, 3, 9, 0, 12], dtype=np.int64)
        cols = np.array([6, 6, 6, 6, 6, 6], dtype=np.int64)
        mine = self.sample_matrix(g1, rows, cols)
        ref = oracle_engine.sample_matrix_batched(rows, cols, g2)
        if not np.array_equal(mine, ref):
            raise AssertionError("kernel self-check: sample_matrix mismatch")
        check_stream(g1, g2, "sample_matrix")

        # Blocked scalar samplers vs the library's per-draw loops.
        for concrete, (t, w, b) in (("hin", (5, 20, 30)), ("hrua", (40, 60, 50))):
            g1, g2 = pair(5000 + t)
            scalar = hypergeometric.sample_hin if concrete == "hin" else hypergeometric.sample_hrua
            mine, _used = wordstream.blocked_scalar_many(g1, concrete, t, w, b, 30)
            ref = np.array([scalar(t, w, b, g2) for _ in range(30)], dtype=np.int64)
            if not np.array_equal(mine, ref):
                raise AssertionError(f"kernel self-check: blocked {concrete} mismatch")
            check_stream(g1, g2, f"blocked {concrete}")


def build() -> NumbaKernels:
    """Construct, compile and self-verify the numba tier (raises if unable)."""
    if not portable.HAVE_NUMBA:
        raise RuntimeError("numba is not importable; compiled tier unavailable")
    return NumbaKernels().warm_up()
