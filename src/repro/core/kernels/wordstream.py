"""Feed compiled kernels from a NumPy ``BitGenerator`` -- and keep it aligned.

The compiled tier never calls back into ``numpy.random``.  Instead it runs a
kernel over a buffer of raw ``uint64`` words pre-drawn from the *same* bit
generator the NumPy code path would have consumed, then advances the real
generator by exactly the number of words the kernel used.  Afterwards the
generator state is indistinguishable from having run the NumPy path, so the
two tiers can interleave freely within one seeded run.

The protocol (:func:`run_kernel`):

1. checkpoint the bit-generator state;
2. draw ``estimate`` raw words with ``random_raw`` and hand them to the
   kernel together with the checkpointed 32-bit half-word buffer
   (``has_uint32``/``uinteger``);
3. if the kernel exhausts the buffer it returns ``-1`` *without* a partial
   result -- restore the checkpoint and retry with twice the words;
4. on success, restore the checkpoint, ``random_raw`` exactly the consumed
   count to advance the stream, and patch the kernel's final half-word
   buffer back into the state.

Only bit generators whose ``random_raw`` yields the full 64-bit native
output and whose state dict carries the ``has_uint32``/``uinteger`` buffer
are eligible (:func:`supported_generator`); anything else -- e.g. MT19937,
whose raw words are 32-bit -- makes the tier decline so callers fall back
to the NumPy path.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import portable

__all__ = ["supported_generator", "run_kernel", "blocked_scalar_many"]

#: Bit generators whose ``random_raw`` emits the same 64-bit words their
#: ``next_uint64`` consumes (with 32-bit requests served from the buffered
#: high half).  MT19937 is deliberately absent: its raw stream is 32-bit.
_SUPPORTED_BITGENS = frozenset({"PCG64", "PCG64DXSM", "Philox", "SFC64"})


def supported_generator(rng) -> "np.random.Generator | None":
    """The underlying ``Generator`` if the kernels can drive it, else ``None``.

    Unwraps a :class:`~repro.rng.counting.CountingRNG` (the caller remains
    responsible for charging its counters); plain duck-typed rng objects and
    generators over unsupported bit generators yield ``None``.
    """
    gen = getattr(rng, "generator", rng)
    if not isinstance(gen, np.random.Generator):
        return None
    bitgen = gen.bit_generator
    if type(bitgen).__name__ not in _SUPPORTED_BITGENS:
        return None
    try:
        state = bitgen.state
    except Exception:  # pragma: no cover - defensive
        return None
    if "has_uint32" not in state or "uinteger" not in state:
        return None
    return gen


def run_kernel(gen: np.random.Generator, estimate: int, invoke) -> int:
    """Run ``invoke(words, cur)`` over pre-drawn words; return words consumed.

    ``invoke`` must follow the kernel contract of
    :mod:`repro.core.kernels.portable`: read words through the ``cur``
    cursor, return ``0`` on success and ``-1`` on buffer exhaustion without
    having produced a partial result.  The generator ends exactly where the
    equivalent sequence of ``Generator`` method calls would have left it.
    """
    bitgen = gen.bit_generator
    checkpoint = bitgen.state
    n = max(int(estimate), 8)
    while True:
        words = np.asarray(bitgen.random_raw(n), dtype=np.uint64)
        cur = np.zeros(3, dtype=np.int64)
        cur[1] = int(checkpoint["has_uint32"])
        cur[2] = int(checkpoint["uinteger"])
        status = invoke(words, cur)
        bitgen.state = checkpoint
        if status == 0:
            consumed = int(cur[0])
            if consumed:
                bitgen.random_raw(consumed)
            state = bitgen.state
            state["has_uint32"] = int(cur[1])
            state["uinteger"] = int(cur[2])
            bitgen.state = state
            return consumed
        n *= 2


def blocked_scalar_many(gen: np.random.Generator, concrete: str, t: int, w: int, b: int, size: int):
    """``size`` draws of the library's scalar HIN/HRUA sampler in one block.

    Returns ``(out, used)``: the variates and the per-draw uniform counts
    (what each draw would have pulled through ``rng.random()`` in the scalar
    loop).  Parameters must already be validated and non-degenerate.
    """
    out = np.empty(size, dtype=np.int64)
    used = np.empty(size, dtype=np.int64)
    if concrete == "hin":
        # At most min(t, min(w, b) + 1) uniforms per draw; typical is close
        # to that bound, so start there and let run_kernel double on demand.
        per_draw = min(t, min(w, b) + 1)
        estimate = size * per_draw + 16

        def invoke(words, cur):
            return portable.fill_hin_repeat(words, cur, t, w, b, out, used)

    else:
        # HRUA consumes two words per rejection round, ~1.2 rounds expected.
        estimate = 4 * size + 64

        def invoke(words, cur):
            return portable.fill_hrua_repeat(words, cur, t, w, b, out, used)

    run_kernel(gen, estimate, invoke)
    return out, used
