"""Sequential sampling of the communication matrix (Algorithms 3 and 4).

Problem 2 of the paper: given source block sizes ``m = (m_0, ..., m_{p-1})``
and target block sizes ``m' = (m'_0, ..., m'_{p'-1})`` with equal totals,
sample a matrix ``A = (a_ij)`` with row sums ``m_i`` and column sums ``m'_j``
such that each admissible matrix appears with the probability induced by a
uniform random permutation of the ``n`` underlying items (see
:mod:`repro.core.matrix_distribution` for that law).

Two equivalent samplers:

``sample_matrix_sequential``
    Algorithm 3: peel one row at a time; conditionally on the rows already
    fixed, the next row follows a multivariate hypergeometric distribution
    over the remaining column capacities (Proposition 6 with the split index
    ``i_1 = p - 1``).

``sample_matrix_recursive``
    Algorithm 4 (``RecMat``): split the rows into two groups, sample how the
    column capacities divide between the groups (one multivariate
    hypergeometric draw), recurse into each group.  This is the formulation
    the parallel algorithms distribute.

Both cost ``O(p * p')`` basic operations and ``O(p * p')`` calls to the
univariate sampler ``h(,)`` (Proposition 7).
"""

from __future__ import annotations

import numpy as np

from repro.core import multivariate
from repro.rng.streams import default_rng
from repro.util.errors import ValidationError
from repro.util.validation import check_same_total, check_vector_of_nonnegative_ints

__all__ = [
    "sample_matrix",
    "sample_matrix_sequential",
    "sample_matrix_recursive",
    "is_valid_communication_matrix",
    "check_matrix",
]


def _validate_marginals(row_sums, col_sums) -> tuple[np.ndarray, np.ndarray, int]:
    rows = check_vector_of_nonnegative_ints(row_sums, "row_sums")
    cols = check_vector_of_nonnegative_ints(col_sums, "col_sums")
    total = check_same_total(rows, cols, "row_sums", "col_sums")
    return rows, cols, total


def is_valid_communication_matrix(matrix, row_sums, col_sums) -> bool:
    """True when ``matrix`` is non-negative with the prescribed marginals.

    This is exactly the pair of conditions (2) and (3) of the paper.
    """
    rows, cols, _ = _validate_marginals(row_sums, col_sums)
    arr = np.asarray(matrix)
    if arr.shape != (rows.size, cols.size):
        return False
    if arr.size and (np.any(arr < 0) or not np.issubdtype(arr.dtype, np.integer)):
        return False
    return bool(
        np.array_equal(arr.sum(axis=1), rows) and np.array_equal(arr.sum(axis=0), cols)
    )


def check_matrix(matrix, row_sums, col_sums) -> np.ndarray:
    """Validate a communication matrix, returning it as an ``int64`` array.

    Raises :class:`~repro.util.errors.ValidationError` when the matrix shape,
    sign or marginals are wrong.
    """
    rows, cols, _ = _validate_marginals(row_sums, col_sums)
    arr = np.asarray(matrix)
    if arr.dtype.kind == "f":
        if not np.all(arr == np.floor(arr)):
            raise ValidationError("communication matrices must be integer valued")
        arr = arr.astype(np.int64)
    arr = arr.astype(np.int64)
    if arr.shape != (rows.size, cols.size):
        raise ValidationError(
            f"matrix shape {arr.shape} does not match ({rows.size}, {cols.size})"
        )
    if arr.size and arr.min() < 0:
        raise ValidationError("communication matrices must be non-negative")
    if not np.array_equal(arr.sum(axis=1), rows):
        raise ValidationError("row sums do not match the source block sizes (equation (2))")
    if not np.array_equal(arr.sum(axis=0), cols):
        raise ValidationError("column sums do not match the target block sizes (equation (3))")
    return arr


def sample_matrix_sequential(row_sums, col_sums, rng=None, *, method: str = "auto") -> np.ndarray:
    """Algorithm 3: sample the communication matrix row by row.

    Row ``i``, conditioned on the rows already drawn, is distributed as
    ``MVH(m_i, remaining column capacities)``; after drawing it the
    capacities shrink accordingly.  (The paper phrases the same step through
    the complementary vector ``toUp`` -- the amount of each capacity reserved
    for the rows still to come -- which has the identical law; we draw the
    row directly.)

    Cost: ``O(p * p')`` operations and hypergeometric samples.
    """
    rows, cols, _ = _validate_marginals(row_sums, col_sums)
    rng = default_rng(rng) if not hasattr(rng, "random") else rng

    matrix = np.zeros((rows.size, cols.size), dtype=np.int64)
    if rows.size == 0 or cols.size == 0:
        # Degenerate tiles arise in Algorithm 6 when a dimension range empties
        # out; the only admissible matrix is the empty/all-zero one.
        return matrix
    remaining = cols.copy()
    # The paper iterates i = p-1, ..., 0; the order is immaterial for the law
    # (Proposition 6 applies to any split), we keep the paper's order.
    for i in range(rows.size - 1, -1, -1):
        row = multivariate.sample_sequential(int(rows[i]), remaining, rng, method=method)
        matrix[i, :] = row
        remaining -= row
    return matrix


def sample_matrix_recursive(
    row_sums,
    col_sums,
    rng=None,
    *,
    method: str = "auto",
    leaf_rows: int = 1,
) -> np.ndarray:
    """Algorithm 4 (``RecMat``): sample the matrix by recursive row splitting.

    The rows ``[lo, hi)`` with current column capacities ``caps`` are split at
    ``q = (lo + hi) // 2``: one multivariate hypergeometric draw decides how
    much of each capacity goes to the upper half (``toUp``), the rest goes to
    the lower half (``toLo``), and both halves recurse independently
    (Proposition 6 guarantees this factorisation).

    ``leaf_rows`` controls when the recursion falls back to the sequential
    sampler; the default of 1 follows the paper's pseudo-code (a single row
    is itself a multivariate hypergeometric sample).
    """
    rows, cols, _ = _validate_marginals(row_sums, col_sums)
    rng = default_rng(rng) if not hasattr(rng, "random") else rng
    leaf_rows = max(1, int(leaf_rows))

    matrix = np.zeros((rows.size, cols.size), dtype=np.int64)
    if rows.size == 0 or cols.size == 0:
        return matrix

    def recurse(lo: int, hi: int, caps: np.ndarray) -> None:
        width = hi - lo
        if width == 1:
            matrix[lo, :] = caps
            return
        if width <= leaf_rows:
            matrix[lo:hi, :] = sample_matrix_sequential(rows[lo:hi], caps, rng, method=method)
            return
        q = (lo + hi) // 2
        upper_total = int(rows[q:hi].sum())
        to_up = multivariate.sample_sequential(upper_total, caps, rng, method=method)
        to_lo = caps - to_up
        recurse(lo, q, to_lo)
        recurse(q, hi, to_up)

    recurse(0, rows.size, cols.copy())
    return matrix


def sample_matrix(
    row_sums,
    col_sums,
    rng=None,
    *,
    method: str = "auto",
    strategy: str = "sequential",
    kernels=None,
) -> np.ndarray:
    """Sample a communication matrix (Problem 2).

    ``strategy`` is ``"sequential"`` (Algorithm 3, default), ``"recursive"``
    (Algorithm 4) or ``"batched"`` (Algorithm 4 evaluated level by level
    with the vectorized kernels of the
    :class:`~repro.core.engine.SamplerEngine`: ``O(log p * log p')`` NumPy
    calls instead of ``p * p'`` scalar Python calls); all three produce the
    same distribution.  ``kernels`` selects the kernel tier of the
    ``"batched"`` strategy (see :mod:`repro.core.kernels`; bit-identical
    across tiers); the scalar strategies draw one variate at a time and
    ignore it.
    """
    if strategy == "sequential":
        return sample_matrix_sequential(row_sums, col_sums, rng, method=method)
    if strategy == "recursive":
        return sample_matrix_recursive(row_sums, col_sums, rng, method=method)
    if strategy == "batched":
        from repro.core.engine import get_engine

        return get_engine(method, kernels=kernels).sample_matrix_batched(
            row_sums, col_sums, rng
        )
    raise ValidationError(
        f"unknown strategy {strategy!r}; use 'sequential', 'recursive' or 'batched'"
    )
