"""The paper's contribution: uniform random permutations in a coarse grained setting.

Modules
-------
:mod:`repro.core.blocks`
    Block distributions of a vector over processors (Figure 1 of the paper).
:mod:`repro.core.hypergeometric`
    The univariate hypergeometric distribution ``h(t, w, b)``: exact pmf and
    the HIN / HRUA* samplers (Section 3).
:mod:`repro.core.multivariate`
    The multivariate hypergeometric distribution and Algorithm 2.
:mod:`repro.core.commmatrix`
    Sequential sampling of the communication matrix (Algorithms 3 and 4).
:mod:`repro.core.matrix_distribution`
    The exact law of the communication matrix and its structural properties
    (Propositions 3-6).
:mod:`repro.core.parallel_matrix`
    Parallel sampling of the communication matrix (Algorithms 5 and 6,
    Theorem 2).
:mod:`repro.core.permutation`
    Algorithm 1 -- the full coarse-grained uniform random permutation
    (Theorem 1).
:mod:`repro.core.api`
    Convenience wrappers re-exported at the package top level.
"""

from repro.core.api import sample_communication_matrix
from repro.core.blocks import BlockDistribution
from repro.core.commmatrix import (
    check_matrix,
    is_valid_communication_matrix,
    sample_matrix,
    sample_matrix_recursive,
    sample_matrix_sequential,
)
from repro.core.parallel_matrix import (
    algorithm5_program,
    algorithm6_program,
    root_scatter_program,
    sample_matrix_parallel,
)
from repro.core.permutation import (
    parallel_permutation_program,
    permute_distributed,
    random_permutation,
    random_permutation_indices,
)

__all__ = [
    "BlockDistribution",
    "sample_communication_matrix",
    "sample_matrix",
    "sample_matrix_sequential",
    "sample_matrix_recursive",
    "is_valid_communication_matrix",
    "check_matrix",
    "algorithm5_program",
    "algorithm6_program",
    "root_scatter_program",
    "sample_matrix_parallel",
    "parallel_permutation_program",
    "permute_distributed",
    "random_permutation",
    "random_permutation_indices",
]
