"""Parallel sampling of the communication matrix (Algorithms 5 and 6).

Both algorithms run as SPMD programs on a :class:`~repro.pro.PROMachine`
with ``p`` processors and produce, on every processor ``P_i``, the ``i``-th
row of a communication matrix drawn from the exact law of Problem 2.  They
differ in their per-processor cost:

``algorithm5_program``
    The paper's Algorithm 5.  The processor range is halved repeatedly; at
    every split the *head* of the range samples how the current column
    capacities divide between the two halves (one multivariate
    hypergeometric draw over a length-``p'`` vector) and ships the upper
    half's share to the new head.  Every split moves ``Theta(p')`` words and
    performs ``Theta(p')`` work on the head, and a processor participates in
    ``Theta(log p)`` splits, giving ``Theta(p log p)`` time, communication
    and ``h(,)`` calls per processor (Proposition 8) -- a log factor away
    from optimal.

``algorithm6_program``
    The paper's Algorithm 6.  The matrix is split along *alternating*
    dimensions (rows, then columns, then rows, ...) while the processor
    range is halved, so the marginal vectors a head handles shrink
    geometrically.  After ``log p`` rounds every processor owns the row- and
    column-marginals of a roughly ``sqrt(p) x sqrt(p)`` tile, samples that
    tile sequentially (Section 4) and a final redistribution hands row ``i``
    to processor ``P_i``.  Total cost ``Theta(p)`` per processor
    (Proposition 9) -- the optimal grain claimed by Theorem 2.

A root-based program (``root_scatter_program``) is also provided: processor
0 samples the whole matrix with Algorithm 3 and scatters the rows.  That is
what the paper's own experiments used (Section 6: "Part of the algorithms
(sequential sampling of the matrix, only) were implemented") and it is the
right choice when ``p^2`` is negligible compared to ``n/p``.
"""

from __future__ import annotations

import numpy as np

from repro.core import commmatrix, multivariate
from repro.pro.machine import PROMachine, ProcessorContext, RunResult, resolve_machine
from repro.util.errors import ValidationError
from repro.util.validation import check_same_total, check_vector_of_nonnegative_ints

__all__ = [
    "algorithm5_program",
    "algorithm6_program",
    "root_scatter_program",
    "final_tile_ranges",
    "sample_matrix_parallel",
    "resolve_tile_strategy",
    "MATRIX_ALGORITHMS",
    "TILE_STRATEGIES",
]

#: Recognised local-tile sampling strategies of alg6's step 3 and the root
#: program.  ``"auto"`` (the default) resolves to the vectorized batched
#: engine kernels whenever the requested hypergeometric method permits them
#: and to the sequential sampler otherwise.
TILE_STRATEGIES = ("auto", "sequential", "recursive", "batched")


def resolve_tile_strategy(tile_strategy: str, method: str) -> str:
    """Resolve ``"auto"`` to a concrete local-tile sampling strategy.

    The batched :class:`~repro.core.engine.SamplerEngine` kernels are the
    default hot path (``O(log p * log p')`` vectorized NumPy calls instead
    of ``p * p'`` scalar Python calls, same law -- the statistical suite is
    calibrated against them), but they always draw through NumPy's
    vectorized sampler; when the caller explicitly requests a scalar method
    (``"hin"``/``"hrua"``), ``"auto"`` falls back to the sequential tile
    sampler so that the request is honoured rather than rejected.
    """
    if tile_strategy not in TILE_STRATEGIES:
        raise ValidationError(
            f"unknown tile_strategy {tile_strategy!r}; choose from {TILE_STRATEGIES}"
        )
    if tile_strategy != "auto":
        return tile_strategy
    return "batched" if method in ("auto", "numpy") else "sequential"


def _note_kernel_tier(ctx: ProcessorContext, kernels):
    """Resolve the kernel tier and record it in this rank's cost record."""
    from repro.core.kernels import resolve_kernels

    tier = resolve_kernels(kernels)
    ctx.cost.note_kernel_tier(tier.name, tier.warmup_seconds)
    return tier


def _validate_inputs(ctx: ProcessorContext, row_sums, col_sums) -> tuple[np.ndarray, np.ndarray]:
    rows = check_vector_of_nonnegative_ints(row_sums, "row_sums")
    cols = check_vector_of_nonnegative_ints(col_sums, "col_sums")
    check_same_total(rows, cols, "row_sums", "col_sums")
    if rows.size != ctx.n_procs:
        raise ValidationError(
            f"row_sums must have one entry per processor ({ctx.n_procs}), got {rows.size}"
        )
    return rows, cols


# ----------------------------------------------------------------------------
# Algorithm 5: head-splitting with a log factor
# ----------------------------------------------------------------------------
def algorithm5_program(
    ctx: ProcessorContext, row_sums, col_sums, *, method: str = "auto", kernels=None
) -> np.ndarray:
    """SPMD program: return row ``ctx.rank`` of a random communication matrix.

    Implements Algorithm 5 of the paper.  ``row_sums`` must have length
    ``ctx.n_procs`` (one source block per processor); ``col_sums`` may have
    any length ``p'``.  Only the *values* on processor ``ctx.rank`` are used
    for the processor's own decisions, but every processor is given the full
    (O(p)-sized) marginal vectors, as the PRO model permits.  ``kernels`` is
    accepted for program-signature uniformity and recorded in the cost
    record; the algorithm itself draws through the scalar samplers.
    """
    _note_kernel_tier(ctx, kernels)
    rows, cols = _validate_inputs(ctx, row_sums, col_sums)
    rank, p = ctx.rank, ctx.n_procs

    beta = cols.copy() if rank == 0 else None
    low, high = 0, p
    iteration = 0
    while high - low > 1:
        mid = (low + high) // 2
        if rank == low:
            # Mass of the upper half of the processor range [mid, high).
            upper_mass = int(rows[mid:high].sum())
            to_up = multivariate.sample_sequential(upper_mass, beta, ctx.rng, method=method)
            ctx.comm.send(to_up, mid, tag=("alg5", iteration))
            beta = beta - to_up
            ctx.log_compute(beta.size)
        elif rank == mid:
            beta = ctx.comm.recv(low, tag=("alg5", iteration))
            ctx.log_compute(beta.size)
        if rank >= mid:
            low = mid
        else:
            high = mid
        iteration += 1

    # beta now holds the column capacities reserved for the singleton range
    # {rank}, i.e. the rank-th row of the matrix.
    return beta


# ----------------------------------------------------------------------------
# Algorithm 6: alternating-dimension splitting, optimal grain
# ----------------------------------------------------------------------------
def final_tile_ranges(n_procs: int, n_rows: int, n_cols: int) -> list[tuple[int, int, int, int]]:
    """Tile ``(row_lo, row_hi, col_lo, col_hi)`` each processor ends up with.

    The splitting pattern of Algorithm 6 is deterministic (only the sampled
    *values* are random), so every processor can recompute everybody's final
    tile locally; the redistribution step uses this to know exactly whom to
    expect data from.
    """
    tiles = []
    for rank in range(n_procs):
        low, high = 0, n_procs
        dim_lo = [0, 0]
        dim_hi = [n_rows, n_cols]
        split_dim = 0
        while high - low > 1:
            mid = (low + high) // 2
            dim_mid = (dim_lo[split_dim] + dim_hi[split_dim]) // 2
            if rank >= mid:
                low = mid
                dim_lo[split_dim] = dim_mid
            else:
                high = mid
                dim_hi[split_dim] = dim_mid
            split_dim = 1 - split_dim
        tiles.append((dim_lo[0], dim_hi[0], dim_lo[1], dim_hi[1]))
    return tiles


def algorithm6_program(
    ctx: ProcessorContext,
    row_sums,
    col_sums,
    *,
    method: str = "auto",
    tile_strategy: str = "auto",
    kernels=None,
) -> np.ndarray:
    """SPMD program: return row ``ctx.rank`` of a random communication matrix.

    Implements Algorithm 6 of the paper: alternating-dimension splitting of
    the marginals (steps 1-2), sampling of the resulting tile (step 3) and
    redistribution of the rows to their owners (step 4).  ``tile_strategy``
    selects the step-3 sampler (``"auto"`` -- the default, resolving to the
    vectorized batched engine kernel, the hot path for large tiles --
    ``"sequential"``, ``"recursive"`` or ``"batched"``); all choices draw
    from the same law.  ``kernels`` selects the kernel tier the step-3
    batched sampler runs on (bit-identical across tiers) and is recorded in
    the rank's cost record.
    """
    tile_strategy = resolve_tile_strategy(tile_strategy, method)
    kernels = _note_kernel_tier(ctx, kernels)
    rows, cols = _validate_inputs(ctx, row_sums, col_sums)
    rank, p = ctx.rank, ctx.n_procs

    # beta[d] is the marginal vector of dimension d (0 = rows, 1 = columns)
    # restricted to this processor's current range of that dimension; only
    # the head of a processor range holds actual data.
    beta: list[np.ndarray | None] = [None, None]
    if rank == 0:
        beta[0] = rows.copy()
        beta[1] = cols.copy()

    split_dim, other_dim = 0, 1  # the paper's Delta and Nabla
    low, high = 0, p
    dim_lo = [0, 0]
    dim_hi = [rows.size, cols.size]
    iteration = 0

    while high - low > 1:
        mid = (low + high) // 2
        dim_mid = (dim_lo[split_dim] + dim_hi[split_dim]) // 2
        if rank == low:
            offset = dim_mid - dim_lo[split_dim]
            upper_marginals = beta[split_dim][offset:]
            upper_mass = int(upper_marginals.sum())
            ctx.comm.send(upper_marginals, mid, tag=("alg6-delta", iteration))
            to_up = multivariate.sample_sequential(
                upper_mass, beta[other_dim], ctx.rng, method=method
            )
            ctx.comm.send(to_up, mid, tag=("alg6-nabla", iteration))
            beta[other_dim] = beta[other_dim] - to_up
            beta[split_dim] = beta[split_dim][:offset]
            ctx.log_compute(upper_marginals.size + to_up.size)
        elif rank == mid:
            beta[split_dim] = ctx.comm.recv(low, tag=("alg6-delta", iteration))
            beta[other_dim] = ctx.comm.recv(low, tag=("alg6-nabla", iteration))
            ctx.log_compute(beta[split_dim].size + beta[other_dim].size)
        if rank >= mid:
            low = mid
            dim_lo[split_dim] = dim_mid
        else:
            high = mid
            dim_hi[split_dim] = dim_mid
        split_dim, other_dim = other_dim, split_dim
        iteration += 1

    # Step 3: sample this processor's tile sequentially from its marginals.
    row_lo, row_hi = dim_lo[0], dim_hi[0]
    col_lo, col_hi = dim_lo[1], dim_hi[1]
    if beta[0] is None:
        beta[0] = np.zeros(row_hi - row_lo, dtype=np.int64)
    if beta[1] is None:
        beta[1] = np.zeros(col_hi - col_lo, dtype=np.int64)
    tile = commmatrix.sample_matrix(
        beta[0], beta[1], ctx.rng, method=method, strategy=tile_strategy, kernels=kernels
    )
    ctx.log_compute(tile.size)

    # Step 4: redistribute so that processor i receives the full row i.
    tiles = final_tile_ranges(p, rows.size, cols.size)
    for dest in range(row_lo, row_hi):
        ctx.comm.send(
            (col_lo, tile[dest - row_lo, :]), dest, tag=("alg6-redist", 0)
        )
    my_row = np.zeros(cols.size, dtype=np.int64)
    for owner, (r_lo, r_hi, c_lo, c_hi) in enumerate(tiles):
        if r_lo <= rank < r_hi:
            col_offset, piece = ctx.comm.recv(owner, tag=("alg6-redist", 0))
            my_row[col_offset:col_offset + piece.size] = piece
    return my_row


# ----------------------------------------------------------------------------
# Root-based sampling (what the paper's experiments used)
# ----------------------------------------------------------------------------
def root_scatter_program(
    ctx: ProcessorContext,
    row_sums,
    col_sums,
    *,
    method: str = "auto",
    tile_strategy: str = "auto",
    kernels=None,
) -> np.ndarray:
    """SPMD program: processor 0 samples the whole matrix, rows are scattered.

    Per-processor cost ``O(p^2)`` on the root and ``O(p)`` elsewhere; fine as
    long as ``p^2`` is small compared with the local data size ``n / p``
    (exactly the regime of the paper's experiments).  ``tile_strategy``
    selects the root's sampler (``"auto"`` default -- the vectorized
    ``"batched"`` engine kernel -- ``"sequential"`` or ``"recursive"``) and
    ``kernels`` the kernel tier it runs on (bit-identical across tiers).
    """
    tile_strategy = resolve_tile_strategy(tile_strategy, method)
    kernels = _note_kernel_tier(ctx, kernels)
    rows, cols = _validate_inputs(ctx, row_sums, col_sums)
    if ctx.rank == 0:
        matrix = commmatrix.sample_matrix(
            rows, cols, ctx.rng, method=method, strategy=tile_strategy, kernels=kernels
        )
        ctx.log_compute(matrix.size)
        row_payloads = [matrix[i, :] for i in range(ctx.n_procs)]
    else:
        row_payloads = None
    return ctx.comm.scatter(row_payloads, root=0)


MATRIX_ALGORITHMS = {
    "alg5": algorithm5_program,
    "alg6": algorithm6_program,
    "root": root_scatter_program,
}


# ----------------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------------
def sample_matrix_parallel(
    row_sums,
    col_sums=None,
    *,
    machine: PROMachine | None = None,
    algorithm: str = "alg6",
    backend: str | object | None = None,
    transport: str | object | None = None,
    persistent: bool | None = None,
    schedule_seed: int | None = None,
    kernels: str | None = None,
    retry=None,
    telemetry=None,
    seed=None,
    method: str = "auto",
    tile_strategy: str = "auto",
) -> tuple[np.ndarray, RunResult]:
    """Sample a communication matrix on a PRO machine and assemble it.

    Parameters
    ----------
    row_sums:
        Source block sizes; their number fixes the number of processors
        (one source block per processor).
    col_sums:
        Target block sizes (defaults to ``row_sums``).
    machine:
        Optional pre-configured :class:`~repro.pro.PROMachine`; when omitted
        a machine with ``len(row_sums)`` processors is built on ``backend``.
    algorithm:
        ``"alg5"``, ``"alg6"`` (default) or ``"root"``.
    backend:
        Execution backend name (``"inline"``, ``"thread"``, ``"process"`` or
        any registered name) for the machine built when ``machine`` is
        omitted; mutually exclusive with ``machine``.  For a fixed ``seed``
        the sampled matrix is identical across backends.
    transport:
        Payload transport of the process backend (``"sharedmem"`` or
        ``"pickle"``); rejected for backends without a transport option and
        for pre-configured machines.  Seed-invariant like ``backend``.
    persistent:
        Standing-fleet control of the process backend, tri-state.  The
        default (``None``) already runs **warm**: with
        ``backend="process"`` the call borrows a keyed standing worker
        fleet from the process-wide default pool cache
        (:func:`repro.pro.backends.pool.get_default_pool`), so repeated
        calls reuse the same ``p`` rank processes instead of spawning
        fresh ones.  ``persistent=False`` forces the old cold path
        (fresh processes for this call only); ``True`` makes the warm
        request explicit.  Rejected for backends without the option and
        for pre-configured machines.  Seed-invariant like ``backend``.
    schedule_seed:
        Rank-interleaving seed of the sim backend (``backend="sim"``):
        each value explores a different deterministic schedule, every one
        of which must yield the same matrix (results are
        schedule-invariant).  Rejected for backends without the option
        and for pre-configured machines.
    kernels:
        Kernel tier for the sampling hot path
        (``"auto"``/``"numba"``/``"numpy"``; default ``None`` defers to
        ``REPRO_KERNELS``).  Bit-identical across tiers for a fixed seed;
        rejected for pre-configured machines (construct the machine with
        ``kernels=`` instead).
    retry:
        Transient-failure recovery policy: ``None`` (default, fail fast),
        an attempt count, or a
        :class:`~repro.pro.resilience.RetryPolicy` with backoff, deadline
        and a fallback-backend chain.  A recovered call samples the
        matrix bit-identically to a fault-free one (per-rank streams are
        replayed exactly); rejected for pre-configured machines (build
        the machine with ``retry=`` instead).
    telemetry:
        A :class:`~repro.pro.telemetry.Telemetry` recorder collecting one
        :class:`~repro.pro.telemetry.FleetReport` for the run (per-rank
        transport counters, ring geometry, pool/resilience events).
        Collection never perturbs the sampled matrix; rejected for
        pre-configured machines (build the machine with ``telemetry=``
        instead).
    seed:
        Machine seed used when ``machine`` is omitted.
    tile_strategy:
        Local-tile sampler used by ``"alg6"`` (step 3) and ``"root"``:
        ``"auto"`` (default; the vectorized batched engine kernels whenever
        ``method`` permits them), ``"sequential"``, ``"recursive"`` or
        ``"batched"``.

    Returns
    -------
    (matrix, run_result):
        The assembled ``p x p'`` matrix and the
        :class:`~repro.pro.machine.RunResult` with per-processor costs.

    Examples
    --------
    >>> matrix, run = sample_matrix_parallel([6, 6, 6], seed=0)
    >>> matrix.sum(axis=1).tolist()
    [6, 6, 6]
    >>> run.n_procs
    3
    """
    rows = check_vector_of_nonnegative_ints(row_sums, "row_sums")
    cols = rows if col_sums is None else check_vector_of_nonnegative_ints(col_sums, "col_sums")
    check_same_total(rows, cols, "row_sums", "col_sums")
    if algorithm not in MATRIX_ALGORITHMS:
        raise ValidationError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(MATRIX_ALGORITHMS)}"
        )
    owns_machine = machine is None
    machine = resolve_machine(
        rows.size, machine=machine, backend=backend, seed=seed,
        transport=transport, persistent=persistent, schedule_seed=schedule_seed,
        kernels=kernels, retry=retry, telemetry=telemetry,
    )
    if machine.n_procs != rows.size:
        raise ValidationError(
            f"machine has {machine.n_procs} processors but row_sums has {rows.size} entries"
        )
    program = MATRIX_ALGORITHMS[algorithm]
    if algorithm in ("alg6", "root"):
        resolve_tile_strategy(tile_strategy, method)  # reject unknown names early
        extra = {"tile_strategy": tile_strategy}
    elif tile_strategy not in ("auto", "sequential"):
        raise ValidationError(
            f"tile_strategy={tile_strategy!r} only applies to 'alg6' and 'root'; "
            "'alg5' samples no local tile"
        )
    else:
        extra = {}
    try:
        run = machine.run(
            program, rows, cols, method=method,
            kernels=getattr(machine, "kernels", None), **extra,
        )
    finally:
        if owns_machine:
            # Releases call-private resources only: fleets borrowed from
            # the process-wide default pool cache stay warm for the next
            # call (repro.pro.backends.pool owns and reaps those).
            machine.close()
    matrix = np.vstack([np.asarray(row, dtype=np.int64) for row in run.results])
    return matrix, run
