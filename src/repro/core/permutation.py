"""Algorithm 1: the coarse-grained uniform random permutation.

The paper's main algorithm permutes a block-distributed vector in three
supersteps:

1. every processor permutes its local block uniformly at random;
2. a communication matrix ``A`` is sampled from the law of Problem 2
   (sequentially at the root, or in parallel with Algorithm 5/6) and every
   processor ships the first ``a_{i,0}`` items of its shuffled block to
   ``P'_0``, the next ``a_{i,1}`` items to ``P'_1``, and so on -- a single
   irregular all-to-all exchange;
3. every target processor permutes the block it received uniformly at
   random.

Because the local shuffles make the pieces sent between any pair of
processors uniformly random subsets, and the matrix is drawn with exactly
the probability a uniform permutation would induce, the end-to-end result
is a uniform random permutation of the input (Propositions 1 and 2); the
statistical test-suite verifies this exhaustively for small inputs.

The module exposes the SPMD program itself
(:func:`parallel_permutation_program`) plus two front ends:

* :func:`permute_distributed` -- operate on an explicit list of per-processor
  blocks and return the permuted blocks (plus the machine's cost report);
* :func:`random_permutation` / :func:`random_permutation_indices` -- an
  in-memory convenience API that hides the machine completely.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import BlockDistribution
from repro.core.parallel_matrix import MATRIX_ALGORITHMS
from repro.pro.machine import PROMachine, ProcessorContext, RunResult, resolve_machine
from repro.util.errors import ValidationError
from repro.util.validation import (
    check_positive_int,
    check_vector_of_nonnegative_ints,
)

__all__ = [
    "parallel_permutation_program",
    "permute_distributed",
    "random_permutation",
    "random_permutation_indices",
    "local_shuffle",
    "cut_rows",
]


def local_shuffle(values: np.ndarray, rng, kernels=None) -> np.ndarray:
    """Return a uniformly shuffled copy of ``values`` using ``rng``.

    Accepts both plain NumPy generators and
    :class:`~repro.rng.counting.CountingRNG` wrappers; the Fisher-Yates cost
    of ``len(values) - 1`` variates is what the wrapper records.  ``kernels``
    selects the kernel tier (see :mod:`repro.core.kernels`); the compiled
    tier draws the Fisher-Yates permutation with a jitted kernel and gathers
    ``values`` through it -- bit-identical to ``rng.shuffle`` on the same
    seed -- and any tier that declines falls back to the in-place shuffle.
    """
    arr = np.asarray(values)
    if arr.shape[0] <= 1:
        return arr.copy()
    from repro.core.kernels import resolve_kernels

    perm = resolve_kernels(kernels).permutation(rng, arr.shape[0])
    if perm is not None:
        return arr[perm]
    out = arr.copy()
    rng.shuffle(out)
    return out


def cut_rows(values, counts) -> list[np.ndarray]:
    """Cut ``values`` into ``len(counts)`` consecutive pieces -- vectorized.

    The pieces are zero-copy views sized ``counts[0], counts[1], ...`` in
    order (the row-cut step of Algorithm 1's exchange superstep and of the
    external-memory distribution pass).  A single ``cumsum`` plus
    ``np.split`` replaces the per-piece Python slicing loop; the property
    suite checks equivalence against the loop formulation on random
    matrices.
    """
    arr = np.asarray(values)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum()) if counts.size else 0
    if total != arr.shape[0]:
        raise ValidationError(
            f"cut_rows counts sum to {total} but {arr.shape[0]} values were given"
        )
    if counts.size == 0:
        return []
    return np.split(arr, np.cumsum(counts[:-1]))


def parallel_permutation_program(
    ctx: ProcessorContext,
    blocks,
    target_sizes=None,
    *,
    matrix_algorithm: str = "root",
    method: str = "auto",
    kernels=None,
) -> np.ndarray:
    """SPMD program implementing Algorithm 1.

    Parameters
    ----------
    ctx:
        The processor context supplied by the machine.
    blocks:
        Sequence of ``ctx.n_procs`` arrays; processor ``i`` permutes
        ``blocks[i]``.  (Passing the full list mirrors how a driver hands
        each rank its slice of a shared-memory vector; each rank only reads
        its own entry.)
    target_sizes:
        Optional target block sizes ``m'`` (defaults to the source sizes).
    matrix_algorithm:
        ``"root"`` (default; Algorithm 3 at the root and a scatter -- the
        variant used in the paper's experiments), ``"alg5"`` or ``"alg6"``.
    method:
        Hypergeometric sampling method forwarded to the samplers.
    kernels:
        Kernel-tier request (see :mod:`repro.core.kernels`); resolved once
        per rank, recorded in the rank's cost record, and forwarded to the
        shuffles and the matrix program.  Bit-identical across tiers.

    Returns
    -------
    numpy.ndarray
        The block of the permuted vector that lands on this processor.
    """
    if matrix_algorithm not in MATRIX_ALGORITHMS:
        raise ValidationError(
            f"unknown matrix_algorithm {matrix_algorithm!r}; "
            f"choose from {sorted(MATRIX_ALGORITHMS)}"
        )
    if len(blocks) != ctx.n_procs:
        raise ValidationError(
            f"expected one block per processor ({ctx.n_procs}), got {len(blocks)}"
        )

    local = np.asarray(blocks[ctx.rank])
    source_sizes = np.asarray([len(b) for b in blocks], dtype=np.int64)
    if target_sizes is None:
        targets = source_sizes
    else:
        targets = check_vector_of_nonnegative_ints(target_sizes, "target_sizes")
        if targets.size != ctx.n_procs:
            raise ValidationError(
                f"target_sizes must have {ctx.n_procs} entries, got {targets.size}"
            )
        if int(targets.sum()) != int(source_sizes.sum()):
            raise ValidationError(
                "target_sizes must redistribute exactly the items present in the blocks"
            )

    # Resolve the kernel tier once per rank; the cost record carries which
    # tier actually ran here (and its JIT warm-up cost) back to the parent.
    from repro.core.kernels import resolve_kernels

    tier = resolve_kernels(kernels)
    ctx.cost.note_kernel_tier(tier.name, tier.warmup_seconds)

    # Superstep 1: local shuffle.
    shuffled = local_shuffle(local, ctx.rng, kernels=tier)
    ctx.log_compute(len(shuffled))
    ctx.cost.allocate(len(shuffled))
    ctx.comm.barrier()

    # Superstep 2: sample the communication matrix and exchange the data.
    matrix_program = MATRIX_ALGORITHMS[matrix_algorithm]
    my_row = matrix_program(ctx, source_sizes, targets, method=method, kernels=tier)

    pieces = cut_rows(shuffled, my_row)
    received = ctx.comm.alltoallv(pieces)
    ctx.comm.barrier()

    # Superstep 3: concatenate and shuffle locally.
    if received:
        incoming = np.concatenate(received)
    else:  # pragma: no cover - a machine always has >= 1 processor
        incoming = np.empty(0, dtype=local.dtype)
    result = local_shuffle(incoming, ctx.rng, kernels=tier)
    ctx.log_compute(len(result))
    ctx.cost.allocate(len(result))
    return result


# ----------------------------------------------------------------------------
# Front ends
# ----------------------------------------------------------------------------
def permute_distributed(
    blocks,
    *,
    machine: PROMachine | None = None,
    target_sizes=None,
    matrix_algorithm: str = "root",
    method: str = "auto",
    backend: str | object | None = None,
    transport: str | object | None = None,
    persistent: bool | None = None,
    schedule_seed: int | None = None,
    kernels: str | None = None,
    retry=None,
    telemetry=None,
    seed=None,
) -> tuple[list[np.ndarray], RunResult]:
    """Permute a block-distributed vector; return the permuted blocks.

    ``blocks`` is a list with one array per processor.  A machine with
    ``len(blocks)`` processors is created when none is supplied, on
    ``backend`` (``"thread"`` default; ``"process"`` runs one OS process
    per rank and yields bit-identical output for the same seed).
    ``transport`` selects the process backend's payload transport
    (``"sharedmem"`` or ``"pickle"``; also seed-invariant).
    ``persistent`` is tri-state: the default (``None``) already runs
    **warm** -- with ``backend="process"`` the call borrows a keyed
    standing worker fleet from the process-wide default pool cache, so
    repeated calls skip the per-call process spawn -- while ``False``
    forces the cold path (fresh processes for this call) and ``True``
    makes the warm request explicit; all modes are seed-invariant.
    ``schedule_seed`` picks the sim backend's rank interleaving
    (``backend="sim"``; every schedule yields the same blocks).
    ``kernels`` selects the kernel tier each rank runs the sampling hot
    path on (``"auto"``/``"numba"``/``"numpy"``; also seed-invariant --
    the tiers are bit-identical).  ``retry`` (an attempt count or a
    :class:`~repro.pro.resilience.RetryPolicy`) turns on transient-failure
    recovery: crashed ranks are respawned and the run replayed with the
    same per-rank streams, so a recovered call returns blocks
    bit-identical to a fault-free one.  ``telemetry`` (a
    :class:`~repro.pro.telemetry.Telemetry` recorder) collects one
    :class:`~repro.pro.telemetry.FleetReport` for the run -- per-rank
    transport counters, ring geometry, pool/resilience events -- without
    perturbing results.  The returned blocks follow
    ``target_sizes`` (defaulting to the input sizes); the second element
    of the returned pair is the machine's
    :class:`~repro.pro.machine.RunResult`.

    Examples
    --------
    >>> import numpy as np
    >>> blocks = [np.arange(5), np.arange(5, 10)]
    >>> out_blocks, run = permute_distributed(blocks, seed=3)
    >>> sorted(np.concatenate(out_blocks).tolist())
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
    """
    if len(blocks) == 0:
        raise ValidationError("permute_distributed needs at least one block")
    owns_machine = machine is None
    machine = resolve_machine(
        len(blocks), machine=machine, backend=backend, seed=seed,
        transport=transport, persistent=persistent, schedule_seed=schedule_seed,
        kernels=kernels, retry=retry, telemetry=telemetry,
    )
    if machine.n_procs != len(blocks):
        raise ValidationError(
            f"machine has {machine.n_procs} processors but {len(blocks)} blocks were given"
        )
    try:
        run = machine.run(
            parallel_permutation_program,
            [np.asarray(b) for b in blocks],
            target_sizes,
            matrix_algorithm=matrix_algorithm,
            method=method,
            kernels=getattr(machine, "kernels", None),
        )
    finally:
        if owns_machine:
            # Releases call-private resources only: fleets borrowed from
            # the process-wide default pool cache stay warm for the next
            # call (repro.pro.backends.pool owns and reaps those).
            machine.close()
    return run.results, run


def random_permutation(
    values,
    n_procs: int = 4,
    *,
    machine: PROMachine | None = None,
    matrix_algorithm: str = "root",
    method: str = "auto",
    backend: str | object | None = None,
    transport: str | object | None = None,
    persistent: bool | None = None,
    schedule_seed: int | None = None,
    kernels: str | None = None,
    retry=None,
    telemetry=None,
    seed=None,
    distribution: BlockDistribution | None = None,
) -> np.ndarray:
    """Uniformly permute an in-memory vector with the coarse-grained algorithm.

    The vector is cut into ``n_procs`` balanced blocks (or according to
    ``distribution``), permuted by Algorithm 1 on a PRO machine and glued
    back together.  This is the "just permute my array" entry point of the
    library.

    The machine options mirror :func:`permute_distributed`: ``backend``
    picks the execution substrate (``"thread"`` default, ``"process"``,
    ``"sim"``, ``"inline"``), ``transport`` the process backend's payload
    path (``"sharedmem"``/``"pickle"``), ``persistent`` the standing-fleet
    mode (``None`` = warm by default on the process backend via the
    default pool cache, ``False`` = cold spawn, ``True`` = explicit warm),
    ``schedule_seed`` the sim backend's rank interleaving, ``kernels``
    the sampling kernel tier (``"auto"``/``"numba"``/``"numpy"``) and
    ``retry`` the transient-failure recovery policy (an attempt count or
    a :class:`~repro.pro.resilience.RetryPolicy`) and ``telemetry`` a
    :class:`~repro.pro.telemetry.Telemetry` recorder collecting one
    :class:`~repro.pro.telemetry.FleetReport` per run.  A fixed ``seed``
    is bit-identical across every combination of them -- including
    recovered and telemetry-collected runs.

    Examples
    --------
    >>> import numpy as np
    >>> out = random_permutation(np.arange(10), n_procs=3, seed=0)
    >>> sorted(out.tolist())
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValidationError(f"random_permutation expects a 1-D vector, got shape {arr.shape}")
    n_procs = check_positive_int(n_procs, "n_procs")
    if machine is not None:
        n_procs = machine.n_procs
    if distribution is None:
        distribution = BlockDistribution.balanced(arr.shape[0], n_procs)
    if distribution.total != arr.shape[0]:
        raise ValidationError(
            f"distribution covers {distribution.total} items but the vector has {arr.shape[0]}"
        )
    if distribution.n_blocks != n_procs:
        raise ValidationError(
            f"distribution has {distribution.n_blocks} blocks but n_procs is {n_procs}"
        )
    blocks = distribution.split(arr)
    permuted_blocks, _ = permute_distributed(
        blocks,
        machine=machine,
        matrix_algorithm=matrix_algorithm,
        method=method,
        backend=backend,
        transport=transport,
        persistent=persistent,
        schedule_seed=schedule_seed,
        kernels=kernels,
        retry=retry,
        telemetry=telemetry,
        seed=seed,
    )
    sizes = [len(b) for b in permuted_blocks]
    return BlockDistribution(sizes).concatenate(permuted_blocks).astype(arr.dtype, copy=False)


def random_permutation_indices(
    n: int,
    n_procs: int = 4,
    *,
    machine: PROMachine | None = None,
    matrix_algorithm: str = "root",
    backend: str | object | None = None,
    transport: str | object | None = None,
    persistent: bool | None = None,
    schedule_seed: int | None = None,
    kernels: str | None = None,
    retry=None,
    telemetry=None,
    seed=None,
) -> np.ndarray:
    """Sample a uniform permutation of ``0..n-1`` with the parallel algorithm.

    Equivalent to ``random_permutation(np.arange(n), ...)`` and takes the
    same machine options (``backend=``, ``transport=``, ``persistent=`` --
    warm by default on the process backend -- ``schedule_seed=``,
    ``kernels=``, ``retry=`` and ``telemetry=``; a fixed ``seed`` is
    bit-identical across all of them, recovered and telemetry-collected
    runs included); this is the form the statistical uniformity tests
    consume.

    Examples
    --------
    >>> perm = random_permutation_indices(6, n_procs=2, seed=1)
    >>> sorted(perm.tolist())
    [0, 1, 2, 3, 4, 5]
    """
    n = int(n)
    if n < 0:
        raise ValidationError(f"n must be >= 0, got {n}")
    return random_permutation(
        np.arange(n, dtype=np.int64),
        n_procs=n_procs,
        machine=machine,
        matrix_algorithm=matrix_algorithm,
        backend=backend,
        transport=transport,
        persistent=persistent,
        schedule_seed=schedule_seed,
        kernels=kernels,
        retry=retry,
        telemetry=telemetry,
        seed=seed,
    )
