"""The sampler engine: unified method dispatch and batched sampling kernels.

Before this module existed, ``hypergeometric.py``, ``multivariate.py`` and
``commmatrix.py`` each re-implemented the same method-selection logic
("auto" / "hin" / "hrua" / "numpy") and every hypergeometric variate of a
matrix went through a scalar Python call.  The :class:`SamplerEngine`
consolidates both concerns:

* **Method dispatch.**  One engine instance owns the selection policy for
  the univariate sampler (the HIN-below-threshold / HRUA*-above strategy of
  production libraries) and is shared by every entry point via
  :func:`get_engine`.

* **Batched kernels.**  :meth:`SamplerEngine.multivariate_batch` draws many
  independent multivariate hypergeometric vectors at once and
  :meth:`SamplerEngine.sample_matrix_batched` samples a whole communication
  matrix, both driving NumPy's *vectorized* ``Generator.hypergeometric``
  level by level down the balanced binary splitting tree (the recursive
  formulation at the end of Section 4 of the paper, which factorises the
  distribution into independent draws per tree level -- Proposition 6).
  A ``P x P'`` matrix thus costs ``O(log P * log P')`` NumPy kernel calls
  instead of ``P * P'`` interpreted Python calls, which is the hot path of
  Algorithm 6's step 3 and of the sequential baseline.

The batched path samples from exactly the same distribution as the scalar
samplers (every split is an exact hypergeometric draw; the factorisation is
the same one Algorithm 4 uses), but consumes the random stream differently,
so for a fixed seed the batched and scalar paths produce different --
equally valid -- matrices.
"""

from __future__ import annotations

import numpy as np

from repro.rng.streams import default_rng
from repro.util.errors import DistributionError, ValidationError
from repro.util.validation import (
    check_nonnegative_int,
    check_same_total,
    check_vector_of_nonnegative_ints,
)

__all__ = ["SamplerEngine", "get_engine", "VALID_METHODS"]

#: Recognised univariate method names.
VALID_METHODS = ("auto", "hin", "hrua", "numpy")

# Below this (transformed) sample size the inverse method needs fewer
# uniforms than the rejection method on average (mirrors production
# libraries).  This is the single authoritative copy of the threshold.
_HIN_THRESHOLD = 10


def _kernel_rng(rng) -> "np.random.Generator":
    """Coerce ``rng`` into something exposing vectorized ``hypergeometric``."""
    rng = default_rng(rng) if not hasattr(rng, "random") else rng
    if not hasattr(rng, "hypergeometric"):
        raise DistributionError(
            "the provided rng does not expose hypergeometric(); the batched "
            "kernels need a numpy Generator or a CountingRNG wrapper"
        )
    return rng


class SamplerEngine:
    """Hypergeometric sampling engine with one method policy and batched kernels.

    Parameters
    ----------
    method:
        ``"auto"`` (default: HIN below the threshold, HRUA* above),
        ``"hin"``, ``"hrua"`` or ``"numpy"`` (delegate to
        ``Generator.hypergeometric``; handy as an independent oracle).
    hin_threshold:
        Transformed sample size below which ``"auto"`` picks the inverse
        method.
    kernels:
        Kernel-tier request (``"auto"``/``"numba"``/``"numpy"``, a tier
        object, or ``None`` to defer to ``REPRO_KERNELS``); see
        :mod:`repro.core.kernels`.  The batched kernels and
        :meth:`draw_many` consult the resolved tier first and fall back to
        the NumPy paths whenever it declines -- results are bit-identical
        either way.
    """

    def __init__(
        self,
        method: str = "auto",
        *,
        hin_threshold: int = _HIN_THRESHOLD,
        kernels=None,
    ):
        if method not in VALID_METHODS:
            raise ValidationError(
                f"unknown method {method!r}; use auto, hin, hrua or numpy"
            )
        self.method = method
        self.hin_threshold = int(hin_threshold)
        if kernels is not None:
            from repro.core.kernels import normalize_kernels

            normalize_kernels(kernels)  # eager name validation; resolution stays lazy
        self.kernels = kernels

    def _resolve_tier(self):
        # Resolved lazily per call (not cached on the engine) so shared
        # engines honour REPRO_KERNELS changes and reset_kernels() in tests.
        from repro.core.kernels import resolve_kernels

        return resolve_kernels(self.kernels)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SamplerEngine(method={self.method!r})"

    # -- univariate dispatch -------------------------------------------------
    def resolve_method(self, t: int) -> str:
        """The concrete sampler ``"auto"`` selects for ``t`` draws."""
        if self.method != "auto":
            return self.method
        return "hin" if t <= self.hin_threshold else "hrua"

    def draw_nontrivial(self, t: int, w: int, b: int, rng) -> int:
        """One variate of ``h(t, w, b)`` for non-degenerate parameters.

        This is the dispatch core behind :func:`repro.core.hypergeometric.
        sample` (which handles validation, trivial cases and recording);
        ``rng`` must already be a generator-like object.
        """
        from repro.core import hypergeometric  # deferred: hypergeometric imports us lazily

        concrete = self.resolve_method(t)
        if concrete == "numpy":
            if not hasattr(rng, "hypergeometric"):
                raise DistributionError("the provided rng does not expose hypergeometric()")
            return int(rng.hypergeometric(w, b, t))
        if concrete == "hin":
            return hypergeometric.sample_hin(t, w, b, rng)
        return hypergeometric.sample_hrua(t, w, b, rng)

    def draw(self, t: int, w: int, b: int, rng=None) -> int:
        """One variate of ``h(t, w, b)`` with full validation and recording."""
        from repro.core import hypergeometric

        return hypergeometric.sample(t, w, b, rng, method=self.method)

    def draw_many(self, t: int, w: int, b: int, size: int, rng=None) -> np.ndarray:
        """``size`` i.i.d. variates of ``h(t, w, b)`` as an ``int64`` array.

        For the vector-capable methods (``"auto"``, ``"numpy"``) the draws
        are vectorized unconditionally -- one ``Generator.hypergeometric``
        kernel call regardless of how small ``size`` is (there is no
        scalar-loop fallback), with the same trivial-case handling as
        :meth:`_hypergeometric_block` and a
        :class:`~repro.rng.counting.CountingRNG` charged by the broadcast
        size of the call.  The scalar methods (``"hin"``/``"hrua"``) keep
        the loop over :func:`repro.core.hypergeometric.sample`, which is
        the point of requesting them.
        """
        from repro.core import hypergeometric

        if self.method in ("hin", "hrua"):
            return hypergeometric.sample_many(t, w, b, size, rng, method=self.method)
        size = check_nonnegative_int(size, "size")
        t, w, b = hypergeometric._validate_parameters(t, w, b)
        if size == 0:
            return np.empty(0, dtype=np.int64)
        # Scalar parameters need no parameter arrays or masks: resolve the
        # degenerate cases once and draw the rest with a single size=
        # kernel call (the same trivial-case handling, without O(size)
        # temporaries).
        trivial = hypergeometric._trivial_sample(t, w, b)
        if trivial is not None:
            return np.full(size, trivial, dtype=np.int64)
        rng = _kernel_rng(rng)
        result = self._resolve_tier().repeat_hypergeometric(rng, w, b, t, size)
        if result is not None:
            return result
        return np.asarray(rng.hypergeometric(w, b, t, size), dtype=np.int64)

    # -- batched kernels -------------------------------------------------------
    def _check_batched_method(self) -> None:
        # The batched kernels always draw through NumPy's vectorized
        # hypergeometric sampler; silently honouring a request for a
        # specific scalar sampler would defeat the point of asking for one.
        if self.method in ("hin", "hrua"):
            raise ValidationError(
                f"the batched kernels use NumPy's vectorized hypergeometric sampler; "
                f"method={self.method!r} only applies to the scalar strategies "
                "(use method='auto' or 'numpy' with strategy='batched')"
            )

    @staticmethod
    def _hypergeometric_block(rng, ngood: np.ndarray, nbad: np.ndarray, nsample: np.ndarray) -> np.ndarray:
        """Elementwise ``h(nsample, ngood, nbad)`` draws, trivial cases masked.

        Degenerate entries (no draws, an empty colour class, or a draw of the
        whole urn) are resolved deterministically without touching the random
        stream, mirroring the scalar samplers' trivial-case handling.
        """
        full = nsample >= ngood + nbad
        out = np.where(full, ngood, 0).astype(np.int64)
        forced_zero = (ngood == 0) | (nsample == 0)
        forced_all = (nbad == 0) & ~forced_zero & ~full
        out[forced_all] = nsample[forced_all]
        random_mask = ~(full | forced_zero | forced_all)
        if np.any(random_mask):
            out[random_mask] = rng.hypergeometric(
                ngood[random_mask], nbad[random_mask], nsample[random_mask]
            )
        return out

    def multivariate_batch(self, n_draws, class_sizes, rng=None) -> np.ndarray:
        """Draw a batch of independent multivariate hypergeometric vectors.

        ``class_sizes`` is a ``(B, L)`` array; row ``i`` of the result is one
        sample of ``MVH(n_draws[i], class_sizes[i])``.  All ``B`` samples
        share the balanced binary splitting tree over the ``L`` classes, so
        every tree level costs one vectorized ``Generator.hypergeometric``
        call covering all batch rows and all same-level segments at once:
        ``O(log L)`` kernel calls in total.
        """
        self._check_batched_method()
        sizes = np.asarray(class_sizes, dtype=np.int64)
        if sizes.ndim != 2:
            raise ValidationError(
                f"class_sizes must be a (batch, classes) array, got shape {sizes.shape}"
            )
        if np.any(sizes < 0):
            raise ValidationError("class_sizes must be non-negative")
        n_batch, n_classes = sizes.shape
        draws = np.broadcast_to(np.asarray(n_draws, dtype=np.int64), (n_batch,)).copy()
        if np.any(draws < 0):
            raise ValidationError("n_draws must be non-negative")
        if np.any(draws > sizes.sum(axis=1)):
            raise ValidationError("cannot draw more balls than an urn contains")
        if n_classes == 0:
            if np.any(draws):
                raise ValidationError("cannot draw from an urn with no classes")
            return np.zeros((n_batch, 0), dtype=np.int64)
        rng = _kernel_rng(rng)
        compiled = self._resolve_tier().multivariate_batch(rng, draws, sizes)
        if compiled is not None:
            return compiled

        counts = np.zeros((n_batch, n_classes), dtype=np.int64)
        prefix = np.zeros((n_batch, n_classes + 1), dtype=np.int64)
        np.cumsum(sizes, axis=1, out=prefix[:, 1:])

        # Every batch row shares the segment structure (same L), so segments
        # are tracked once and the per-segment draw counts are (B, S) columns.
        segments = [(0, n_classes)]
        seg_draws = draws.reshape(n_batch, 1)
        while any(hi - lo > 1 for lo, hi in segments):
            split_idx = [i for i, (lo, hi) in enumerate(segments) if hi - lo > 1]
            los = np.array([segments[i][0] for i in split_idx])
            his = np.array([segments[i][1] for i in split_idx])
            mids = (los + his) // 2
            left_totals = prefix[:, mids] - prefix[:, los]
            right_totals = prefix[:, his] - prefix[:, mids]
            split_draws = seg_draws[:, split_idx]
            into_left = self._hypergeometric_block(rng, left_totals, right_totals, split_draws)

            new_segments: list[tuple[int, int]] = []
            new_draw_cols: list[np.ndarray] = []
            j = 0
            for i, (lo, hi) in enumerate(segments):
                if hi - lo > 1:
                    mid = (lo + hi) // 2
                    new_segments.append((lo, mid))
                    new_draw_cols.append(into_left[:, j])
                    new_segments.append((mid, hi))
                    new_draw_cols.append(split_draws[:, j] - into_left[:, j])
                    j += 1
                else:
                    new_segments.append((lo, hi))
                    new_draw_cols.append(seg_draws[:, i])
            segments = new_segments
            seg_draws = np.stack(new_draw_cols, axis=1)
        for i, (lo, _hi) in enumerate(segments):
            counts[:, lo] = seg_draws[:, i]
        return counts

    def multivariate(self, n_draws: int, class_sizes, rng=None) -> np.ndarray:
        """One multivariate hypergeometric sample via the batched kernel."""
        n_draws = check_nonnegative_int(n_draws, "n_draws")
        class_sizes = check_vector_of_nonnegative_ints(class_sizes, "class_sizes")
        return self.multivariate_batch(
            np.array([n_draws], dtype=np.int64), class_sizes.reshape(1, -1), rng
        )[0]

    def sample_matrix_batched(self, row_sums, col_sums, rng=None) -> np.ndarray:
        """Sample a whole communication matrix with vectorized kernels.

        Same law as Algorithms 3 and 4 (the recursive row splitting *is*
        Algorithm 4; each split's multivariate draw uses the balanced
        column-splitting factorisation), evaluated level by level so that
        every level of the row tree costs ``O(log P')`` vectorized NumPy
        calls over all same-level blocks at once.
        """
        self._check_batched_method()
        rows = check_vector_of_nonnegative_ints(row_sums, "row_sums")
        cols = check_vector_of_nonnegative_ints(col_sums, "col_sums")
        check_same_total(rows, cols, "row_sums", "col_sums")
        matrix = np.zeros((rows.size, cols.size), dtype=np.int64)
        if rows.size == 0 or cols.size == 0:
            return matrix
        rng = _kernel_rng(rng)
        compiled = self._resolve_tier().sample_matrix(rng, rows, cols)
        if compiled is not None:
            return compiled

        row_prefix = np.concatenate([[0], np.cumsum(rows)])
        # One block per current row range; caps[i] holds the column capacities
        # reserved for block i.  All blocks at one level split simultaneously.
        blocks = [(0, rows.size)]
        caps = cols.reshape(1, -1).astype(np.int64)
        while any(hi - lo > 1 for lo, hi in blocks):
            split_idx = [i for i, (lo, hi) in enumerate(blocks) if hi - lo > 1]
            mids = np.array([(blocks[i][0] + blocks[i][1]) // 2 for i in split_idx])
            his = np.array([blocks[i][1] for i in split_idx])
            upper_masses = row_prefix[his] - row_prefix[mids]
            to_up = self.multivariate_batch(upper_masses, caps[split_idx], rng)

            new_blocks: list[tuple[int, int]] = []
            new_caps: list[np.ndarray] = []
            j = 0
            for i, (lo, hi) in enumerate(blocks):
                if hi - lo > 1:
                    mid = (lo + hi) // 2
                    new_blocks.append((lo, mid))
                    new_caps.append(caps[i] - to_up[j])
                    new_blocks.append((mid, hi))
                    new_caps.append(to_up[j])
                    j += 1
                else:
                    new_blocks.append((lo, hi))
                    new_caps.append(caps[i])
            blocks = new_blocks
            caps = np.stack(new_caps, axis=0)
        for i, (lo, _hi) in enumerate(blocks):
            matrix[lo, :] = caps[i]
        return matrix


# ----------------------------------------------------------------------------
# Shared engine instances
# ----------------------------------------------------------------------------
_ENGINES: dict[tuple, SamplerEngine] = {}


def get_engine(method: str | SamplerEngine = "auto", *, kernels=None) -> SamplerEngine:
    """Shared :class:`SamplerEngine` for ``(method, kernels)`` (instances pass through).

    This is the single point every sampling entry point resolves its
    ``method=`` argument through, so the selection policy lives in exactly
    one place.  ``kernels`` selects the kernel tier the engine consults
    (see :mod:`repro.core.kernels`); passing it alongside a pre-built
    engine is rejected because the engine already owns a tier choice.
    """
    if isinstance(method, SamplerEngine):
        if kernels is not None:
            raise ValidationError(
                "kernels= cannot be combined with a pre-built SamplerEngine; "
                "construct the engine with kernels= instead"
            )
        return method
    if kernels is not None and not isinstance(kernels, str):
        # Tier objects are not hashable cache keys; build a private engine.
        return SamplerEngine(method, kernels=kernels)
    key = (method, kernels)
    engine = _ENGINES.get(key)
    if engine is None:
        # raises ValidationError for unknown method/kernels names
        engine = SamplerEngine(method, kernels=kernels)
        _ENGINES[key] = engine
    return engine
