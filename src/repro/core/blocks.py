"""Block distributions of a vector over the processors.

The paper's Problem 1 starts from a vector ``v`` of ``n`` items distributed
such that processor ``P_i`` holds a contiguous *block* ``B_i`` of ``m_i``
items (Figure 1 of the paper shows exactly this layout for 6 processors).
:class:`BlockDistribution` captures the sizes ``(m_1, ..., m_p)`` and answers
the bookkeeping questions every algorithm needs: which processor owns a
global index, how global and local indices map to each other, and how to cut
an in-memory vector into per-processor blocks (and glue it back together).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.rng.streams import default_rng
from repro.util.errors import ValidationError
from repro.util.validation import (
    check_nonnegative_int,
    check_positive_int,
    check_vector_of_nonnegative_ints,
)

__all__ = ["BlockDistribution"]


class BlockDistribution:
    """Sizes and index arithmetic of a block-distributed vector.

    Parameters
    ----------
    sizes:
        Sequence of non-negative block sizes ``(m_1, ..., m_p)``; block ``i``
        holds the global indices ``[offsets[i], offsets[i] + sizes[i])``.

    Examples
    --------
    >>> dist = BlockDistribution.balanced(10, 3)
    >>> dist.sizes.tolist()
    [4, 3, 3]
    >>> dist.owner_of(4)
    1
    >>> dist.global_index(2, 1)
    8
    """

    def __init__(self, sizes: Iterable[int]):
        self._sizes = check_vector_of_nonnegative_ints(sizes, "sizes")
        if self._sizes.size == 0:
            raise ValidationError("a BlockDistribution needs at least one block")
        self._offsets = np.concatenate(([0], np.cumsum(self._sizes)))

    # -- constructors -----------------------------------------------------------
    @classmethod
    def balanced(cls, n_items: int, n_blocks: int) -> "BlockDistribution":
        """Split ``n_items`` into ``n_blocks`` blocks whose sizes differ by at most one.

        The first ``n_items % n_blocks`` blocks get the extra item, matching
        the usual convention of block-distributing arrays.
        """
        n_items = check_nonnegative_int(n_items, "n_items")
        n_blocks = check_positive_int(n_blocks, "n_blocks")
        base, extra = divmod(n_items, n_blocks)
        sizes = np.full(n_blocks, base, dtype=np.int64)
        sizes[:extra] += 1
        return cls(sizes)

    @classmethod
    def uniform(cls, block_size: int, n_blocks: int) -> "BlockDistribution":
        """All blocks have exactly ``block_size`` items (the paper's ``n = p*m``)."""
        block_size = check_nonnegative_int(block_size, "block_size")
        n_blocks = check_positive_int(n_blocks, "n_blocks")
        return cls(np.full(n_blocks, block_size, dtype=np.int64))

    @classmethod
    def random_uneven(
        cls,
        n_items: int,
        n_blocks: int,
        *,
        seed=None,
        min_size: int = 0,
    ) -> "BlockDistribution":
        """Random block sizes with a given minimum, summing to ``n_items``.

        Sizes are drawn from a symmetric multinomial over the slack
        ``n_items - n_blocks * min_size`` (so each block gets ``min_size``
        plus a binomially fluctuating share), which is a convenient model of
        mildly unbalanced input data.
        """
        n_items = check_nonnegative_int(n_items, "n_items")
        n_blocks = check_positive_int(n_blocks, "n_blocks")
        min_size = check_nonnegative_int(min_size, "min_size")
        slack = n_items - n_blocks * min_size
        if slack < 0:
            raise ValidationError(
                f"cannot give {n_blocks} blocks at least {min_size} items each "
                f"out of {n_items} items"
            )
        rng = default_rng(seed)
        extra = rng.multinomial(slack, np.full(n_blocks, 1.0 / n_blocks))
        return cls(extra + min_size)

    @classmethod
    def from_blocks(cls, blocks: Sequence[np.ndarray]) -> "BlockDistribution":
        """Distribution matching the lengths of already-materialised blocks."""
        return cls([len(b) for b in blocks])

    # -- basic properties ---------------------------------------------------------
    @property
    def sizes(self) -> np.ndarray:
        """Block sizes ``(m_1, ..., m_p)`` as an ``int64`` array (do not mutate)."""
        return self._sizes

    @property
    def offsets(self) -> np.ndarray:
        """Prefix sums: ``offsets[i]`` is the first global index of block ``i``."""
        return self._offsets

    @property
    def n_blocks(self) -> int:
        """Number of blocks ``p``."""
        return int(self._sizes.size)

    @property
    def total(self) -> int:
        """Total number of items ``n``."""
        return int(self._offsets[-1])

    def is_balanced(self, *, tolerance: int = 1) -> bool:
        """True when the largest and smallest block differ by at most ``tolerance``."""
        return int(self._sizes.max() - self._sizes.min()) <= tolerance

    # -- index arithmetic ----------------------------------------------------------
    def owner_of(self, global_index: int) -> int:
        """Block id owning ``global_index``."""
        gi = check_nonnegative_int(global_index, "global_index")
        if gi >= self.total:
            raise ValidationError(f"global_index {gi} out of range [0, {self.total})")
        return int(np.searchsorted(self._offsets, gi, side="right") - 1)

    def local_index(self, global_index: int) -> tuple[int, int]:
        """Return ``(block, offset_within_block)`` of a global index."""
        block = self.owner_of(global_index)
        return block, int(global_index - self._offsets[block])

    def global_index(self, block: int, offset: int) -> int:
        """Return the global index of ``offset`` within ``block``."""
        block = check_nonnegative_int(block, "block")
        offset = check_nonnegative_int(offset, "offset")
        if block >= self.n_blocks:
            raise ValidationError(f"block {block} out of range [0, {self.n_blocks})")
        if offset >= self._sizes[block]:
            raise ValidationError(
                f"offset {offset} out of range [0, {self._sizes[block]}) for block {block}"
            )
        return int(self._offsets[block] + offset)

    def block_slice(self, block: int) -> slice:
        """The ``slice`` of global indices held by ``block``."""
        block = check_nonnegative_int(block, "block")
        if block >= self.n_blocks:
            raise ValidationError(f"block {block} out of range [0, {self.n_blocks})")
        return slice(int(self._offsets[block]), int(self._offsets[block + 1]))

    def slices(self) -> list[slice]:
        """All block slices, in block order."""
        return [self.block_slice(i) for i in range(self.n_blocks)]

    # -- materialisation helpers ------------------------------------------------------
    def split(self, values: np.ndarray) -> list[np.ndarray]:
        """Cut an in-memory vector into per-block arrays (views, not copies)."""
        arr = np.asarray(values)
        if arr.shape[0] != self.total:
            raise ValidationError(
                f"vector of length {arr.shape[0]} does not match distribution total {self.total}"
            )
        return [arr[s] for s in self.slices()]

    def concatenate(self, blocks: Sequence[np.ndarray]) -> np.ndarray:
        """Glue per-block arrays back into one vector, checking the sizes."""
        if len(blocks) != self.n_blocks:
            raise ValidationError(
                f"expected {self.n_blocks} blocks, got {len(blocks)}"
            )
        for i, block in enumerate(blocks):
            if len(block) != self._sizes[i]:
                raise ValidationError(
                    f"block {i} has {len(block)} items, expected {self._sizes[i]}"
                )
        if self.total == 0:
            return np.empty(0)
        return np.concatenate([np.asarray(b) for b in blocks])

    # -- dunder -------------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, BlockDistribution) and np.array_equal(self._sizes, other._sizes)

    def __hash__(self) -> int:
        return hash(tuple(self._sizes.tolist()))

    def __len__(self) -> int:
        return self.n_blocks

    def __repr__(self) -> str:  # pragma: no cover - trivial
        preview = ", ".join(str(int(s)) for s in self._sizes[:6])
        if self.n_blocks > 6:
            preview += ", ..."
        return f"BlockDistribution([{preview}], n={self.total}, p={self.n_blocks})"
