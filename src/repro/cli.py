"""Command-line interface.

The CLI wraps the most common library entry points so that the reproduction
can be exercised without writing Python::

    python -m repro permute --n 1000000 --procs 8 --seed 42
    python -m repro matrix --sizes 250,250,250,250 --algorithm alg6
    python -m repro scaling --paper
    python -m repro uniformity --n 4 --procs 2 --samples 5000
    python -m repro randoms --procs 16 --items-per-proc 2000
    python -m repro stats --procs 4 --backend process

Every sub-command prints a short plain-text report; ``--help`` on any
sub-command documents its options.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Coarse-grained parallel uniform random permutations "
                    "(reproduction of Gustedt, RR-4639 / SPAA 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    backend_kwargs = dict(
        choices=["thread", "process", "sim", "inline"], default="thread",
        help="execution backend: thread (default), process (one OS process per rank), "
             "sim (all ranks stepped under a deterministic schedule, see "
             "--schedule-seed) or inline (p == 1 only); results are "
             "seed-identical across backends",
    )
    transport_kwargs = dict(
        choices=["sharedmem", "pickle"], default=None,
        help="payload transport of the process backend: sharedmem (zero-copy "
             "shared-memory segments, the default) or pickle (queue-borne "
             "buffers); rejected for other backends, seed-identical results",
    )
    persistent_kwargs = dict(
        action=argparse.BooleanOptionalAction, default=None,
        help="standing worker pool of the process backend: the p rank "
             "processes and their shared-memory rings are spawned once and "
             "reused by every run.  This is the DEFAULT for --backend "
             "process (warm drivers); --no-persistent forces a cold spawn "
             "per run; seed-identical results either way",
    )
    schedule_seed_kwargs = dict(
        type=int, default=None, metavar="K",
        help="rank-interleaving seed of the sim backend (--backend sim): "
             "each K replays one deterministic schedule; rejected for other "
             "backends, seed-identical results under every schedule",
    )
    kernels_kwargs = dict(
        choices=["auto", "numba", "numpy"], default=None,
        help="kernel tier of the sampling hot path: auto (default; compiled "
             "numba kernels when importable, NumPy otherwise), numba or "
             "numpy; unset defers to REPRO_KERNELS; seed-identical results "
             "across tiers",
    )
    retries_kwargs = dict(
        type=int, default=None, metavar="K",
        help="total attempts a run gets against transient backend failures "
             "(crashed ranks, broken barriers): the supervised worker pool "
             "respawns dead ranks and replays the epoch with the same "
             "per-rank streams, so recovered output is seed-identical to a "
             "fault-free run; unset = fail fast (no retry)",
    )
    deadline_kwargs = dict(
        type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole run including retries; when it "
             "expires the run fails with a DeadlineError instead of waiting "
             "out communication timeouts (requires --retries)",
    )
    telemetry_json_kwargs = dict(
        type=str, default=None, metavar="PATH",
        help="write the run's FleetReport (per-rank transport counters, ring "
             "geometry, pool/resilience events) to PATH as JSON; collection "
             "never perturbs the results",
    )

    permute = sub.add_parser("permute", help="permute a vector of 0..n-1 and report resource usage")
    permute.add_argument("--n", type=int, required=True, help="number of items")
    permute.add_argument("--procs", type=int, default=4, help="number of virtual processors")
    permute.add_argument("--seed", type=int, default=None, help="machine seed")
    permute.add_argument("--matrix-algorithm", choices=["root", "alg5", "alg6"], default="root")
    permute.add_argument("--backend", **backend_kwargs)
    permute.add_argument("--transport", **transport_kwargs)
    permute.add_argument("--persistent", **persistent_kwargs)
    permute.add_argument("--schedule-seed", **schedule_seed_kwargs)
    permute.add_argument("--kernels", **kernels_kwargs)
    permute.add_argument("--retries", **retries_kwargs)
    permute.add_argument("--deadline", **deadline_kwargs)
    permute.add_argument("--repeats", type=int, default=1,
                         help="how many permutations to run on the same machine "
                              "(with --persistent the spawn cost is paid once)")
    permute.add_argument("--head", type=int, default=10, help="how many output items to print")
    permute.add_argument("--verbose", action="store_true",
                         help="also print the fleet report (per-rank kernel "
                              "tiers, transport counters, ring geometry and "
                              "resilience events repatriated with the results)")
    permute.add_argument("--telemetry-json", **telemetry_json_kwargs)

    matrix = sub.add_parser("matrix", help="sample a communication matrix (Problem 2)")
    matrix.add_argument("--sizes", type=str, required=True,
                        help="comma-separated source block sizes, e.g. 10,10,10")
    matrix.add_argument("--target-sizes", type=str, default=None,
                        help="comma-separated target block sizes (default: same as --sizes)")
    matrix.add_argument("--algorithm",
                        choices=["sequential", "recursive", "batched", "alg5", "alg6", "root"],
                        default="sequential",
                        help="sequential/recursive/batched sample in-process; "
                             "alg5/alg6/root run on a PRO machine")
    matrix.add_argument("--backend", choices=["thread", "process", "sim", "inline"],
                        default=None,
                        help="execution backend for alg5/alg6/root (default thread); "
                             "rejected for the in-process algorithms")
    matrix.add_argument("--transport", **transport_kwargs)
    matrix.add_argument("--persistent", **persistent_kwargs)
    matrix.add_argument("--schedule-seed", **schedule_seed_kwargs)
    matrix.add_argument("--kernels", **kernels_kwargs)
    matrix.add_argument("--retries", **retries_kwargs)
    matrix.add_argument("--deadline", **deadline_kwargs)
    matrix.add_argument("--telemetry-json", **telemetry_json_kwargs)
    matrix.add_argument("--seed", type=int, default=None)

    stats = sub.add_parser(
        "stats",
        help="run a fixed permutation workload and print its fleet report "
             "(repatriated telemetry: transport counters, ring geometry, events)")
    stats.add_argument("--n", type=int, default=100_000, help="number of items to permute")
    stats.add_argument("--procs", type=int, default=4, help="number of virtual processors")
    stats.add_argument("--seed", type=int, default=0, help="machine seed")
    stats.add_argument("--backend", **backend_kwargs)
    stats.add_argument("--transport", **transport_kwargs)
    stats.add_argument("--persistent", **persistent_kwargs)
    stats.add_argument("--schedule-seed", **schedule_seed_kwargs)
    stats.add_argument("--kernels", **kernels_kwargs)
    stats.add_argument("--retries", **retries_kwargs)
    stats.add_argument("--deadline", **deadline_kwargs)
    stats.add_argument("--repeats", type=int, default=1,
                       help="how many permutations to run (each run appends one "
                            "FleetReport; the last one is printed)")
    stats.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="also write every collected FleetReport to PATH as "
                            "a JSON list")

    scaling = sub.add_parser("scaling", help="regenerate the paper's scaling table (experiment T1)")
    scaling.add_argument("--paper", action="store_true",
                         help="print the calibrated-model table for the paper's 480e6-item workload")
    scaling.add_argument("--measure", type=int, default=None, metavar="N",
                         help="measure the real implementation on N items on this machine")
    scaling.add_argument("--procs", type=str, default="2,4,8",
                         help="comma-separated processor counts for --measure")
    scaling.add_argument("--backend", choices=["thread", "process"], default="thread",
                         help="execution backend for --measure runs")
    scaling.add_argument("--transport", **transport_kwargs)

    uniformity = sub.add_parser("uniformity", help="chi-square uniformity test of the parallel permutation")
    uniformity.add_argument("--n", type=int, default=4, help="permutation size (<= 8 for the exhaustive test)")
    uniformity.add_argument("--procs", type=int, default=2)
    uniformity.add_argument("--samples", type=int, default=5000)
    uniformity.add_argument("--seed", type=int, default=0)

    randoms = sub.add_parser("randoms", help="uniform variates per h(,) call during matrix sampling (experiment E2)")
    randoms.add_argument("--procs", type=int, default=16)
    randoms.add_argument("--items-per-proc", type=int, default=2000)
    randoms.add_argument("--matrices", type=int, default=5)
    randoms.add_argument("--method", choices=["auto", "hin", "hrua"], default="auto")
    randoms.add_argument("--seed", type=int, default=42)

    explore = sub.add_parser(
        "explore",
        help="coverage-guided state-space exploration on the sim backend: "
             "schedules x fault plans x programs x p, with auto-shrunk "
             "reproducers for any schedule-dependent behaviour")
    explore.add_argument("--budget", type=int, default=500,
                         help="total simulated runs to spend (default 500)")
    explore.add_argument("--programs", type=str, default=",".join(
        ("alg5", "alg6", "barrier-ring", "scatter-gather")),
        help="comma-separated explore programs (see repro.pro.explore."
             "EXPLORE_PROGRAMS); default sweeps the paper algorithms plus "
             "the barrier/scatter micro-programs")
    explore.add_argument("--procs", type=str, default="2,4,8",
                         help="comma-separated processor counts (default 2,4,8)")
    explore.add_argument("--plans", choices=["auto", "committed", "none"],
                         default="auto",
                         help="fault-plan axis: auto (committed chaos plans plus "
                              "single-fault plans derived from each cell's op "
                              "log, the default), committed, or none")
    explore.add_argument("--baseline", type=int, default=0, metavar="DRAWS",
                         help="also measure DRAWS plain schedule_seed draws as "
                              "the random baseline and report the coverage ratio")
    explore.add_argument("--seed", type=int, default=8128,
                         help="machine seed shared by every cell (default 8128)")
    explore.add_argument("--explore-seed", type=int, default=0,
                         help="seed of the PCT priority sampler (default 0)")
    explore.add_argument("--max-decisions", type=int, default=2048,
                         help="scheduling decisions before a run counts as a "
                              "hang (default 2048)")
    explore.add_argument("--json", type=str, default=None, metavar="PATH",
                         help="write the full coverage report to PATH as JSON")
    explore.add_argument("--commit", type=str, default=None, metavar="DIR",
                         help="emit a pytest reproducer for every finding into "
                              "DIR (conventionally tests/simulation/reproducers)")
    explore.add_argument("--min-distinct", type=int, default=None, metavar="N",
                         help="fail (exit 4) when fewer than N distinct trace "
                              "fingerprints were covered -- the CI coverage "
                              "regression gate")

    return parser


def _parse_sizes(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part.strip() != ""]


def _resolve_retry(args):
    """Build the RetryPolicy requested by --retries/--deadline (or None)."""
    if args.retries is None and args.deadline is None:
        return None
    from repro.pro.resilience import RetryPolicy

    # --deadline alone still gets a policy: a single bounded attempt.
    return RetryPolicy(max_attempts=args.retries if args.retries is not None else 1,
                       deadline=args.deadline)


def _resolve_telemetry(args):
    """Build the Telemetry recorder requested by --verbose/--telemetry-json."""
    wants = getattr(args, "verbose", False) or getattr(args, "telemetry_json", None)
    if not wants:
        return None
    from repro.pro.telemetry import Telemetry

    return Telemetry()


def _dump_telemetry_json(telemetry, path) -> None:
    """Write the recorder's last FleetReport to ``path`` as JSON."""
    if telemetry is None or path is None or telemetry.last is None:
        return
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(telemetry.last.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"fleet report written to {path}")


def _cmd_permute(args) -> int:
    from repro.core.blocks import BlockDistribution
    from repro.core.permutation import permute_distributed
    from repro.pro.machine import PROMachine

    backend_options = {}
    if args.transport is not None:
        backend_options["transport"] = args.transport
    if args.schedule_seed is not None:
        backend_options["schedule_seed"] = args.schedule_seed
    # Warm by default: an unset --persistent means the process backend
    # runs on a standing pool (spawned once, reused by every --repeats
    # run); --no-persistent forces the historic cold spawn per run.
    persistent = args.persistent
    if persistent is None:
        persistent = args.backend == "process"
    telemetry = _resolve_telemetry(args)
    machine = PROMachine(
        args.procs, seed=args.seed, backend=args.backend,
        backend_options=backend_options,
        persistent=persistent,
        count_random_variates=True,
        kernels=args.kernels,
        retry=_resolve_retry(args),
        telemetry=telemetry,
    )
    data = np.arange(args.n, dtype=np.int64)
    blocks = [b.copy() for b in BlockDistribution.balanced(args.n, args.procs).split(data)]
    try:
        repeats = max(int(args.repeats), 1)
        for iteration in range(repeats):
            out_blocks, run = permute_distributed(
                blocks, machine=machine, matrix_algorithm=args.matrix_algorithm
            )
            label = (f"run {iteration + 1}/{repeats}: " if repeats > 1 else "")
            print(f"{label}permuted {args.n} items on {args.procs} virtual processors "
                  f"in {run.wall_clock_seconds * 1e3:.1f} ms (wall clock, "
                  f"{args.backend}{' persistent' if persistent else ''} backend)")
    finally:
        machine.close()
    out = np.concatenate([np.asarray(b) for b in out_blocks]) if args.n else np.empty(0, dtype=np.int64)
    print(f"first {min(args.head, args.n)} output items: {out[:args.head].tolist()}")
    print(run.cost_report.summary_table())
    # One formatting path for per-rank details: the FleetReport renders the
    # kernel tiers, transport counters and resilience events in one place.
    if args.verbose and telemetry is not None and telemetry.last is not None:
        print(telemetry.last.summary())
    _dump_telemetry_json(telemetry, args.telemetry_json)
    return 0


def _cmd_matrix(args) -> int:
    from repro.core.api import sample_communication_matrix

    sizes = _parse_sizes(args.sizes)
    targets = _parse_sizes(args.target_sizes) if args.target_sizes else None
    parallel = args.algorithm in ("alg5", "alg6", "root")
    telemetry = _resolve_telemetry(args)
    matrix = sample_communication_matrix(
        sizes, targets, parallel=parallel,
        algorithm=args.algorithm if args.algorithm != "sequential" or parallel else None,
        backend=args.backend,  # the API rejects backend= for the in-process path
        transport=args.transport,  # likewise parallel-path only
        persistent=args.persistent,  # likewise parallel-path only
        schedule_seed=args.schedule_seed,  # likewise parallel-path only
        kernels=args.kernels,
        retry=_resolve_retry(args),  # likewise parallel-path only
        telemetry=telemetry,  # likewise parallel-path only
        seed=args.seed,
    )
    print(f"communication matrix ({len(sizes)} x {len(targets) if targets else len(sizes)}), "
          f"algorithm={args.algorithm}")
    for row in matrix:
        print("  " + " ".join(f"{int(v):6d}" for v in row))
    print(f"row sums   : {matrix.sum(axis=1).tolist()}")
    print(f"column sums: {matrix.sum(axis=0).tolist()}")
    _dump_telemetry_json(telemetry, args.telemetry_json)
    return 0


def _cmd_stats(args) -> int:
    from repro.core.blocks import BlockDistribution
    from repro.core.permutation import permute_distributed
    from repro.pro.machine import PROMachine
    from repro.pro.telemetry import Telemetry

    backend_options = {}
    if args.transport is not None:
        backend_options["transport"] = args.transport
    if args.schedule_seed is not None:
        backend_options["schedule_seed"] = args.schedule_seed
    persistent = args.persistent
    if persistent is None:
        persistent = args.backend == "process"
    telemetry = Telemetry()
    machine = PROMachine(
        args.procs, seed=args.seed, backend=args.backend,
        backend_options=backend_options,
        persistent=persistent,
        count_random_variates=True,
        kernels=args.kernels,
        retry=_resolve_retry(args),
        telemetry=telemetry,
    )
    data = np.arange(args.n, dtype=np.int64)
    blocks = [b.copy() for b in BlockDistribution.balanced(args.n, args.procs).split(data)]
    try:
        for _ in range(max(int(args.repeats), 1)):
            permute_distributed(blocks, machine=machine)
    finally:
        machine.close()
    print(f"permuted {args.n} items x {max(int(args.repeats), 1)} run(s) on "
          f"{args.procs} virtual processors "
          f"({args.backend}{' persistent' if persistent else ''} backend)")
    print(telemetry.last.summary())
    if args.json is not None:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump([report.to_dict() for report in telemetry.reports],
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"{len(telemetry)} fleet report(s) written to {args.json}")
    return 0


def _cmd_scaling(args) -> int:
    from repro.bench.scaling import (
        crossover_processors,
        format_scaling_rows,
        measured_scaling_table,
        overhead_factor,
        predicted_scaling_table,
    )

    did_something = False
    if args.paper or args.measure is None:
        rows = predicted_scaling_table()
        print(format_scaling_rows(rows, seconds_key="predicted_seconds",
                                  title="Calibrated model vs the paper's table (480e6 items)"))
        print(f"overhead factor: {overhead_factor(rows):.2f}; "
              f"crossover at p = {crossover_processors(rows)}")
        did_something = True
    if args.measure is not None:
        procs = _parse_sizes(args.procs)
        rows = measured_scaling_table(
            args.measure, proc_counts=procs, repeats=1, backend=args.backend,
            transport=args.transport,
        )
        print(format_scaling_rows(
            rows, seconds_key="measured_seconds",
            title=f"Measured on this machine ({args.measure} items, {args.backend} backend)"))
        did_something = True
    return 0 if did_something else 1


def _cmd_uniformity(args) -> int:
    from repro.core.permutation import random_permutation_indices
    from repro.pro.machine import PROMachine
    from repro.stats.uniformity import chi_square_permutation_uniformity, position_occupancy_test

    machine = PROMachine(args.procs, seed=args.seed)
    def sampler():
        return random_permutation_indices(args.n, machine=machine)

    if args.n <= 8:
        result = chi_square_permutation_uniformity(sampler, args.n, args.samples)
        kind = f"exhaustive over {args.n}! permutations"
    else:
        result = position_occupancy_test(sampler, args.n, args.samples)
        kind = "item/position occupancy"
    print(f"uniformity test ({kind}), {args.samples} samples, "
          f"n={args.n}, p={args.procs}")
    print(f"chi2 = {result.statistic:.1f} on {result.degrees_of_freedom} dof, "
          f"p-value = {result.p_value:.4f}")
    print("uniformity " + ("NOT rejected" if result.p_value > 0.001 else "REJECTED"))
    return 0 if result.p_value > 0.001 else 2


def _cmd_randoms(args) -> int:
    from repro.bench.randoms import uniforms_per_h_call

    result = uniforms_per_h_call(
        args.procs, args.items_per_proc, n_matrices=args.matrices,
        method=args.method, seed=args.seed,
    )
    print(f"matrix sampling with p={args.procs}, m={args.items_per_proc}, "
          f"{args.matrices} matrices, method={args.method}")
    print(f"h(,) calls          : {result['n_calls']}")
    print(f"uniforms per call   : mean {result['mean_uniforms']:.2f}, worst {result['max_uniforms']}")
    print("paper (Section 6)   : mean < 1.5, worst <= 10 (Zechner's HRUE sampler)")
    return 0


def _cmd_explore(args) -> int:
    from repro.pro.explore import explore

    report = explore(
        programs=[name for name in args.programs.split(",") if name.strip()],
        procs=_parse_sizes(args.procs),
        plans=args.plans,
        budget=args.budget,
        machine_seed=args.seed,
        baseline_draws=args.baseline,
        commit_dir=args.commit,
        max_decisions=args.max_decisions,
        explore_seed=args.explore_seed,
    )
    print(report.summary())
    if args.json is not None:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"coverage report written to {args.json}")
    if report.findings:
        return 3
    if args.min_distinct is not None and report.distinct_total < args.min_distinct:
        print(f"coverage regression: {report.distinct_total} distinct trace "
              f"fingerprints < required {args.min_distinct}")
        return 4
    return 0


_COMMANDS = {
    "permute": _cmd_permute,
    "matrix": _cmd_matrix,
    "stats": _cmd_stats,
    "scaling": _cmd_scaling,
    "uniformity": _cmd_uniformity,
    "randoms": _cmd_randoms,
    "explore": _cmd_explore,
}


def main(argv=None) -> int:
    """Entry point of ``python -m repro`` (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised through __main__.py
    sys.exit(main())
