"""Rejection-based balanced randomisation (uniform but not work-optimal).

A classic way to repair the imbalance of dart throwing is to *reject and
restart*: draw a destination for every item and accept the attempt only when
every target block receives exactly its prescribed number of items.  Each
accepted attempt yields a perfectly uniform permutation (conditioning a
product of uniform choices on the exact occupancy vector gives the uniform
distribution over assignments with that occupancy, which combined with the
local shuffles is uniform over permutations), but the acceptance probability
is the multinomial coincidence probability

.. math::

   P[\\text{accept}] = \\frac{n!}{\\prod_j m'_j!} \\prod_j
        \\left(\\frac{m'_j}{n}\\right)^{m'_j}
        \\;\\approx\\; \\Big(\\frac{p}{2\\pi m}\\Big)^{(p-1)/2} \\cdot c,

which collapses exponentially in ``p`` -- so the expected number of restarts
(and hence the total work) explodes.  This module implements the method
sequentially (the parallel version has the same acceptance behaviour) and
reports the number of attempts, which experiment E6 uses to demonstrate the
loss of work-optimality; the paper's introduction also notes that proving
uniformity for such restart schemes can be delicate in general.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng.streams import default_rng
from repro.util.errors import ValidationError
from repro.util.validation import check_vector_of_nonnegative_ints

__all__ = ["RejectionStatistics", "rejection_permutation", "acceptance_probability"]


@dataclass
class RejectionStatistics:
    """Outcome of a rejection run: attempts used and whether it succeeded."""

    attempts: int
    accepted: bool
    items_processed: int

    @property
    def wasted_work_factor(self) -> float:
        """Total items touched divided by the items of one attempt (>= 1)."""
        return float(self.attempts)


def acceptance_probability(target_sizes) -> float:
    """Exact probability that independent uniform destinations hit the target layout.

    ``P = multinomial(n; m') * prod_j (m'_j/n)^{m'_j}`` -- the probability
    mass of the single occupancy vector we insist on.
    """
    sizes = check_vector_of_nonnegative_ints(target_sizes, "target_sizes")
    n = int(sizes.sum())
    if n == 0:
        return 1.0
    from math import lgamma, log

    log_p = lgamma(n + 1)
    for m in sizes.tolist():
        log_p -= lgamma(m + 1)
        if m:
            log_p += m * (log(m) - log(n))
    return float(np.exp(log_p))


def rejection_permutation(
    values,
    n_procs: int = 4,
    *,
    target_sizes=None,
    rng=None,
    max_attempts: int = 10_000,
    seed=None,
) -> tuple[np.ndarray, RejectionStatistics]:
    """Permute ``values`` by rejection: retry until the random layout is exact.

    Returns the permuted vector and a :class:`RejectionStatistics`.  When
    ``max_attempts`` is exhausted the statistics have ``accepted=False`` and
    the last (imbalanced) attempt is *not* returned -- instead a
    :class:`ValidationError` is raised, because silently returning a
    non-uniform result would defeat the purpose of the method.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValidationError(f"rejection_permutation expects a 1-D vector, got shape {arr.shape}")
    rng = default_rng(rng if rng is not None else seed) if not hasattr(rng, "integers") else rng
    n = arr.shape[0]
    if target_sizes is None:
        base, extra = divmod(n, n_procs)
        sizes = np.full(n_procs, base, dtype=np.int64)
        sizes[:extra] += 1
    else:
        sizes = check_vector_of_nonnegative_ints(target_sizes, "target_sizes")
        if int(sizes.sum()) != n:
            raise ValidationError("target_sizes must sum to the number of items")
    p = sizes.size

    attempts = 0
    while attempts < max_attempts:
        attempts += 1
        destinations = rng.integers(0, p, size=n)
        counts = np.bincount(destinations, minlength=p)
        if np.array_equal(counts, sizes):
            # Accepted: build the permuted vector block by block, shuffling
            # within each block to remove the residual source ordering.
            out_blocks = []
            for dest in range(p):
                block = arr[destinations == dest]
                block = block.copy()
                if block.shape[0] > 1:
                    rng.shuffle(block)
                out_blocks.append(block)
            permuted = np.concatenate(out_blocks) if out_blocks else arr.copy()
            stats = RejectionStatistics(attempts=attempts, accepted=True, items_processed=attempts * n)
            return permuted, stats
    raise ValidationError(
        f"rejection sampling did not hit the exact layout in {max_attempts} attempts "
        f"(acceptance probability ~ {acceptance_probability(sizes):.2e}); "
        "this is the work-optimality failure the paper describes"
    )
