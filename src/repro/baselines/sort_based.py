"""Goodrich-style permutation by sorting random keys.

Attach an independent uniform random key to every item and sort the items by
key: if all keys are distinct the induced ordering is a uniform random
permutation.  On a coarse-grained machine the sort is a parallel sample sort
(:mod:`repro.baselines.samplesort`), so the method is uniform and balanced --
but the total work is ``Theta(n log n)`` (the local sorts), a ``log n``
factor away from the sequential Fisher-Yates cost.  This is the baseline the
paper credits to Goodrich [1997] and rejects for not being work-optimal.

Key collisions (probability about ``n^2 / 2^65`` with 64-bit keys) would
introduce a tiny bias; the implementation detects them after the sort and
redraws the keys, so the output distribution is exactly uniform.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.samplesort import sample_sort_program
from repro.pro.machine import PROMachine, ProcessorContext, RunResult
from repro.util.errors import ValidationError

__all__ = ["sort_based_program", "sort_based_permutation"]

_KEY_DTYPE = np.uint64
_KEY_BITS = 63  # keep keys in the positive int64 range so sorting structured pairs stays simple


def sort_based_program(ctx: ProcessorContext, local_values, *, max_attempts: int = 5) -> np.ndarray:
    """SPMD program: permute the distributed vector by sorting random keys.

    Returns this processor's block of the permuted vector.  Block sizes of
    the output follow the sample-sort bucket sizes, i.e. they are balanced
    with high probability but not exactly equal to the input sizes -- one of
    the balance caveats of this baseline.
    """
    local = np.asarray(local_values)
    for _ in range(max(1, int(max_attempts))):
        keys = ctx.rng.integers(0, 1 << _KEY_BITS, size=len(local)).astype(_KEY_DTYPE)
        ctx.log_random_variates(len(local))
        # Sort (key, value) pairs globally by key using sample sort on a
        # structured array so the values ride along with their keys.
        paired = np.empty(len(local), dtype=[("key", _KEY_DTYPE), ("value", local.dtype)])
        paired["key"] = keys
        paired["value"] = local
        sorted_pairs = sample_sort_program(ctx, paired)

        # Detect key collisions anywhere in the global order: a duplicate can
        # only be adjacent after sorting, so each processor checks its block
        # and the boundary with its successor.
        local_dup = bool(np.any(np.diff(sorted_pairs["key"].astype(np.uint64)) == 0)) if len(sorted_pairs) > 1 else False
        boundary_keys = ctx.comm.allgather(
            (int(sorted_pairs["key"][0]) if len(sorted_pairs) else None,
             int(sorted_pairs["key"][-1]) if len(sorted_pairs) else None)
        )
        boundary_dup = False
        previous_last = None
        for first, last in boundary_keys:
            if first is not None and previous_last is not None and first == previous_last:
                boundary_dup = True
            if last is not None:
                previous_last = last
        any_dup = ctx.comm.allreduce(local_dup or boundary_dup, op=lambda a, b: a or b)
        if not any_dup:
            return sorted_pairs["value"]
    raise ValidationError(
        f"sort_based_program failed to draw collision-free keys in {max_attempts} attempts; "
        "this is astronomically unlikely unless the key space is too small for the input"
    )


def sort_based_permutation(
    values,
    n_procs: int = 4,
    *,
    machine: PROMachine | None = None,
    seed=None,
) -> tuple[np.ndarray, RunResult]:
    """Permute an in-memory vector with the sort-based baseline.

    Returns the permuted vector and the machine's
    :class:`~repro.pro.machine.RunResult` (whose cost report exhibits the
    ``log n`` work overhead compared with Algorithm 1).
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValidationError(f"sort_based_permutation expects a 1-D vector, got shape {arr.shape}")
    if machine is None:
        machine = PROMachine(n_procs, seed=seed)
    n_procs = machine.n_procs
    bounds = np.linspace(0, arr.shape[0], n_procs + 1).astype(np.int64)
    blocks = [arr[bounds[i]:bounds[i + 1]] for i in range(n_procs)]

    def program(ctx):
        return sort_based_program(ctx, blocks[ctx.rank])

    run = machine.run(program)
    permuted = np.concatenate([np.asarray(b) for b in run.results]) if arr.size else arr.copy()
    return permuted, run
