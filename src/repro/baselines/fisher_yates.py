"""Sequential random permutations (the PRO reference algorithm).

The PRO model measures a parallel algorithm against a fixed sequential
reference; for random permutations that reference is the Fisher-Yates
(Knuth) shuffle: ``n - 1`` swaps, one random integer each, ``O(n)`` work.
The paper's introduction measures it at 60-100 clock cycles per item on the
machines of the time, dominated by random-number generation and cache
misses -- experiment E5 reproduces the per-item cost measurement on the
present machine.

Two implementations are provided: a pure-Python Fisher-Yates (used by tests
that need to count variates exactly and by the per-item cost experiment in
"interpreted" mode) and a NumPy-backed one (``Generator.permutation``),
which is what the examples and big benchmarks use.
"""

from __future__ import annotations

import time

import numpy as np

from repro.rng.streams import default_rng
from repro.util.errors import ValidationError

__all__ = [
    "fisher_yates_inplace",
    "fisher_yates",
    "sequential_permutation",
    "per_item_cost",
]


def fisher_yates_inplace(values, rng=None) -> None:
    """Shuffle ``values`` in place with an explicit Fisher-Yates loop.

    Works on any mutable sequence (lists, NumPy arrays).  Consumes exactly
    ``len(values) - 1`` random integers.  This is the "textbook" sequential
    algorithm whose cost the paper uses as the optimality yardstick.
    """
    rng = default_rng(rng) if not hasattr(rng, "integers") else rng
    n = len(values)
    for i in range(n - 1, 0, -1):
        j = int(rng.integers(0, i + 1))
        values[i], values[j] = values[j], values[i]


def fisher_yates(values, rng=None) -> np.ndarray:
    """Return a shuffled copy of ``values`` using the explicit Fisher-Yates loop."""
    arr = np.array(values, copy=True)
    fisher_yates_inplace(arr, rng)
    return arr


def sequential_permutation(values, rng=None, *, method: str = "numpy") -> np.ndarray:
    """Uniformly permute ``values`` sequentially.

    ``method="numpy"`` (default) uses ``Generator.permutation`` (compiled
    Fisher-Yates); ``method="python"`` uses the interpreted loop.  Both are
    exact uniform shuffles; they differ only in constant factors, which is
    the point of experiment E5.
    """
    rng = default_rng(rng) if not hasattr(rng, "integers") else rng
    if method == "numpy":
        generator = rng.generator if hasattr(rng, "generator") else rng
        return generator.permutation(np.asarray(values))
    if method == "python":
        return fisher_yates(values, rng)
    raise ValidationError(f"unknown method {method!r}; use 'numpy' or 'python'")


def per_item_cost(n_items: int, *, method: str = "numpy", repeats: int = 3, seed=None) -> dict:
    """Measure the sequential per-item permutation cost on this machine.

    Returns a dictionary with the best-of-``repeats`` wall-clock time, the
    per-item time in nanoseconds and (when the CPU frequency can be read
    from ``/proc/cpuinfo``) an approximate cycles-per-item figure comparable
    to the paper's 60-100 cycles quote.
    """
    if n_items <= 0:
        raise ValidationError(f"n_items must be positive, got {n_items}")
    rng = default_rng(seed)
    data = np.arange(n_items, dtype=np.int64)
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        sequential_permutation(data, rng, method=method)
        best = min(best, time.perf_counter() - start)
    per_item_ns = best / n_items * 1e9
    result = {
        "n_items": n_items,
        "method": method,
        "seconds": best,
        "per_item_ns": per_item_ns,
        "cycles_per_item": None,
    }
    freq_hz = _cpu_frequency_hz()
    if freq_hz:
        result["cycles_per_item"] = per_item_ns * 1e-9 * freq_hz
    return result


def _cpu_frequency_hz() -> float | None:
    """Best-effort CPU frequency from /proc/cpuinfo (None when unavailable)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("cpu mhz"):
                    return float(line.split(":")[1]) * 1e6
    except (OSError, ValueError, IndexError):
        return None
    return None
