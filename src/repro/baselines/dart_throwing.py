"""Dart throwing: random destinations plus local shuffles.

The simplest coarse-grained "randomisation" sends every item to an
independently and uniformly chosen processor and shuffles locally.  It is
work-optimal (O(n/p) per processor) and balanced *in expectation*, but

* the target block sizes fluctuate like a multinomial (so the exact target
  layout of Problem 1 is not respected), and
* the induced distribution over arrangements is **not** uniform -- e.g. the
  probability that all items of a source block end up on the same target is
  much larger than under a uniform permutation.

Iterating the step (``iterated_dart_throwing``) mixes the distribution
towards uniformity at the price of a factor ``r`` (in the paper's
discussion: a ``log``-factor) in total work, which is exactly the trade-off
the paper's introduction describes and experiment E6 quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.core.permutation import local_shuffle
from repro.pro.machine import PROMachine, ProcessorContext, RunResult
from repro.util.errors import ValidationError

__all__ = ["dart_throwing_program", "dart_throwing_permutation", "iterated_dart_throwing"]


def dart_throwing_program(ctx: ProcessorContext, local_values, *, rounds: int = 1) -> np.ndarray:
    """SPMD program: ``rounds`` iterations of scatter-to-random-processor + local shuffle."""
    if rounds < 1:
        raise ValidationError(f"rounds must be >= 1, got {rounds}")
    local = np.asarray(local_values)
    p = ctx.n_procs
    for _ in range(int(rounds)):
        destinations = ctx.rng.integers(0, p, size=len(local))
        ctx.log_random_variates(len(local))
        pieces = [local[destinations == dest] for dest in range(p)]
        ctx.log_compute(len(local))
        received = ctx.comm.alltoallv(pieces)
        local = np.concatenate([np.asarray(r) for r in received]) if received else local
        local = local_shuffle(local, ctx.rng)
        ctx.log_compute(len(local))
        ctx.comm.barrier()
    return local


def dart_throwing_permutation(
    values,
    n_procs: int = 4,
    *,
    machine: PROMachine | None = None,
    seed=None,
    rounds: int = 1,
) -> tuple[np.ndarray, RunResult]:
    """Scatter an in-memory vector with dart throwing; return vector + run result.

    The returned vector is a rearrangement of the input but **not** a
    uniformly random permutation (see the module docstring); the statistics
    subpackage contains tests that expose the bias.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValidationError(f"dart_throwing_permutation expects a 1-D vector, got shape {arr.shape}")
    if machine is None:
        machine = PROMachine(n_procs, seed=seed)
    n_procs = machine.n_procs
    bounds = np.linspace(0, arr.shape[0], n_procs + 1).astype(np.int64)
    blocks = [arr[bounds[i]:bounds[i + 1]] for i in range(n_procs)]

    def program(ctx):
        return dart_throwing_program(ctx, blocks[ctx.rank], rounds=rounds)

    run = machine.run(program)
    permuted = np.concatenate([np.asarray(b) for b in run.results]) if arr.size else arr.copy()
    return permuted, run


def iterated_dart_throwing(
    values,
    n_procs: int = 4,
    *,
    rounds: int = 3,
    machine: PROMachine | None = None,
    seed=None,
) -> tuple[np.ndarray, RunResult]:
    """Dart throwing repeated ``rounds`` times (closer to uniform, ``rounds`` times the work)."""
    return dart_throwing_permutation(
        values, n_procs, machine=machine, seed=seed, rounds=rounds
    )
