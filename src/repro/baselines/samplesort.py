"""Parallel sample sort -- the sorting substrate of the Goodrich-style baseline.

Goodrich (1997) computes random permutations on the BSP by attaching random
keys to the items and sorting; any coarse-grained sorting algorithm will do,
and *sample sort with regular sampling* is the canonical one:

1. every processor sorts its local block;
2. every processor picks ``p - 1`` equally spaced local samples;
3. the root gathers the ``p (p - 1)`` samples, sorts them and broadcasts
   ``p - 1`` global splitters;
4. every processor partitions its sorted block by the splitters and an
   all-to-all exchange routes each bucket to its destination;
5. every processor merges (sorts) what it received.

With random keys the buckets are balanced within ``O(n/p)`` with high
probability, but the local sorts cost ``Theta((n/p) log n)`` -- the log
factor that makes the sort-based permutation *not* work-optimal, which is
exactly the comparison of experiment E6.
"""

from __future__ import annotations

import numpy as np

from repro.pro.machine import PROMachine, ProcessorContext, RunResult
from repro.util.errors import ValidationError

__all__ = ["sample_sort_program", "parallel_sample_sort"]


def sample_sort_program(ctx: ProcessorContext, local_values, *, oversampling: int = 1) -> np.ndarray:
    """SPMD program: globally sort the distributed values, returning the local part.

    ``local_values`` is this processor's block.  The return value is this
    processor's block of the globally sorted vector (block sizes may differ
    from the input by design of sample sort).  ``oversampling`` multiplies
    the number of local samples, improving balance at a small cost.
    """
    local = np.sort(np.asarray(local_values), kind="stable")
    ctx.log_compute(int(max(len(local), 1) * np.log2(max(len(local), 2))))
    p = ctx.n_procs
    if p == 1:
        return local

    # Regular sampling: p-1 (times oversampling) equally spaced elements.
    n_samples = (p - 1) * max(1, int(oversampling))
    if len(local) == 0:
        samples = np.empty(0, dtype=local.dtype)
    else:
        positions = np.linspace(0, len(local) - 1, num=n_samples + 2)[1:-1]
        samples = local[np.round(positions).astype(np.int64)]

    gathered = ctx.comm.gather(samples, root=0)
    if ctx.rank == 0:
        non_empty = [np.asarray(s) for s in gathered if len(s)]
        all_samples = np.sort(np.concatenate(non_empty)) if non_empty else np.empty(0, dtype=local.dtype)
        if len(all_samples) >= p - 1 and p > 1:
            idx = np.linspace(0, len(all_samples) - 1, num=p + 1)[1:-1]
            splitters = all_samples[np.round(idx).astype(np.int64)]
        else:
            splitters = all_samples[: p - 1]
    else:
        splitters = None
    splitters = ctx.comm.bcast(splitters, root=0)

    # Partition the sorted local block by the splitters and exchange.
    cuts = np.searchsorted(local, splitters, side="right")
    pieces = np.split(local, cuts)
    while len(pieces) < p:  # degenerate splitter sets on tiny inputs
        pieces.append(np.empty(0, dtype=local.dtype))
    received = ctx.comm.alltoallv(pieces[:p])
    merged = np.sort(np.concatenate([np.asarray(r) for r in received]), kind="stable")
    ctx.log_compute(int(max(len(merged), 1) * np.log2(max(len(merged), 2))))
    return merged


def parallel_sample_sort(
    blocks,
    *,
    machine: PROMachine | None = None,
    seed=None,
    oversampling: int = 1,
) -> tuple[list[np.ndarray], RunResult]:
    """Sort a block-distributed vector globally; return the sorted blocks.

    The concatenation of the returned blocks is the sorted concatenation of
    the inputs; the per-processor sizes are balanced with high probability
    but not exactly equal (that is inherent to sample sort).
    """
    if len(blocks) == 0:
        raise ValidationError("parallel_sample_sort needs at least one block")
    if machine is None:
        machine = PROMachine(len(blocks), seed=seed)
    if machine.n_procs != len(blocks):
        raise ValidationError(
            f"machine has {machine.n_procs} processors but {len(blocks)} blocks were given"
        )

    def program(ctx):
        return sample_sort_program(ctx, blocks[ctx.rank], oversampling=oversampling)

    run = machine.run(program)
    return run.results, run
