"""Baseline algorithms the paper positions itself against.

Section 1 of the paper argues that no previously known coarse-grained method
satisfies *uniformity*, *work-optimality* and *balance* simultaneously.  To
make that comparison concrete (experiment E6) this subpackage implements the
competing approaches:

* :mod:`repro.baselines.fisher_yates` -- the sequential reference algorithm
  of the PRO analysis (and the yardstick for the paper's 60-100 cycles/item
  figure);
* :mod:`repro.baselines.samplesort` -- a full parallel sample sort substrate
  (local sort, regular sampling, splitter broadcast, all-to-all partition,
  local merge);
* :mod:`repro.baselines.sort_based` -- Goodrich-style permutation by sorting
  random keys: uniform and balanced, but a ``log n`` factor away from
  work-optimality;
* :mod:`repro.baselines.dart_throwing` -- send every item to an independently
  chosen random processor and shuffle locally: work-optimal and balanced in
  expectation, but *not* uniform (and not even load-exact), optionally
  iterated to reduce the bias at a ``log p`` work penalty;
* :mod:`repro.baselines.rejection` -- dart throwing with rejection until the
  target layout is hit exactly: uniform and balanced, but the acceptance
  probability collapses as ``p`` grows, destroying work-optimality.
"""

from repro.baselines.fisher_yates import (
    fisher_yates,
    fisher_yates_inplace,
    sequential_permutation,
    per_item_cost,
)
from repro.baselines.samplesort import sample_sort_program, parallel_sample_sort
from repro.baselines.sort_based import sort_based_permutation, sort_based_program
from repro.baselines.dart_throwing import (
    dart_throwing_permutation,
    dart_throwing_program,
    iterated_dart_throwing,
)
from repro.baselines.rejection import rejection_permutation, RejectionStatistics

__all__ = [
    "fisher_yates",
    "fisher_yates_inplace",
    "sequential_permutation",
    "per_item_cost",
    "sample_sort_program",
    "parallel_sample_sort",
    "sort_based_permutation",
    "sort_based_program",
    "dart_throwing_permutation",
    "dart_throwing_program",
    "iterated_dart_throwing",
    "rejection_permutation",
    "RejectionStatistics",
]
