"""Experiment E3: cost of sampling the communication matrix.

Theorem 2 / Proposition 7: the sequential sampler costs ``O(p^2)`` -- linear
in the size of the matrix -- and the number of ``h(,)`` calls is exactly
``p * p'``.  The benchmark times Algorithm 3 and Algorithm 4 over a sweep of
``p`` and checks that the growth is quadratic in ``p`` (i.e. linear per
matrix entry), not worse.
"""

import numpy as np
import pytest

from repro.bench.harness import BenchRecord
from repro.core import commmatrix
from repro.core.hypergeometric import SampleRecorder

PROC_COUNTS = [8, 16, 32, 64]
ITEMS_PER_PROC = 1_000


@pytest.mark.benchmark(group="E3-matrix-sampling")
@pytest.mark.parametrize("strategy", ["sequential", "recursive"])
@pytest.mark.parametrize("n_procs", PROC_COUNTS)
def test_benchmark_matrix_sampling(benchmark, strategy, n_procs):
    rows = cols = np.full(n_procs, ITEMS_PER_PROC, dtype=np.int64)
    rng = np.random.default_rng(n_procs)
    benchmark.extra_info["n_procs"] = n_procs
    matrix = benchmark(lambda: commmatrix.sample_matrix(rows, cols, rng, strategy=strategy))
    assert matrix.shape == (n_procs, n_procs)


@pytest.mark.benchmark(group="E3-matrix-sampling")
def test_h_calls_scale_quadratically(benchmark, reproduction_summary):
    """The number of h(,) calls equals p*p' for Algorithm 3 (the O(p^2) claim)."""
    def count_calls():
        calls = {}
        for p in (8, 16, 32):
            rows = cols = np.full(p, 100, dtype=np.int64)
            with SampleRecorder() as rec:
                commmatrix.sample_matrix_sequential(rows, cols, np.random.default_rng(p))
            calls[p] = rec.n_calls
        return calls

    calls = benchmark.pedantic(count_calls, rounds=1, iterations=1)
    for p, n_calls in calls.items():
        assert n_calls == p * p
    reproduction_summary.add(
        BenchRecord("E3 h() calls at p=32", "p^2 = 1024", calls[32], note="Proposition 7")
    )
