"""Experiment E3: cost of sampling the communication matrix.

Theorem 2 / Proposition 7: the sequential sampler costs ``O(p^2)`` -- linear
in the size of the matrix -- and the number of ``h(,)`` calls is exactly
``p * p'``.  The benchmark times Algorithm 3 and Algorithm 4 over a sweep of
``p`` and checks that the growth is quadratic in ``p`` (i.e. linear per
matrix entry), not worse.

The ``batched`` strategy is the vectorized SamplerEngine kernel: the same
law evaluated level by level down the binary splitting tree with
``O(log p * log p')`` NumPy calls instead of ``p * p'`` scalar Python
calls; ``test_batched_engine_beats_scalar_path`` pins the speedup on a
256x256-marginal instance.
"""

import time

import numpy as np
import pytest

from repro.bench.harness import BenchRecord
from repro.core import commmatrix
from repro.core.hypergeometric import SampleRecorder

PROC_COUNTS = [8, 16, 32, 64]
ITEMS_PER_PROC = 1_000


@pytest.mark.benchmark(group="E3-matrix-sampling")
@pytest.mark.parametrize("strategy", ["sequential", "recursive", "batched"])
@pytest.mark.parametrize("n_procs", PROC_COUNTS)
def test_benchmark_matrix_sampling(benchmark, strategy, n_procs):
    rows = cols = np.full(n_procs, ITEMS_PER_PROC, dtype=np.int64)
    rng = np.random.default_rng(n_procs)
    benchmark.extra_info["n_procs"] = n_procs
    benchmark.extra_info["strategy"] = strategy
    matrix = benchmark(lambda: commmatrix.sample_matrix(rows, cols, rng, strategy=strategy))
    assert matrix.shape == (n_procs, n_procs)


def test_batched_engine_beats_scalar_path(reproduction_summary):
    """The batched kernel must be measurably faster on 256x256 marginals."""
    n_procs = 256
    rows = cols = np.full(n_procs, ITEMS_PER_PROC, dtype=np.int64)

    def best_of(strategy, repeats=3):
        times = []
        for rep in range(repeats):
            rng = np.random.default_rng(1000 + rep)
            start = time.perf_counter()
            matrix = commmatrix.sample_matrix(rows, cols, rng, strategy=strategy)
            times.append(time.perf_counter() - start)
            assert matrix.shape == (n_procs, n_procs)
        return min(times)

    scalar = best_of("sequential")
    batched = best_of("batched")
    speedup = scalar / batched
    reproduction_summary.add(
        BenchRecord(
            "batched vs scalar matrix sampling (256x256)",
            "> 1x", f"{speedup:.1f}x", unit="speedup",
            note="SamplerEngine vectorized kernels",
        )
    )
    # Very conservative bound: locally the observed speedup is ~30x, so even
    # a heavily contended CI runner has an order-of-magnitude margin; a
    # value this low only happens if the vectorized path regresses to
    # scalar work.
    assert speedup > 1.5, f"batched path only {speedup:.2f}x faster than scalar"


@pytest.mark.benchmark(group="E3-matrix-sampling")
def test_h_calls_scale_quadratically(benchmark, reproduction_summary):
    """The number of h(,) calls equals p*p' for Algorithm 3 (the O(p^2) claim)."""
    def count_calls():
        calls = {}
        for p in (8, 16, 32):
            rows = cols = np.full(p, 100, dtype=np.int64)
            with SampleRecorder() as rec:
                commmatrix.sample_matrix_sequential(rows, cols, np.random.default_rng(p))
            calls[p] = rec.n_calls
        return calls

    calls = benchmark.pedantic(count_calls, rounds=1, iterations=1)
    for p, n_calls in calls.items():
        assert n_calls == p * p
    reproduction_summary.add(
        BenchRecord("E3 h() calls at p=32", "p^2 = 1024", calls[32], note="Proposition 7")
    )
