"""Figure F1: the block-layout illustration of the paper.

Figure 1 shows a vector and a permuted copy distributed over 6 processors.
The benchmark regenerates the underlying data (block sizes, realised
communication matrix, per-item provenance) with the real algorithm and
checks the structural facts the figure conveys: both layouts cover the same
items, the matrix marginals equal the block sizes, and items from every
source block are spread over many target blocks.
"""

import numpy as np
import pytest

from repro.bench.figure1 import figure1_layout, render_layout
from repro.bench.harness import BenchRecord


@pytest.mark.benchmark(group="F1-figure1")
def test_benchmark_figure1_layout(benchmark, reproduction_summary):
    layout = benchmark(lambda: figure1_layout(n_items=60, n_procs=6, seed=2003))

    matrix = layout["communication_matrix"]
    assert matrix.sum() == 60
    assert np.array_equal(matrix.sum(axis=1), layout["source_sizes"])
    assert np.array_equal(matrix.sum(axis=0), layout["target_sizes"])

    # A uniform permutation spreads each source block across most targets.
    nonzero_targets_per_source = (matrix > 0).sum(axis=1)
    assert nonzero_targets_per_source.mean() >= 3

    text = render_layout(layout)
    assert text.count("\n") == 1
    reproduction_summary.add(
        BenchRecord("F1 processors", 6, int(matrix.shape[0]), note="layout regenerated, see examples/figure1_layout.py")
    )


@pytest.mark.benchmark(group="F1-figure1")
def test_benchmark_figure1_larger_instance(benchmark):
    """Same structure at a size where the exchange volume is non-trivial."""
    layout = benchmark(lambda: figure1_layout(n_items=6_000, n_procs=6, seed=7))
    assert layout["communication_matrix"].sum() == 6_000
