"""Benchmark-suite configuration.

Makes ``src/`` importable without installation (mirrors the repository-root
``conftest.py``) and provides a session-scoped collector that prints the
paper-vs-measured summary at the end of a benchmark run.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


class ReproductionSummary:
    """Collects BenchRecord rows from the individual benchmarks."""

    def __init__(self):
        self.records = []

    def add(self, record):
        self.records.append(record)

    def extend(self, records):
        self.records.extend(records)


@pytest.fixture(scope="session")
def reproduction_summary():
    return _SUMMARY


_SUMMARY = ReproductionSummary()


def pytest_sessionfinish(session, exitstatus):
    if not _SUMMARY.records:
        return
    from repro.bench.harness import paper_vs_measured_table

    report = paper_vs_measured_table(_SUMMARY.records, title="Paper vs measured (this run)")
    print("\n\n" + report + "\n")
