"""Experiment E2: uniform variates consumed per hypergeometric sample.

Paper (Section 6): "the amount of random numbers per sample of h(,) was
always less than 1.5 on average and 10 for the worst case."  The benchmark
reruns matrix sampling with the counting generator in several regimes and
reports the same two statistics, plus the ablation that forces the HRUA*
rejection sampler everywhere (showing why the automatic HIN/HRUA dispatch
matters for the average).
"""

import pytest

from repro.bench.harness import BenchRecord
from repro.bench.paper_claims import PAPER_CLAIMS
from repro.bench.randoms import uniforms_per_h_call

REGIMES = [
    # (n_procs, items_per_proc, layout)
    (8, 10_000, "balanced"),
    (16, 2_000, "balanced"),
    (16, 2_000, "uneven"),
    (32, 500, "gather"),
]


@pytest.mark.benchmark(group="E2-randoms-per-sample")
@pytest.mark.parametrize("n_procs,items_per_proc,layout", REGIMES)
def test_uniforms_per_h_call(benchmark, n_procs, items_per_proc, layout, reproduction_summary):
    result = benchmark.pedantic(
        uniforms_per_h_call,
        kwargs=dict(n_procs=n_procs, items_per_proc=items_per_proc, layout=layout,
                    n_matrices=5, seed=42),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(
        {k: result[k] for k in ("mean_uniforms", "max_uniforms", "n_calls")}
    )
    reproduction_summary.add(
        BenchRecord(
            f"E2 mean uniforms/h() (p={n_procs}, {layout})",
            f"< {PAPER_CLAIMS['E2']['mean_uniforms_max']}",
            f"{result['mean_uniforms']:.2f}",
            note="paper used Zechner's HRUE sampler; ours is HRUA*",
        )
    )
    reproduction_summary.add(
        BenchRecord(
            f"E2 worst-case uniforms/h() (p={n_procs}, {layout})",
            f"<= {PAPER_CLAIMS['E2']['worst_case_uniforms']}",
            result["max_uniforms"],
        )
    )
    # Qualitative reproduction: O(1) expected uniforms per call and a small,
    # parameter-independent worst case.
    assert result["mean_uniforms"] < 4.0
    assert result["max_uniforms"] <= 40


@pytest.mark.benchmark(group="E2-randoms-per-sample")
def test_dispatch_ablation_auto_vs_forced_hrua(benchmark, reproduction_summary):
    """Ablation: the automatic HIN/HRUA dispatch vs rejection sampling everywhere."""
    def measure_both():
        auto = uniforms_per_h_call(16, 2_000, n_matrices=3, method="auto", seed=7)
        hrua = uniforms_per_h_call(16, 2_000, n_matrices=3, method="hrua", seed=7)
        return auto, hrua

    auto, hrua = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    reproduction_summary.add(
        BenchRecord("E2 ablation mean uniforms (auto vs forced HRUA)",
                    "n/a", f"{auto['mean_uniforms']:.2f} vs {hrua['mean_uniforms']:.2f}")
    )
    assert auto["mean_uniforms"] <= hrua["mean_uniforms"] + 0.25
