"""Experiment E4: Algorithm 5 (Theta(p log p) per processor) vs Algorithm 6 (Theta(p)).

Propositions 8 and 9.  Wall-clock timings of in-process thread runs are noisy
at these sizes, so the benchmark times the runs *and* asserts on the exact
resource counters of the cost reports, which are deterministic: the maximum
per-processor communication volume of Algorithm 5 grows by an extra log
factor compared with Algorithm 6, while both produce identically distributed
matrices.
"""

import pytest

from repro.bench.harness import BenchRecord
from repro.core.parallel_matrix import sample_matrix_parallel

PROC_COUNTS = [8, 16, 32]
ITEMS_PER_PROC = 64


@pytest.mark.benchmark(group="E4-alg5-vs-alg6")
@pytest.mark.parametrize("algorithm", ["alg5", "alg6", "root"])
@pytest.mark.parametrize("n_procs", PROC_COUNTS)
def test_benchmark_parallel_matrix(benchmark, algorithm, n_procs):
    rows = cols = [ITEMS_PER_PROC] * n_procs
    benchmark.extra_info["n_procs"] = n_procs

    def run():
        matrix, run_result = sample_matrix_parallel(rows, cols, algorithm=algorithm, seed=n_procs)
        return matrix, run_result

    matrix, _ = benchmark(run)
    assert matrix.shape == (n_procs, n_procs)


@pytest.mark.benchmark(group="E4-alg5-vs-alg6")
def test_per_processor_communication_growth(benchmark, reproduction_summary):
    """Max per-processor words: alg5 grows ~ p log p, alg6 ~ p (Props 8-9)."""
    def collect():
        stats = {}
        for algorithm in ("alg5", "alg6"):
            for p in (16, 64):
                rows = cols = [16] * p
                _, run = sample_matrix_parallel(rows, cols, algorithm=algorithm, seed=p)
                stats[(algorithm, p)] = run.cost_report.max_over_ranks("words_sent")
        return stats

    stats = benchmark.pedantic(collect, rounds=1, iterations=1)
    growth5 = stats[("alg5", 64)] / stats[("alg5", 16)]
    growth6 = stats[("alg6", 64)] / stats[("alg6", 16)]
    reproduction_summary.add(
        BenchRecord("E4 per-proc words growth 16->64 procs (alg5)", "~ 4x * log factor", f"{growth5:.2f}x")
    )
    reproduction_summary.add(
        BenchRecord("E4 per-proc words growth 16->64 procs (alg6)", "~ 4x", f"{growth6:.2f}x")
    )
    assert growth5 > growth6
    assert stats[("alg5", 64)] > stats[("alg6", 64)]
