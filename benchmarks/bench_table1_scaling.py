"""Experiment T1: the scaling table of Section 6.

Regenerates the paper's running-time table in two ways:

* the calibrated cost model evaluated at the paper's own parameters
  (480e6 items, p in {3, 6, 12, 24, 48}), compared row by row against the
  paper's measurements (printed in the end-of-run summary);
* measured wall-clock times of the real implementation (thread backend) for
  a laptop-sized input, timed with pytest-benchmark: one sequential
  reference plus one row per processor count.
"""

import numpy as np
import pytest

from repro.baselines.fisher_yates import sequential_permutation
from repro.bench.harness import BenchRecord
from repro.bench.paper_claims import PAPER_CLAIMS
from repro.bench.scaling import (
    crossover_processors,
    overhead_factor,
    predicted_scaling_table,
)
from repro.core.permutation import random_permutation
from repro.pro.machine import PROMachine

N_MEASURED = 200_000
MEASURED_PROCS = [2, 4, 8]


@pytest.mark.benchmark(group="T1-model")
def test_model_reproduces_paper_table(benchmark, reproduction_summary):
    """Evaluate the calibrated model for every row of the paper's table."""
    rows = benchmark(predicted_scaling_table)
    for row in rows:
        paper = row["paper_seconds"]
        if paper is None:
            continue
        label = "sequential" if row["n_procs"] == 0 else f"p={row['n_procs']}"
        reproduction_summary.add(
            BenchRecord(f"T1 {label}", f"{paper:.1f}", f"{row['predicted_seconds']:.1f}", unit="s",
                        note="480e6 items, calibrated model")
        )
        assert abs(row["predicted_seconds"] - paper) / paper < 0.20
    factor = overhead_factor(rows)
    low, high = PAPER_CLAIMS["T1"]["overhead_factor_range"]
    reproduction_summary.add(BenchRecord("T1 overhead factor", f"{low}-{high}", f"{factor:.2f}", unit="x"))
    reproduction_summary.add(
        BenchRecord("T1 crossover", PAPER_CLAIMS["T1"]["crossover_processors"],
                    crossover_processors(rows), unit="procs")
    )
    assert low <= factor <= high
    assert crossover_processors(rows) == PAPER_CLAIMS["T1"]["crossover_processors"]


@pytest.mark.benchmark(group="T1-scaling")
def test_benchmark_sequential_reference(benchmark):
    """The sequential reference permutation (the '137 s' row, scaled down)."""
    data = np.arange(N_MEASURED, dtype=np.int64)
    rng = np.random.default_rng(0)
    benchmark.extra_info["n_items"] = N_MEASURED
    result = benchmark(lambda: sequential_permutation(data, rng))
    assert len(result) == N_MEASURED


@pytest.mark.benchmark(group="T1-scaling")
@pytest.mark.parametrize("n_procs", MEASURED_PROCS)
def test_benchmark_parallel_permutation(benchmark, n_procs):
    """Algorithm 1 on the thread backend (the parallel rows, scaled down)."""
    data = np.arange(N_MEASURED, dtype=np.int64)
    machine = PROMachine(n_procs, seed=1)
    benchmark.extra_info["n_items"] = N_MEASURED
    benchmark.extra_info["n_procs"] = n_procs
    result = benchmark(lambda: random_permutation(data, n_procs=n_procs, machine=machine))
    assert np.array_equal(np.sort(result), data)
