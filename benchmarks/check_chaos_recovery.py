"""CI chaos gate: every committed fault plan must recover bit-identically.

Sweeps the committed chaos plans
(:func:`repro.pro.resilience.committed_chaos_plans`) across the backend
matrix -- ``{thread, sim, process} x {sharedmem, pickle} x {persistent,
cold}`` at the canonical ``p = 4`` -- under ``RetryPolicy(max_attempts=2)``.
Each cell injects the plan's fault on the first attempt and must (a)
complete, (b) spend exactly one retry, and (c) return results
bit-identical to a fault-free reference run (results are
backend-invariant for a fixed seed, so one clean thread run references
every cell).  Writes the per-cell outcomes as a JSON artifact for the
workflow to upload.

Usage (what ``.github/workflows/ci.yml`` runs)::

    PYTHONPATH=src python benchmarks/check_chaos_recovery.py \
        --out chaos-report.json --fleet-report chaos-fleet-report.json

Exit code 0 = every cell recovered bit-identically, 1 = at least one
cell failed to recover (or recovered with different results).

``--fleet-report`` additionally attaches a
:class:`~repro.pro.telemetry.Telemetry` recorder to every cell's machine
and writes the collected :class:`~repro.pro.telemetry.FleetReport`
dictionaries -- one per (plan, cell), each carrying the heal/retry event
sequence the recovery produced -- as a second CI artifact.
"""

import argparse
import json
import sys
import time

from repro.pro.backends.faults import FaultInjectingBackend
from repro.pro.machine import PROMachine
from repro.pro.resilience import RetryPolicy, committed_chaos_plans
from repro.util.timeouts import scale_timeout

P = 4  # the rank count the committed plans address
SEED = 20030607

#: (backend, transport, persistent) cells of the sweep.
CELLS = [
    ("thread", None, False),
    ("sim", None, False),
    ("process", "sharedmem", False),
    ("process", "pickle", False),
    ("process", "sharedmem", True),
    ("process", "pickle", True),
]


def _chaos_program(ctx):
    # One surface per committed fault class: an rng draw (stream parity
    # under replay), an all-to-all (messages for DropMessage, early fabric
    # ops for CrashRank) and a barrier (BarrierTimeout).
    value = float(ctx.rng.random())
    gathered = ctx.comm.alltoall([value * (j + 1) for j in range(ctx.comm.size)])
    ctx.comm.barrier()
    return value, gathered


def _cell_id(backend, transport, persistent):
    vid = backend if transport is None else f"{backend}-{transport}"
    return f"{vid}-persistent" if persistent else vid


def run_sweep(*, fleet_reports=None):
    """Run every (plan, cell) combination; returns (reports, failures).

    When ``fleet_reports`` is a list, every cell's machine gets a
    :class:`~repro.pro.telemetry.Telemetry` recorder and the collected
    FleetReport dicts (tagged with plan and cell) are appended to it.
    """
    from repro.pro.telemetry import Telemetry

    clean = PROMachine(P, seed=SEED, backend="thread")
    try:
        reference = clean.run(_chaos_program).results
    finally:
        clean.close()

    plans = committed_chaos_plans()
    policy = RetryPolicy(max_attempts=2)
    reports, failures = [], []
    for plan_name in sorted(plans):
        for backend, transport, persistent in CELLS:
            cell = _cell_id(backend, transport, persistent)
            options = {} if transport is None else {"transport": transport}
            if persistent:
                options["persistent"] = True
            wrapper = FaultInjectingBackend(backend, plans[plan_name], **options)
            telemetry = Telemetry() if fleet_reports is not None else None
            # The timeout bounds how long a dropped message takes to
            # surface; it is the recovery-latency ceiling of drop plans.
            machine = PROMachine(P, seed=SEED, backend=wrapper, retry=policy,
                                 timeout=scale_timeout(5), telemetry=telemetry)
            started = time.perf_counter()
            verdict, detail = "recovered", ""
            try:
                try:
                    result = machine.run(_chaos_program)
                finally:
                    machine.close()
                if result.results != reference:
                    verdict = "WRONG RESULTS"
                    detail = "recovered output differs from the fault-free run"
                elif result.cost_report.retries != 1:
                    verdict = "NO RETRY"
                    detail = (f"expected exactly one retry, saw "
                              f"{result.cost_report.retries}")
            except Exception as exc:  # noqa: BLE001 - report, do not abort sweep
                verdict = "FAILED"
                detail = repr(exc)
            elapsed = time.perf_counter() - started
            ok = verdict == "recovered"
            reports.append({
                "plan": plan_name,
                "cell": cell,
                "verdict": verdict,
                "detail": detail,
                "seconds": round(elapsed, 3),
            })
            if not ok:
                failures.append((plan_name, cell, verdict, detail))
            if telemetry is not None and telemetry.last is not None:
                fleet_reports.append({
                    "plan": plan_name, "cell": cell,
                    "fleet_report": telemetry.last.to_dict(),
                })
            print(f"{plan_name:28s} {cell:24s} {elapsed * 1e3:8.0f}ms  {verdict}"
                  + (f"  ({detail})" if detail and not ok else ""))
    return reports, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="chaos-report.json",
                        help="where to write per-cell outcomes (CI artifact)")
    parser.add_argument("--fleet-report", default=None, metavar="PATH",
                        help="also write every cell's repatriated FleetReport "
                             "(telemetry: retry/heal events, transport "
                             "counters) to PATH (CI artifact)")
    args = parser.parse_args(argv)

    fleet_reports = [] if args.fleet_report is not None else None
    reports, failures = run_sweep(fleet_reports=fleet_reports)

    if fleet_reports is not None:
        with open(args.fleet_report, "w") as fh:
            json.dump({
                "suite": "chaos_recovery_fleet_reports",
                "p": P,
                "seed": SEED,
                "reports": fleet_reports,
            }, fh, indent=2)
            fh.write("\n")
        print(f"wrote {len(fleet_reports)} fleet reports to {args.fleet_report}")

    with open(args.out, "w") as fh:
        json.dump({
            "suite": "chaos_recovery_gate",
            "p": P,
            "seed": SEED,
            "max_attempts": 2,
            "cells": reports,
        }, fh, indent=2)
        fh.write("\n")
    print(f"wrote {len(reports)} cell outcomes to {args.out}")

    if failures:
        print("CHAOS GATE FAILED: " + "; ".join(
            f"{plan} on {cell}: {verdict}" for plan, cell, verdict, _ in failures))
        return 1
    print(f"all {len(reports)} chaos cells recovered bit-identically "
          "(retry budget 2)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
