"""Extension experiment E8 (the paper's outlook): external-memory permutation.

Section 6 suggests using the coarse-grained algorithm to avoid the cache
misses of the straightforward shuffle.  The benchmark compares block-transfer
counts of the two-pass matrix-driven permutation against naive Fisher-Yates
through a small cache, and times both.
"""

import numpy as np
import pytest

from repro.bench.harness import BenchRecord
from repro.extmem import (
    MemoryBlockStore,
    external_random_permutation,
    naive_external_permutation,
)

N_ITEMS = 20_000
BLOCK_SIZE = 1_000
CACHE_BLOCKS = 4


def _fresh_source():
    store = MemoryBlockStore()
    store.load_vector(np.arange(N_ITEMS), block_size=BLOCK_SIZE)
    store.io.reset()
    return store


@pytest.mark.benchmark(group="E8-external-memory")
def test_benchmark_two_pass(benchmark, reproduction_summary):
    def run():
        return external_random_permutation(_fresh_source(), MemoryBlockStore(), seed=1)

    result = benchmark(run)
    reproduction_summary.add(
        BenchRecord("E8 two-pass block transfers", "O(n/B)", result.block_transfers,
                    note=f"{N_ITEMS} items in blocks of {BLOCK_SIZE}")
    )
    assert result.block_transfers <= 6 * (N_ITEMS // BLOCK_SIZE)


@pytest.mark.benchmark(group="E8-external-memory")
def test_benchmark_naive_cached(benchmark, reproduction_summary):
    def run():
        return naive_external_permutation(
            _fresh_source(), MemoryBlockStore(), cache_blocks=CACHE_BLOCKS, seed=1
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    reproduction_summary.add(
        BenchRecord("E8 naive block transfers", "~ one per item once out of cache",
                    result.block_transfers,
                    note=f"cache of {CACHE_BLOCKS} blocks")
    )
    # The naive method transfers at least an order of magnitude more blocks.
    assert result.block_transfers > 10 * 6 * (N_ITEMS // BLOCK_SIZE)
