"""Backend and transport comparison: inline vs thread vs process wall-time.

Times the two driver-level workloads -- communication-matrix sampling on a
PRO machine and the distributed permutation (Algorithm 1) -- on every
execution backend, for the process backend on *both* payload transports
(``pickle`` queue buffers vs ``sharedmem`` zero-copy segments), and for
each transport both *cold* (fresh processes per run) and *persistent*
(runs dispatched to a standing worker pool), at several ``(n, p)``
points.  A third workload, ``dispatch``, runs a trivial program so that
nothing but the per-run fixed cost is measured: for cold variants that is
machine construction plus process spawn, for persistent variants the
task-queue dispatch to the standing pool.  A fourth, ``warm_driver``,
measures what a plain repeated *top-level driver call* costs: its
persistent variant is the warm-by-default path through the process-wide
default pool cache (ISSUE 5), its cold variant the same call with
``persistent=False``.  A fifth, ``crash_recovery``, measures
crash-to-recovered latency: every timed call injects a first-attempt
rank crash (``CrashRank`` ``at_run=0``) under ``retry=2`` and times the
whole failed-attempt + heal + bit-identical replay sequence -- for
persistent variants against a standing supervised pool (only the dead
rank respawns), for cold variants against per-run process spawns.  Run
with ``--benchmark-json`` to get the same pytest-benchmark JSON shape as
the rest of the suite (one record per (workload, backend, transport,
persistent, n, p) with the parameters echoed in ``extra_info``).

Reading the numbers: the thread backend wins at small in-process problem
sizes (rank start-up is microseconds and NumPy releases the GIL), while
the cold process backend pays process spawn plus payload movement per
run.  The transport dimension isolates the *serialisation* share of that
overhead (sharedmem ships every bulk payload with one copy in and a
zero-copy view out); the persistent dimension isolates the *spawn* share:
a standing pool pays it once, so the acceptance gate of ISSUE 3 is that
the persistent pool's per-run dispatch overhead is at least 5x lower than
cold-spawn at the ``dispatch`` point on a multi-core box.

Direct execution writes the tracked perf-trajectory artifact::

    PYTHONPATH=src python benchmarks/bench_backends.py --json benchmarks/BENCH_backends.json

producing per-(workload, backend, transport, persistent, n, p) median
wall times so that future PRs can diff the trajectory
(``benchmarks/check_bench_regression.py`` is the CI smoke gate doing
exactly that for the 1M / p=4 cell).
"""

import argparse
import json
import statistics
import sys
import time

import numpy as np

try:
    import pytest
except ImportError:  # pragma: no cover - direct execution without pytest
    pytest = None

from repro.core.parallel_matrix import sample_matrix_parallel
from repro.core.permutation import random_permutation
from repro.pro.machine import PROMachine

#: (n_items, n_procs) grid; inline only participates where p == 1.
POINTS = [(20_000, 1), (20_000, 2), (20_000, 4), (100_000, 4), (1_000_000, 4)]
#: The acceptance point of the transport comparison (ISSUE 2).
BIG_POINT = (1_000_000, 8)
#: The per-run fixed-cost workload runs a trivial program at this point.
DISPATCH_POINT = (0, 4)
#: The warm-driver workload point: small enough that the per-call fixed
#: cost (machine build + spawn vs warm-pool dispatch) dominates.
WARM_DRIVER_POINT = (2_000, 4)
#: The crash-to-recovered latency point (the canonical chaos p).
CRASH_RECOVERY_POINT = (20_000, 4)
#: (backend, transport, persistent) variants; None means no transport.
VARIANTS = [
    ("inline", None, False),
    ("thread", None, False),
    ("process", "pickle", False),
    ("process", "sharedmem", False),
    ("process", "pickle", True),
    ("process", "sharedmem", True),
]


def _variant_id(backend, transport, persistent=False):
    vid = backend if transport is None else f"{backend}-{transport}"
    return f"{vid}-persistent" if persistent else vid


def _machine_options(transport):
    return {} if transport is None else {"transport": transport}


def _trivial_program(ctx):
    """Module-level no-op rank program (picklable for the persistent pool)."""
    return ctx.rank


def _run_matrix(backend, transport, n_items, n_procs, machine=None):
    row_sums = np.full(n_procs, n_items // n_procs, dtype=np.int64)
    matrix, _ = sample_matrix_parallel(
        row_sums, algorithm="alg6" if n_procs > 1 else "root",
        machine=machine,
        backend=None if machine is not None else backend,
        transport=None if machine is not None else transport,
        seed=None if machine is not None else 0,
    )
    return matrix


def _run_permutation(backend, transport, n_items, n_procs, machine=None):
    data = np.arange(n_items, dtype=np.int64)
    return random_permutation(
        data, n_procs=n_procs, machine=machine,
        backend=None if machine is not None else backend,
        transport=None if machine is not None else transport,
        seed=None if machine is not None else 0,
    )


def _run_dispatch(backend, transport, n_items, n_procs, machine=None):
    if machine is not None:
        return machine.run(_trivial_program).results
    cold = PROMachine(n_procs, seed=0, backend=backend,
                      backend_options=_machine_options(transport))
    return cold.run(_trivial_program).results


def _run_warm_driver(backend, transport, n_items, n_procs, *, persistent):
    """One *top-level driver call* (no pre-built machine).

    This is the workload the default pool cache exists for: with
    ``persistent=None`` the call transparently borrows the process-wide
    warm fleet (the tentpole of ISSUE 5); ``persistent=False`` forces the
    historic cold spawn per call.
    """
    data = np.arange(n_items, dtype=np.int64)
    return random_permutation(data, n_procs=n_procs, backend=backend,
                              transport=transport, seed=0,
                              persistent=persistent)


def _crash_recovery_runner(backend, transport, persistent, n_items, n_procs):
    """``(callable, closer)`` timing one crash + heal + bit-exact replay.

    ``runs_started`` accumulates on a fault wrapper, so every call wraps
    a *fresh* ``FaultInjectingBackend`` (its ``at_run=0`` crash fires on
    the call's first attempt and the replay runs clean).  Persistent
    variants share one standing inner backend across calls: the timed
    quantity is then the supervised pool's recovery -- respawn the dead
    rank into the live fabric -- not a fleet rebuild.
    """
    from repro.pro.backends.faults import CrashRank, FaultInjectingBackend
    from repro.pro.backends.registry import get_backend

    options = _machine_options(transport)
    inner = (get_backend(backend, persistent=True, **options)
             if persistent else None)
    data = np.arange(n_items, dtype=np.int64)

    def call():
        faulty = FaultInjectingBackend(
            inner if inner is not None else backend,
            [CrashRank(rank=1, at_op=1, at_run=0)],
            **({} if inner is not None else options))
        machine = PROMachine(n_procs, seed=0, backend=faulty, retry=2)
        try:
            return random_permutation(data, machine=machine)
        finally:
            if inner is None:
                machine.close()  # shared inner backends outlive the call

    def closer():
        close = getattr(inner, "close", None)
        if close is not None:
            close()

    return call, closer


WORKLOADS = {"matrix": _run_matrix, "permutation": _run_permutation,
             "dispatch": _run_dispatch, "warm_driver": _run_warm_driver,
             "crash_recovery": _crash_recovery_runner}


def make_runner(workload, backend, transport, persistent, n_items, n_procs):
    """Build ``(callable, closer)`` for one benchmark cell.

    Cold variants construct their machinery inside every call (that is the
    cost being measured); persistent variants build one standing machine
    up front -- the pool spawn happens on the warmup run -- and each call
    times a dispatch to the warm pool.  The ``warm_driver`` workload has
    no pre-built machine at all: its persistent variant measures what a
    plain repeated driver call costs now that the default pool cache
    keeps the fleet warm between calls, and its closer clears the cache
    so later cells start cold.
    """
    if workload == "crash_recovery":
        return _crash_recovery_runner(backend, transport, persistent,
                                      n_items, n_procs)
    if workload == "warm_driver":
        from repro.pro.backends.pool import clear_default_pools

        mode = None if persistent else False
        clear_default_pools()  # this cell starts from a cold cache

        def call():
            return _run_warm_driver(backend, transport, n_items, n_procs,
                                    persistent=mode)

        return call, clear_default_pools
    fn = WORKLOADS[workload]
    if not persistent:
        return (lambda: fn(backend, transport, n_items, n_procs)), (lambda: None)
    machine = PROMachine(n_procs, seed=0, backend=backend,
                         backend_options=_machine_options(transport),
                         persistent=True)
    return (lambda: fn(backend, transport, n_items, n_procs, machine=machine),
            machine.close)


def median_seconds(workload, backend, transport, n_items, n_procs,
                   *, persistent=False, rounds=3, warmup=1):
    """Median wall time of ``rounds`` runs after ``warmup`` throwaway runs."""
    runner, closer = make_runner(workload, backend, transport, persistent,
                                 n_items, n_procs)
    try:
        for _ in range(warmup):
            runner()
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            runner()
            times.append(time.perf_counter() - start)
    finally:
        closer()
    return float(statistics.median(times))


# ----------------------------------------------------------------------------
# pytest-benchmark suite
# ----------------------------------------------------------------------------
if pytest is not None:

    def _skip_if_incompatible(backend, n_procs):
        if backend == "inline" and n_procs != 1:
            pytest.skip("the inline backend only runs single-rank machines")

    @pytest.mark.benchmark(group="backends-matrix")
    @pytest.mark.parametrize("backend,transport,persistent", VARIANTS,
                             ids=[_variant_id(*v) for v in VARIANTS])
    @pytest.mark.parametrize("n_items,n_procs", POINTS[:4])
    def test_benchmark_matrix_sampling_backends(benchmark, backend, transport,
                                                persistent, n_items, n_procs):
        _skip_if_incompatible(backend, n_procs)
        benchmark.extra_info.update({"backend": backend, "transport": transport,
                                     "persistent": persistent,
                                     "n": n_items, "p": n_procs})
        runner, closer = make_runner("matrix", backend, transport, persistent,
                                     n_items, n_procs)
        try:
            matrix = benchmark.pedantic(runner, rounds=3, iterations=1,
                                        warmup_rounds=1)
        finally:
            closer()
        assert matrix.sum() == n_procs * (n_items // n_procs)

    @pytest.mark.benchmark(group="backends-permutation")
    @pytest.mark.parametrize("backend,transport,persistent", VARIANTS,
                             ids=[_variant_id(*v) for v in VARIANTS])
    @pytest.mark.parametrize("n_items,n_procs", POINTS[:4])
    def test_benchmark_permutation_backends(benchmark, backend, transport,
                                            persistent, n_items, n_procs):
        _skip_if_incompatible(backend, n_procs)
        benchmark.extra_info.update({"backend": backend, "transport": transport,
                                     "persistent": persistent,
                                     "n": n_items, "p": n_procs})
        runner, closer = make_runner("permutation", backend, transport,
                                     persistent, n_items, n_procs)
        try:
            out = benchmark.pedantic(runner, rounds=3, iterations=1,
                                     warmup_rounds=1)
        finally:
            closer()
        assert out.shape == (n_items,)

    def test_backends_agree_for_fixed_seed():
        """Smoke-level determinism check inside the benchmark suite."""
        row_sums = np.full(4, 500, dtype=np.int64)
        reference, _ = sample_matrix_parallel(row_sums, backend="thread", seed=9)
        for backend, transport, persistent in VARIANTS[2:]:
            matrix, _ = sample_matrix_parallel(
                row_sums, backend=backend, transport=transport,
                persistent=persistent, seed=9,
            )
            assert np.array_equal(reference, matrix), (backend, transport,
                                                       persistent)

    def test_sharedmem_halves_process_overhead():
        """ISSUE 2 acceptance: >= 2x lower process overhead at 1M / p=8.

        Overhead is the process-backend wall time in excess of the thread
        backend on the same workload (the thread backend shares the
        address space, so the excess is process spawn + payload movement).
        On boxes without real parallelism the overhead is dominated by
        scheduler churn among p oversubscribed processes -- a cost no
        payload transport can influence -- so the 2x gate only applies
        where the process backend can actually run its ranks in parallel;
        elsewhere the weaker monotone property (sharedmem never slower)
        is asserted and the transport-isolated 2x gate below still runs.
        """
        import os

        n_items, n_procs = BIG_POINT
        parallel_box = (os.cpu_count() or 1) >= 4
        attempts = []
        for _ in range(3):  # best-of-3 measurement passes (noise shield)
            thread = median_seconds("permutation", "thread", None, n_items, n_procs)
            pickle_t = median_seconds("permutation", "process", "pickle",
                                      n_items, n_procs)
            shm_t = median_seconds("permutation", "process", "sharedmem",
                                   n_items, n_procs)
            pickle_overhead = max(pickle_t - thread, 0.0)
            shm_overhead = max(shm_t - thread, 0.0)
            attempts.append(
                f"sharedmem overhead {shm_overhead:.3f}s vs pickle "
                f"{pickle_overhead:.3f}s (thread reference {thread:.3f}s)"
            )
            if parallel_box:
                if shm_overhead * 2 <= pickle_overhead:
                    break
            elif shm_t <= pickle_t * 1.05:
                break
        else:
            raise AssertionError("; ".join(attempts))

    def test_sharedmem_halves_payload_movement_overhead():
        """Transport-isolated 2x gate: shipping the 1M-element result blocks.

        Each rank returns its n/p block of a 1M-element vector to the
        caller -- exactly the bulk collection of a permutation run, with
        no compute to dilute the signal.  The payload-movement overhead
        (workload time minus a trivial run on the *same* backend and
        transport, i.e. minus spawn and synchronisation) must be at least
        2x smaller with zero-copy segments than with queue pickling; this
        holds on a single core too, because the cost is pure data
        movement.
        """
        n_items, n_procs = BIG_POINT
        block = n_items // n_procs

        def run_result_workload(transport, payload_items):
            machine = PROMachine(n_procs, seed=0, backend="process",
                                 backend_options={"transport": transport})

            def program(ctx):
                return np.zeros(payload_items, dtype=np.int64)

            times = []
            machine.run(program)  # warmup
            for _ in range(9):
                start = time.perf_counter()
                machine.run(program)
                times.append(time.perf_counter() - start)
            return min(times)

        attempts = []
        for _ in range(3):  # best-of-3 measurement passes (noise shield)
            overheads = {}
            for transport in ("pickle", "sharedmem"):
                loaded = run_result_workload(transport, block)
                trivial = run_result_workload(transport, 1)
                overheads[transport] = max(loaded - trivial, 1e-9)
            attempts.append(overheads)
            if overheads["sharedmem"] * 2 <= overheads["pickle"]:
                break
        else:
            raise AssertionError(f"payload overhead never halved: {attempts}")

    def test_warm_driver_beats_cold_3x_and_encodes_once_per_run():
        """ISSUE 5 acceptance: warm-by-default driver calls >= 3x cheaper.

        Plain repeated driver calls (``backend="process"``, nothing else)
        now borrow the process-wide warm fleet; the same call with
        ``persistent=False`` pays machine build + p process spawns every
        time.  At the small warm-driver point the fixed cost dominates,
        so the warm:cold ratio is the cache's raison d'etre.  The warm
        path must also encode each run's bulk dispatch arguments exactly
        once (one multi-consumer segment per call, not one copy per
        rank), asserted through the standing fleet's transport counters.
        """
        from repro.pro.backends.pool import clear_default_pools, default_pools

        n_items, n_procs = WARM_DRIVER_POINT
        attempts = []
        try:
            for _ in range(3):  # best-of-3 measurement passes (noise shield)
                cold = median_seconds("warm_driver", "process", "sharedmem",
                                      n_items, n_procs, rounds=5)
                warm = median_seconds("warm_driver", "process", "sharedmem",
                                      n_items, n_procs, persistent=True,
                                      rounds=5)
                attempts.append(
                    f"cold {cold * 1e3:.2f}ms vs warm {warm * 1e3:.2f}ms")
                if warm * 3 <= cold:
                    break
            else:
                raise AssertionError(
                    "warm driver calls never 3x cheaper: " + "; ".join(attempts)
                )
            # Encode-once-per-run: k warm driver calls on a fresh fleet
            # produce exactly k shared encodes, and -- once the blocks are
            # big enough to go out-of-band -- exactly k multi-consumer
            # segments (one per run, NOT one copy per rank).
            clear_default_pools()
            for _ in range(4):
                _run_warm_driver("process", "sharedmem", 200_000, n_procs,
                                 persistent=None)
            pools = list(default_pools().values())
            assert len(pools) == 1, pools
            stats = pools[0].fabric.transport.stats
            assert stats.shared_encode_calls == 4, stats.snapshot()
            assert stats.multi_segments_created == 4, stats.snapshot()
        finally:
            clear_default_pools()

    def test_persistent_pool_cuts_dispatch_overhead_5x():
        """ISSUE 3 acceptance: warm-pool dispatch >= 5x cheaper than cold spawn.

        The ``dispatch`` workload runs a trivial program, so its wall time
        *is* the per-run fixed cost: machine construction plus p process
        spawns for the cold backend, a task-queue round-trip to the
        standing pool for the persistent one.  Spawn costs do not shrink
        on small boxes, so the gate applies everywhere; a best-of-3 shield
        absorbs scheduler noise.
        """
        n_items, n_procs = DISPATCH_POINT
        attempts = []
        for _ in range(3):
            cold = median_seconds("dispatch", "process", "sharedmem",
                                  n_items, n_procs, rounds=5)
            warm = median_seconds("dispatch", "process", "sharedmem",
                                  n_items, n_procs, persistent=True, rounds=5)
            attempts.append(f"cold {cold * 1e3:.2f}ms vs warm {warm * 1e3:.2f}ms")
            if warm * 5 <= cold:
                break
        else:
            raise AssertionError(
                "persistent dispatch never 5x cheaper: " + "; ".join(attempts)
            )


# ----------------------------------------------------------------------------
# Tracked perf-trajectory artifact (BENCH_backends.json)
# ----------------------------------------------------------------------------
def collect_records(*, rounds=3):
    """Median wall times over the full (workload, variant, n, p) grid."""
    records = []
    grid = POINTS + [BIG_POINT]
    thread_reference = {}
    for workload in sorted(WORKLOADS):
        if workload == "dispatch":
            points = [DISPATCH_POINT]  # fixed cost is n-independent
        elif workload == "warm_driver":
            points = [WARM_DRIVER_POINT]  # fixed-cost-dominated by design
        elif workload == "crash_recovery":
            points = [CRASH_RECOVERY_POINT]  # the canonical chaos p
        elif workload == "matrix":
            # The matrix workload is O(p^2) and n-independent: skip the
            # big-n duplicates of the p=4 cell.
            points = [pt for pt in grid
                      if pt not in (BIG_POINT, (1_000_000, 4))]
        else:
            points = grid
        for n_items, n_procs in points:
            for backend, transport, persistent in VARIANTS:
                if backend == "inline" and n_procs != 1:
                    continue
                if workload == "warm_driver" and backend != "process":
                    continue  # the workload isolates process-spawn cost
                seconds = median_seconds(
                    workload, backend, transport, n_items, n_procs,
                    persistent=persistent, rounds=rounds,
                )
                if backend == "thread":
                    thread_reference[(workload, n_items, n_procs)] = seconds
                records.append({
                    "workload": workload,
                    "backend": backend,
                    "transport": transport,
                    "persistent": persistent,
                    "n": n_items,
                    "p": n_procs,
                    "median_seconds": round(seconds, 6),
                })
    for record in records:
        reference = thread_reference.get(
            (record["workload"], record["n"], record["p"])
        )
        if reference is not None and record["backend"] == "process":
            record["overhead_vs_thread_seconds"] = round(
                max(record["median_seconds"] - reference, 0.0), 6
            )
    return records


def _workload_speedup(records, workload, transport="sharedmem"):
    """Cold / warm median ratio of one workload's cells (or None)."""
    by_key = {}
    for r in records:
        if r["workload"] == workload and r["transport"] == transport:
            by_key[bool(r.get("persistent"))] = r["median_seconds"]
    if True in by_key and False in by_key and by_key[True] > 0:
        return by_key[False] / by_key[True]
    return None


def dispatch_speedup(records):
    """Cold-spawn / warm-pool dispatch ratio from a record list (or None)."""
    return _workload_speedup(records, "dispatch")


def adaptive_ring_cells():
    """The tracked adaptive-ring geometry of the default transport."""
    from repro.pro.backends.sharedmem import SharedMemoryTransport

    transport = SharedMemoryTransport()
    return {
        "ring_bytes": transport.ring_bytes,
        "ring_max_bytes": transport.ring_max_bytes,
        "ring_min_bytes": transport.ring_min_bytes,
        "adaptive": transport.adaptive_ring,
    }


def fleet_telemetry_cells(*, n_items=100_000, n_procs=4, runs=3):
    """Observed ring geometry and fallback rate of the warm default fleet.

    ``adaptive_ring_cells`` above records what the transport is
    *configured* to do; this cell records what a fleet actually *did*:
    ``runs`` permutations on one persistent process+sharedmem machine
    with a :class:`~repro.pro.telemetry.Telemetry` recorder attached,
    summarised into the repatriated per-rank ring geometry (capacity,
    resizes, wraps) and the transport's oversize-fallback rate.
    """
    from repro.pro.telemetry import Telemetry

    telemetry = Telemetry()
    machine = PROMachine(n_procs, seed=0, backend="process",
                         backend_options={"transport": "sharedmem"},
                         persistent=True, telemetry=telemetry)
    try:
        data = np.arange(n_items, dtype=np.int64)
        for _ in range(runs):
            random_permutation(data, machine=machine)
    finally:
        machine.close()
    report = telemetry.last.to_dict()
    encodes = sum(r["transport"]["encode_calls"] for r in report["ranks"])
    fallbacks = sum(r["transport"]["oversize_fallbacks"] for r in report["ranks"])
    rings = [r["ring"] for r in report["ranks"] if r.get("ring")]
    return {
        "runs": runs,
        "n": n_items,
        "p": n_procs,
        "encode_calls": encodes,
        "oversize_fallbacks": fallbacks,
        "fallback_rate": round(fallbacks / encodes, 6) if encodes else 0.0,
        "ring_capacity_bytes": max((r["capacity"] for r in rings), default=None),
        "ring_resizes": sum(r["resizes"] for r in rings),
        "ring_wraps": sum(r["wraps"] for r in rings),
        "parent_shared_encode_calls":
            report["parent_transport"]["shared_encode_calls"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Write the tracked backend/transport perf artifact."
    )
    parser.add_argument("--json", required=True,
                        help="output path, e.g. benchmarks/BENCH_backends.json")
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)
    records = collect_records(rounds=args.rounds)
    payload = {
        "suite": "bench_backends",
        "schema": 5,
        "rounds": args.rounds,
        "adaptive_ring": adaptive_ring_cells(),
        # Schema 5: observed ring geometry + fallback rate of a warm fleet
        # (repatriated telemetry), next to the configured geometry above.
        "fleet_telemetry": fleet_telemetry_cells(),
        "records": records,
    }
    # Schema 4: the artifact also carries the kernel-tier throughput cells
    # written by bench_kernels.py; carry them over instead of dropping them
    # every time the backend grid is re-measured.
    try:
        with open(args.json) as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        previous = {}
    for key in ("kernel_records", "kernel_speedup_matrix_tree",
                "kernel_speedup_row_cut"):
        if key in previous:
            payload[key] = previous[key]
    speedup = dispatch_speedup(records)
    if speedup is not None:
        payload["dispatch_speedup_persistent_vs_cold"] = round(speedup, 2)
    warm_speedup = _workload_speedup(records, "warm_driver")
    if warm_speedup is not None:
        payload["warm_driver_speedup_vs_cold"] = round(warm_speedup, 2)
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    by_key = {(r["workload"], r["backend"], r["transport"],
               r.get("persistent", False), r["n"], r["p"]): r for r in records}
    big = {t: by_key.get(("permutation", "process", t, False) + BIG_POINT)
           for t in ("pickle", "sharedmem")}
    if all(big.values()):
        print(f"1M/p=8 permutation: pickle {big['pickle']['median_seconds']:.3f}s, "
              f"sharedmem {big['sharedmem']['median_seconds']:.3f}s")
    if speedup is not None:
        print(f"dispatch overhead: persistent pool {speedup:.1f}x cheaper "
              "than cold spawn")
    if warm_speedup is not None:
        print(f"warm driver calls: default pool cache {warm_speedup:.1f}x "
              "cheaper than cold driver calls")
    print(f"wrote {len(records)} records to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
