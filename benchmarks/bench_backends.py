"""Backend comparison: inline vs thread vs process wall-time.

Times the two driver-level workloads -- communication-matrix sampling on a
PRO machine and the distributed permutation (Algorithm 1) -- on every
execution backend at several ``(n, p)`` points.  Run with
``--benchmark-json`` to get the same pytest-benchmark JSON shape as the
rest of the suite (one record per (workload, backend, n, p) with the
parameters echoed in ``extra_info``).

Reading the numbers: the thread backend wins at these in-process problem
sizes (rank start-up is microseconds and NumPy releases the GIL), while the
process backend pays process spawn plus buffer serialisation per run --
its advantage is *true* parallelism for compute-heavy pure-Python ranks,
not small-n latency.  The inline rows (p == 1 only) are the no-overhead
sequential reference.
"""

import numpy as np
import pytest

from repro.core.parallel_matrix import sample_matrix_parallel
from repro.core.permutation import random_permutation

#: (n_items, n_procs) grid; inline only participates where p == 1.
POINTS = [(20_000, 1), (20_000, 2), (20_000, 4), (100_000, 4)]
BACKENDS = ["inline", "thread", "process"]


def _skip_if_incompatible(backend, n_procs):
    if backend == "inline" and n_procs != 1:
        pytest.skip("the inline backend only runs single-rank machines")


@pytest.mark.benchmark(group="backends-matrix")
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n_items,n_procs", POINTS)
def test_benchmark_matrix_sampling_backends(benchmark, backend, n_items, n_procs):
    _skip_if_incompatible(backend, n_procs)
    row_sums = np.full(n_procs, n_items // n_procs, dtype=np.int64)
    benchmark.extra_info.update({"backend": backend, "n": n_items, "p": n_procs})

    def run():
        matrix, _ = sample_matrix_parallel(
            row_sums, algorithm="alg6" if n_procs > 1 else "root",
            backend=backend, seed=0,
        )
        return matrix

    matrix = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert matrix.sum() == row_sums.sum()


@pytest.mark.benchmark(group="backends-permutation")
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n_items,n_procs", POINTS)
def test_benchmark_permutation_backends(benchmark, backend, n_items, n_procs):
    _skip_if_incompatible(backend, n_procs)
    data = np.arange(n_items, dtype=np.int64)
    benchmark.extra_info.update({"backend": backend, "n": n_items, "p": n_procs})

    def run():
        return random_permutation(data, n_procs=n_procs, backend=backend, seed=0)

    out = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert out.shape == data.shape


def test_backends_agree_for_fixed_seed():
    """Smoke-level determinism check inside the benchmark suite."""
    row_sums = np.full(4, 500, dtype=np.int64)
    thread_matrix, _ = sample_matrix_parallel(row_sums, backend="thread", seed=9)
    process_matrix, _ = sample_matrix_parallel(row_sums, backend="process", seed=9)
    assert np.array_equal(thread_matrix, process_matrix)
