"""Experiment E5: per-item cost of the sequential random permutation.

Paper (Section 1): permuting a vector of long ints costs 60-100 clock cycles
per item on the machines of the time (300 MHz Sparc, 800 MHz Pentium III),
with 33%-80% of the wall clock attributable to the CPU-memory bottleneck.
The benchmark measures the per-item cost of the compiled (NumPy) and
interpreted (pure Python) Fisher-Yates on the present machine and converts
it to cycles per item where the CPU frequency is known.
"""

import numpy as np
import pytest

from repro.baselines.fisher_yates import per_item_cost, sequential_permutation
from repro.bench.harness import BenchRecord
from repro.bench.paper_claims import PAPER_CLAIMS

N_ITEMS_NUMPY = 1_000_000
N_ITEMS_PYTHON = 50_000


@pytest.mark.benchmark(group="E5-sequential-cost")
def test_benchmark_numpy_permutation(benchmark, reproduction_summary):
    data = np.arange(N_ITEMS_NUMPY, dtype=np.int64)
    rng = np.random.default_rng(0)
    benchmark.extra_info["n_items"] = N_ITEMS_NUMPY
    out = benchmark(lambda: sequential_permutation(data, rng, method="numpy"))
    assert len(out) == N_ITEMS_NUMPY

    details = per_item_cost(N_ITEMS_NUMPY, method="numpy", repeats=1, seed=0)
    low, high = PAPER_CLAIMS["E5"]["cycles_per_item_range"]
    measured = details["cycles_per_item"]
    reproduction_summary.add(
        BenchRecord(
            "E5 cycles per item (compiled Fisher-Yates)",
            f"{low:.0f}-{high:.0f}",
            f"{measured:.0f}" if measured is not None else f"{details['per_item_ns']:.1f} ns",
            note="paper measured 1998-2002 hardware",
        )
    )
    # Sanity: per-item cost must be well below a microsecond for compiled code.
    assert details["per_item_ns"] < 1_000


@pytest.mark.benchmark(group="E5-sequential-cost")
def test_benchmark_python_fisher_yates(benchmark, reproduction_summary):
    """The interpreted loop shows what the constant looks like without compiled code."""
    data = np.arange(N_ITEMS_PYTHON, dtype=np.int64)
    rng = np.random.default_rng(0)
    benchmark.extra_info["n_items"] = N_ITEMS_PYTHON
    out = benchmark(lambda: sequential_permutation(data, rng, method="python"))
    assert len(out) == N_ITEMS_PYTHON
    details = per_item_cost(N_ITEMS_PYTHON, method="python", repeats=1, seed=0)
    reproduction_summary.add(
        BenchRecord("E5 per-item cost (interpreted Fisher-Yates)", "n/a",
                    f"{details['per_item_ns']:.0f} ns",
                    note="shows the random-number + memory bound the paper discusses")
    )
