"""CI perf-regression smoke gate for the backend benchmark trajectory.

Re-runs the 1M-item / p=4 permutation cell of ``bench_backends.py`` for
every variant present in the tracked ``benchmarks/BENCH_backends.json``
(plus the dispatch-overhead cell, which guards the persistent pool's
raison d'etre), writes the fresh measurements as a JSON artifact for the
workflow to upload, and fails only when a fresh median exceeds the
tracked one by more than ``--factor`` (default 3x -- generous on purpose:
shared CI runners are noisy, and the gate is meant to catch "the backend
got an order of magnitude slower", not a 20% wobble).

Usage (what ``.github/workflows/ci.yml`` runs)::

    PYTHONPATH=src python benchmarks/check_bench_regression.py \
        --tracked benchmarks/BENCH_backends.json \
        --out bench-fresh.json

Exit code 0 = no regression, 1 = at least one cell regressed beyond the
tolerance, 2 = the tracked artifact is missing the expected cells.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_kernels  # noqa: E402
from bench_backends import (  # noqa: E402
    DISPATCH_POINT,
    WARM_DRIVER_POINT,
    median_seconds,
)

#: The gated cell: big enough that payload movement dominates noise,
#: p=4 so that it exercises real multi-rank traffic on standard runners.
GATE_N, GATE_P = 1_000_000, 4

#: Cells tracked below this are re-measured and reported but never fail
#: the gate: on a shared runner, scheduler noise alone routinely costs a
#: handful of milliseconds, which would dwarf a sub-millisecond tracked
#: median and trip the 3x factor with no real regression behind it.
MIN_GATED_SECONDS = 0.010

#: Supervision (a retry policy on the machine) may cost at most this much
#: over an unsupervised warm dispatch.  The tracked dispatch median
#: (~1.4ms) sits below the gate floor above, so this gate compares two
#: *fresh* fleets back-to-back on the same runner instead of comparing
#: against a tracked number -- runner-speed noise cancels out, and the
#: best of three trials filters one-off scheduler hiccups.
SUPERVISION_FACTOR = 1.10

#: Attaching a Telemetry recorder may cost at most this much over a plain
#: warm dispatch.  Collection is passive -- the worker snapshots a handful
#: of counters it already maintains, and the parent folds them into one
#: FleetReport per run -- so the ratio should sit at ~1.0.  Measured the
#: same way as the supervision gate: two fresh fleets back-to-back on the
#: same runner, best of three trials.
TELEMETRY_FACTOR = 1.05


def supervision_overhead_ratio(*, rounds=5, trials=3):
    """Best-of-``trials`` supervised/unsupervised warm dispatch ratio.

    Each trial spawns one unsupervised and one supervised (``retry=2``)
    persistent fleet at the dispatch point and medians ``rounds`` warm
    dispatches of the trivial program on each.  A healthy run through the
    resilience layer only adds the deadline bookkeeping around the
    dispatch, so the ratio should sit at ~1.0.
    """
    import statistics
    import time

    from bench_backends import _trivial_program
    from repro.pro.machine import PROMachine

    _n, p = DISPATCH_POINT

    def warm_dispatch_median(retry):
        machine = PROMachine(p, seed=0, backend="process",
                             backend_options={"transport": "sharedmem"},
                             persistent=True, retry=retry)
        try:
            machine.run(_trivial_program)  # spawn + warm outside the timing
            times = []
            for _ in range(rounds):
                start = time.perf_counter()
                machine.run(_trivial_program)
                times.append(time.perf_counter() - start)
        finally:
            machine.close()
        return float(statistics.median(times))

    ratios = []
    for _ in range(trials):
        plain = warm_dispatch_median(None)
        supervised = warm_dispatch_median(2)
        ratios.append(supervised / plain if plain > 0 else 1.0)
    return min(ratios)


def telemetry_overhead_ratio(*, rounds=5, trials=3):
    """Best-of-``trials`` observed/plain warm dispatch ratio.

    Each trial spawns one plain and one telemetry-carrying persistent
    fleet at the dispatch point and medians ``rounds`` warm dispatches of
    the trivial program on each.  The recorder only snapshots counters
    the transport already maintains, so the ratio should sit at ~1.0.
    """
    import statistics
    import time

    from bench_backends import _trivial_program
    from repro.pro.machine import PROMachine
    from repro.pro.telemetry import Telemetry

    _n, p = DISPATCH_POINT

    def warm_dispatch_median(telemetry):
        machine = PROMachine(p, seed=0, backend="process",
                             backend_options={"transport": "sharedmem"},
                             persistent=True, telemetry=telemetry)
        try:
            machine.run(_trivial_program)  # spawn + warm outside the timing
            times = []
            for _ in range(rounds):
                start = time.perf_counter()
                machine.run(_trivial_program)
                times.append(time.perf_counter() - start)
        finally:
            machine.close()
        return float(statistics.median(times))

    ratios = []
    for _ in range(trials):
        plain = warm_dispatch_median(None)
        observed = warm_dispatch_median(Telemetry())
        ratios.append(observed / plain if plain > 0 else 1.0)
    return min(ratios)


def gated_cells(tracked_records):
    """The tracked records this gate re-measures."""
    cells = []
    for record in tracked_records:
        workload = record.get("workload")
        point_ok = (
            (workload == "permutation"
             and record.get("n") == GATE_N and record.get("p") == GATE_P)
            or (workload == "dispatch"
                and (record.get("n"), record.get("p")) == DISPATCH_POINT)
            or (workload == "warm_driver"
                and (record.get("n"), record.get("p")) == WARM_DRIVER_POINT)
        )
        if point_ok:
            cells.append(record)
    return cells


def remeasure(record, *, rounds):
    return median_seconds(
        record["workload"], record["backend"], record.get("transport"),
        record["n"], record["p"],
        persistent=bool(record.get("persistent", False)), rounds=rounds,
    )


def gated_kernel_cells(tracked):
    """Kernel-tier cells (schema 4) whose tier resolves the same way here.

    A cell recorded with an active numba tier on a host where the request
    now degrades to NumPy (or vice versa) is not comparable -- the gate
    skips it rather than mistaking a tier change for a perf change.
    """
    from repro.core.kernels import reset_kernels, resolve_kernels

    cells = []
    for record in tracked.get("kernel_records", []):
        reset_kernels()
        if resolve_kernels(record["kernels"]).name == record.get("tier_active"):
            cells.append(record)
    reset_kernels()
    return cells


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tracked", default="benchmarks/BENCH_backends.json",
                        help="tracked trajectory artifact to compare against")
    parser.add_argument("--out", default="bench-fresh.json",
                        help="where to write the fresh measurements (CI artifact)")
    parser.add_argument("--factor", type=float, default=3.0,
                        help="fail when fresh > factor * tracked (default 3)")
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)

    with open(args.tracked) as fh:
        tracked = json.load(fh)
    cells = gated_cells(tracked.get("records", []))
    if not cells:
        print(f"ERROR: {args.tracked} holds no permutation records at "
              f"n={GATE_N}, p={GATE_P}; refresh it with bench_backends.py --json")
        return 2

    fresh_records = []
    regressions = []

    def judge(variant, record, seconds):
        fresh = dict(record, median_seconds=round(seconds, 6),
                     tracked_median_seconds=record["median_seconds"])
        fresh_records.append(fresh)
        tracked_median = float(record["median_seconds"])
        ratio = seconds / tracked_median if tracked_median > 0 else 1.0
        gated = tracked_median >= MIN_GATED_SECONDS
        regressed = gated and ratio > args.factor
        verdict = ("REGRESSED" if regressed
                   else "ok" if gated else "ok (below gate floor)")
        print(f"{variant:48s} tracked {tracked_median * 1e3:9.2f}ms  "
              f"fresh {seconds * 1e3:9.2f}ms  x{ratio:5.2f}  {verdict}")
        if regressed:
            regressions.append((variant, ratio))

    for record in cells:
        variant = "-".join(
            str(part) for part in (
                record["workload"], record["backend"], record.get("transport"),
                "persistent" if record.get("persistent") else "cold",
            ) if part
        )
        judge(variant, record, remeasure(record, rounds=args.rounds))

    for record in gated_kernel_cells(tracked):
        seconds = bench_kernels.median_seconds(
            record["workload"], record["kernels"], rounds=args.rounds
        )
        judge(f"kernels-{record['workload']}-{record['kernels']}",
              record, seconds)

    ratio = supervision_overhead_ratio()
    supervision_ok = ratio <= SUPERVISION_FACTOR
    fresh_records.append({
        "workload": "supervision_overhead",
        "ratio": round(ratio, 4),
        "factor": SUPERVISION_FACTOR,
    })
    print(f"{'supervision-overhead (warm dispatch)':48s} "
          f"supervised/plain x{ratio:5.2f}  "
          f"{'ok' if supervision_ok else 'REGRESSED'} "
          f"(gate {SUPERVISION_FACTOR:.2f})")
    if not supervision_ok:
        regressions.append(("supervision-overhead", ratio))

    ratio = telemetry_overhead_ratio()
    telemetry_ok = ratio <= TELEMETRY_FACTOR
    fresh_records.append({
        "workload": "telemetry_overhead",
        "ratio": round(ratio, 4),
        "factor": TELEMETRY_FACTOR,
    })
    print(f"{'telemetry-overhead (warm dispatch)':48s} "
          f"observed/plain x{ratio:5.2f}  "
          f"{'ok' if telemetry_ok else 'REGRESSED'} "
          f"(gate {TELEMETRY_FACTOR:.2f})")
    if not telemetry_ok:
        regressions.append(("telemetry-overhead", ratio))

    with open(args.out, "w") as fh:
        json.dump({
            "suite": "bench_backends_regression_gate",
            "factor": args.factor,
            "rounds": args.rounds,
            "records": fresh_records,
        }, fh, indent=2)
        fh.write("\n")
    print(f"wrote {len(fresh_records)} fresh measurements to {args.out}")

    if regressions:
        print("PERF REGRESSION (>{}x): {}".format(
            args.factor,
            ", ".join(f"{name} x{ratio:.2f}" for name, ratio in regressions),
        ))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
