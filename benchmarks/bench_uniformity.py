"""Experiment E7: uniformity of the end-to-end parallel permutation.

Theorem 1 / Propositions 1-2: Algorithm 1 samples permutations uniformly.
The benchmark draws thousands of small permutations through the full
parallel pipeline, runs the exhaustive chi-square test over all n! outcomes
and the exact goodness-of-fit test of the communication-matrix law, and
reports the p-values (which should be comfortably above any rejection
threshold).
"""

import pytest

from repro.bench.harness import BenchRecord
from repro.core.parallel_matrix import sample_matrix_parallel
from repro.core.permutation import random_permutation_indices
from repro.pro.machine import PROMachine
from repro.stats.matrix_tests import chi_square_matrix_law
from repro.stats.uniformity import chi_square_permutation_uniformity


@pytest.mark.benchmark(group="E7-uniformity")
def test_benchmark_permutation_uniformity(benchmark, reproduction_summary):
    machine = PROMachine(2, seed=20030608)

    def run_test():
        def sampler():
            return random_permutation_indices(4, machine=machine)
        return chi_square_permutation_uniformity(sampler, 4, 4000)

    result = benchmark.pedantic(run_test, rounds=1, iterations=1)
    reproduction_summary.add(
        BenchRecord("E7 exhaustive uniformity p-value (n=4, p=2)", "uniform", f"{result.p_value:.3f}")
    )
    assert result.p_value > 1e-4


@pytest.mark.benchmark(group="E7-uniformity")
@pytest.mark.parametrize("algorithm", ["alg5", "alg6"])
def test_benchmark_matrix_law(benchmark, algorithm, reproduction_summary):
    rows, cols = [3, 2], [2, 3]
    machine = PROMachine(2, seed=hash(algorithm) % 2**31)

    def run_test():
        def sampler():
            return sample_matrix_parallel(rows, cols, machine=machine,
                                          algorithm=algorithm)[0]
        return chi_square_matrix_law(sampler, rows, cols, 2500)

    result = benchmark.pedantic(run_test, rounds=1, iterations=1)
    reproduction_summary.add(
        BenchRecord(f"E7 matrix-law p-value ({algorithm})", "exact law of Problem 2", f"{result.p_value:.3f}")
    )
    assert result.p_value > 1e-4
