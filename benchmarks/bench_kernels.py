"""Throughput benches for the sampling kernel tiers (repro.core.kernels).

Times the two hot paths the compiled tier accelerates, once per kernel
request (``numpy`` and ``numba``):

``matrix_tree``
    The batched hypergeometric splitting tree over a 256 x 256
    communication matrix (``SamplerEngine.sample_matrix_batched``),
    reported as hypergeometric samples (matrix cells) per second.

``row_cut``
    The permutation row-cut of Algorithm 1's local phase: a Fisher-Yates
    shuffle of 1M items (``local_shuffle``), reported as permuted items
    per second.

Each cell records the *requested* tier and the tier that actually ran
(``tier_active``): on hosts without numba the ``numba`` request degrades
to the NumPy tier and the two cells coincide, so the tracked artifact
stays comparable across hosts instead of growing holes.  The results are
bit-identical across tiers by construction (see
``tests/unit/test_kernel_equivalence.py``); these cells track the only
thing that may differ -- throughput.

Direct execution merges the cells into the tracked perf artifact
(``kernel_records`` key, schema 4)::

    PYTHONPATH=src python benchmarks/bench_kernels.py --json benchmarks/BENCH_backends.json

``--check`` additionally enforces the acceptance speedups of the compiled
tier -- >= 3x on ``matrix_tree`` and >= 2x on ``row_cut`` -- whenever the
numba tier is actually active (and is a no-op otherwise, so the same CI
line is safe on numba-less runners).
"""

import argparse
import json
import statistics
import sys
import time

import numpy as np

from repro.core.engine import SamplerEngine
from repro.core.kernels import reset_kernels, resolve_kernels
from repro.core.permutation import local_shuffle

#: Requested kernel tiers; "numba" degrades to the NumPy tier when absent.
TIERS = ["numpy", "numba"]
#: The matrix-tree point: a 256 x 256 matrix with balanced marginals.
MATRIX_P, MATRIX_ROW_SUM = 256, 64
#: The row-cut point: one local shuffle of this many items.
ROWCUT_N = 1_000_000
#: Acceptance speedups (numba vs numpy median) enforced by --check.
REQUIRED_SPEEDUP = {"matrix_tree": 3.0, "row_cut": 2.0}


def _workload(name, tier):
    """A zero-argument timed body for one (workload, tier) cell."""
    if name == "matrix_tree":
        engine = SamplerEngine("auto", kernels=tier)
        marginals = np.full(MATRIX_P, MATRIX_ROW_SUM, dtype=np.int64)

        def body(seed):
            return engine.sample_matrix_batched(
                marginals, marginals, np.random.default_rng(seed)
            )

        return body, MATRIX_P * MATRIX_P
    if name == "row_cut":
        items = np.arange(ROWCUT_N, dtype=np.int64)

        def body(seed):
            return local_shuffle(items, np.random.default_rng(seed), kernels=tier)

        return body, ROWCUT_N
    raise ValueError(f"unknown workload {name!r}")


def median_seconds(workload, kernels, *, rounds=3):
    """Median wall seconds of one cell (tier resolved fresh, JIT pre-warmed)."""
    tier = resolve_kernels(kernels)
    body, _ = _workload(workload, tier)
    body(0)  # untimed warm call: JIT compiles never land in a timed round
    samples = []
    for round_index in range(max(rounds, 1)):
        start = time.perf_counter()
        body(round_index + 1)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def collect_records(*, rounds=3):
    """One record per (workload, requested tier), with throughput cells."""
    records = []
    for kernels in TIERS:
        reset_kernels()
        tier = resolve_kernels(kernels)
        for workload in ("matrix_tree", "row_cut"):
            _, units = _workload(workload, tier)
            seconds = median_seconds(workload, kernels, rounds=rounds)
            record = {
                "workload": workload,
                "kernels": kernels,
                "tier_active": tier.name,
                "units": units,
                "median_seconds": round(seconds, 6),
            }
            key = ("samples_per_second" if workload == "matrix_tree"
                   else "items_per_second")
            record[key] = round(units / seconds) if seconds > 0 else None
            records.append(record)
    reset_kernels()
    return records


def speedups(records):
    """numba-vs-numpy median ratio per workload (None when not comparable)."""
    out = {}
    by_cell = {(r["workload"], r["kernels"]): r for r in records}
    for workload in ("matrix_tree", "row_cut"):
        base = by_cell.get((workload, "numpy"))
        compiled = by_cell.get((workload, "numba"))
        if not base or not compiled or compiled["tier_active"] != "numba":
            out[workload] = None
        elif compiled["median_seconds"] > 0:
            out[workload] = base["median_seconds"] / compiled["median_seconds"]
    return out


def merge_into_artifact(path, records):
    """Attach the kernel cells to the tracked artifact (schema 4)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {"suite": "bench_backends", "records": []}
    payload["schema"] = 4
    payload["kernel_records"] = records
    ratios = speedups(records)
    for workload, ratio in ratios.items():
        key = f"kernel_speedup_{workload}"
        if ratio is None:
            payload.pop(key, None)
        else:
            payload[key] = round(ratio, 2)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Track (and optionally gate) kernel-tier throughput."
    )
    parser.add_argument("--json", default=None,
                        help="merge cells into this tracked artifact "
                             "(e.g. benchmarks/BENCH_backends.json)")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--check", action="store_true",
                        help="fail unless an active numba tier meets the "
                             "acceptance speedups (no-op when degraded)")
    args = parser.parse_args(argv)

    records = collect_records(rounds=args.rounds)
    for record in records:
        throughput = record.get("samples_per_second") or record.get("items_per_second")
        print(f"{record['workload']:12s} kernels={record['kernels']:6s} "
              f"(active: {record['tier_active']:6s}) "
              f"{record['median_seconds'] * 1e3:9.2f} ms   "
              f"{throughput:,.0f}/s")

    ratios = speedups(records)
    for workload, ratio in ratios.items():
        if ratio is not None:
            print(f"{workload}: numba tier {ratio:.2f}x the numpy tier")

    if args.json:
        merge_into_artifact(args.json, records)
        print(f"merged {len(records)} kernel cells into {args.json}")

    if args.check:
        active = any(r["tier_active"] == "numba" for r in records)
        if not active:
            print("check: numba tier not active on this host; speedup gate skipped")
            return 0
        failures = [
            f"{workload} x{ratios[workload]:.2f} < x{required:.1f}"
            for workload, required in REQUIRED_SPEEDUP.items()
            if ratios.get(workload) is not None and ratios[workload] < required
        ]
        if failures:
            print("KERNEL SPEEDUP GATE FAILED: " + ", ".join(failures))
            return 1
        print("check: compiled-tier speedups meet the acceptance thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
