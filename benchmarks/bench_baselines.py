"""Experiment E6: Algorithm 1 against the competing coarse-grained methods.

The paper's introduction argues that prior methods violate at least one of
uniformity / work-optimality / balance:

* sort-based (Goodrich): uniform and balanced but pays a log n factor of work;
* dart throwing: work-optimal but does not respect the target layout
  (and iterating it multiplies the work);
* rejection: uniform and balanced but the expected number of restarts
  explodes with p.

The benchmark times all of them on the same input and records the resource
counters that exhibit each violation.
"""

import numpy as np
import pytest

from repro.baselines.dart_throwing import dart_throwing_permutation
from repro.baselines.rejection import acceptance_probability
from repro.baselines.sort_based import sort_based_permutation
from repro.bench.harness import BenchRecord
from repro.core.permutation import random_permutation
from repro.pro.machine import PROMachine

N_ITEMS = 100_000
N_PROCS = 8


@pytest.mark.benchmark(group="E6-baselines")
def test_benchmark_algorithm1(benchmark):
    data = np.arange(N_ITEMS, dtype=np.int64)
    machine = PROMachine(N_PROCS, seed=0)
    out = benchmark(lambda: random_permutation(data, n_procs=N_PROCS, machine=machine))
    assert np.array_equal(np.sort(out), data)


@pytest.mark.benchmark(group="E6-baselines")
def test_benchmark_sort_based(benchmark):
    data = np.arange(N_ITEMS, dtype=np.int64)
    machine = PROMachine(N_PROCS, seed=1)
    out = benchmark(lambda: sort_based_permutation(data, machine=machine)[0])
    assert np.array_equal(np.sort(out), data)


@pytest.mark.benchmark(group="E6-baselines")
def test_benchmark_dart_throwing(benchmark):
    data = np.arange(N_ITEMS, dtype=np.int64)
    machine = PROMachine(N_PROCS, seed=2)
    out = benchmark(lambda: dart_throwing_permutation(data, machine=machine)[0])
    assert np.array_equal(np.sort(out), data)


@pytest.mark.benchmark(group="E6-baselines")
def test_work_and_balance_comparison(benchmark, reproduction_summary):
    """Resource counters that exhibit each method's violation."""
    def collect():
        data = np.arange(20_000, dtype=np.int64)
        stats = {}

        machine = PROMachine(N_PROCS, seed=3, count_random_variates=True)
        from repro.core.permutation import permute_distributed
        from repro.core.blocks import BlockDistribution
        blocks = [b.copy() for b in BlockDistribution.balanced(len(data), N_PROCS).split(data)]
        _, run1 = permute_distributed(blocks, machine=machine)
        stats["alg1_ops"] = run1.cost_report.total("compute_ops")

        _, run_sort = sort_based_permutation(data, machine=PROMachine(N_PROCS, seed=4))
        stats["sort_ops"] = run_sort.cost_report.total("compute_ops")

        _, run_dart = dart_throwing_permutation(data, machine=PROMachine(N_PROCS, seed=5))
        stats["dart_sizes"] = [len(b) for b in run_dart.results]

        stats["rejection_acceptance_p8"] = acceptance_probability([len(data) // N_PROCS] * N_PROCS)
        stats["rejection_acceptance_p32"] = acceptance_probability([len(data) // 32] * 32)
        return stats

    stats = benchmark.pedantic(collect, rounds=1, iterations=1)

    # Work-optimality: the sort-based method does asymptotically more work.
    log_factor = stats["sort_ops"] / max(stats["alg1_ops"], 1)
    reproduction_summary.add(
        BenchRecord("E6 sort-based total work vs Algorithm 1", "log n factor", f"{log_factor:.1f}x")
    )
    assert log_factor > 2.0

    # Balance: dart throwing does not hit the prescribed layout.
    sizes = stats["dart_sizes"]
    reproduction_summary.add(
        BenchRecord("E6 dart-throwing block sizes (target 2500 each)", "exact layout required",
                    f"min {min(sizes)}, max {max(sizes)}")
    )
    assert max(sizes) != min(sizes) or max(sizes) != 2_500

    # Work-optimality of rejection: acceptance probability collapses with p.
    reproduction_summary.add(
        BenchRecord("E6 rejection acceptance probability p=8 -> p=32",
                    "collapses with p",
                    f"{stats['rejection_acceptance_p8']:.1e} -> {stats['rejection_acceptance_p32']:.1e}")
    )
    assert stats["rejection_acceptance_p32"] < stats["rejection_acceptance_p8"] < 1e-2
