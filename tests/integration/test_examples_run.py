"""Integration tests: every example script runs to completion.

The examples double as end-to-end acceptance tests (each contains its own
assertions); running them through ``runpy`` ensures the documented entry
points keep working exactly as a user would invoke them.
"""

import runpy
import sys
from pathlib import Path

import pytest

# The examples exercise every backend, including process ranks.
pytestmark = pytest.mark.subprocess

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLE_SCRIPTS = [
    "quickstart.py",
    "load_balancing.py",
    "permutation_testing.py",
    "figure1_layout.py",
    "external_memory.py",
]


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 0  # every example prints a report


def test_scaling_study_example_runs_with_reduced_size(capsys, monkeypatch):
    """The scaling example is executed as a module function with a small size
    (running the full 400k-item measured sweep in CI would only add noise)."""
    path = EXAMPLES_DIR / "scaling_study.py"
    assert path.exists()
    namespace = runpy.run_path(str(path), run_name="not_main")
    # Reuse its building blocks at a tiny size.
    from repro.bench.scaling import measured_scaling_table
    rows = measured_scaling_table(5_000, proc_counts=(2,), repeats=1)
    assert rows[0]["n_procs"] == 0 and rows[1]["n_procs"] == 2
    assert "main" in namespace
