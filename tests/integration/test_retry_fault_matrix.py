"""Retry x fault matrix: the committed recovery guarantees, end to end.

Every committed chaos plan (:func:`repro.pro.resilience.committed_chaos_plans`)
must recover on every backend cell under ``RetryPolicy(max_attempts=2)`` with
output bit-identical to a fault-free run -- including the process backend's
supervised standing fleets, where recovery means respawning only the dead
ranks into the live fabric rather than rebuilding the world.  The suite also
pins the contracts around recovery: retries disabled stays poison-and-raise,
worker tracebacks are chained into the caller's exception, deadlines surface
as a typed bounded error, degradation falls back across backends without
changing results, and healing leaks no shared-memory resources.
"""

import os
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.core.permutation import random_permutation
from repro.pro.backends.faults import CrashRank, FaultInjectingBackend
from repro.pro.machine import PROMachine
from repro.pro.resilience import RetryPolicy, committed_chaos_plans
from repro.util.errors import (
    BackendError,
    DeadlineError,
    RemoteTraceback,
    TransientBackendError,
)
from repro.util.timeouts import scale_timeout

pytestmark = pytest.mark.subprocess  # most cells spawn worker fleets

SEED = 1729
P = 4  # the canonical rank count the committed chaos plans address

PLANS = committed_chaos_plans()

#: (transport, persistent) cells of the process backend.
PROCESS_CELLS = [
    ("sharedmem", False),
    ("pickle", False),
    ("sharedmem", True),
    ("pickle", True),
]


# Module-level programs: the process cells pickle them onto dispatch queues.
def _chaos_program(ctx):
    # Exercises every fault surface the committed plans target: an rng
    # draw (stream parity under replay), an all-to-all (0->1 messages for
    # DropMessage, early fabric ops for CrashRank) and a barrier
    # (BarrierTimeout).
    value = float(ctx.rng.random())
    gathered = ctx.comm.alltoall([value * (j + 1) for j in range(ctx.comm.size)])
    ctx.comm.barrier()
    return value, gathered


def _rank_pid_program(ctx):
    return ctx.rank, os.getpid()


def _independent_rank_program(ctx):
    # A fabric op per rank (so CrashRank has something to fire on) with no
    # cross-rank dependency: siblings of a crashed rank still succeed.
    ctx.comm.send(ctx.rank, ctx.rank, tag="self")
    return ctx.comm.recv(ctx.rank, tag="self"), os.getpid()


def _raise_original_sin(ctx):
    if ctx.rank == 1:
        raise ValueError("original sin on rank 1")
    ctx.comm.barrier()
    return ctx.rank


def _rank0_stalls(ctx):
    if ctx.rank == 0:
        time.sleep(scale_timeout(8))
    ctx.comm.barrier()
    return ctx.rank


def _faulty_machine(backend, faults, *, retry, timeout, **backend_options):
    """A p=4 machine whose backend acts out ``faults`` (name kept on wrapper)."""
    wrapper = FaultInjectingBackend(backend, faults, **backend_options)
    machine = PROMachine(P, seed=SEED, backend=wrapper, retry=retry, timeout=timeout)
    return machine, wrapper


def _clean_reference(backend, *, runs=1, **backend_options):
    """The fault-free results the recovered run must reproduce exactly."""
    machine = PROMachine(P, seed=SEED, backend=backend,
                         backend_options=backend_options or None,
                         timeout=scale_timeout(20))
    try:
        results = [machine.run(_chaos_program).results for _ in range(runs)]
    finally:
        machine.close()
    return results


class TestChaosPlanMatrix:
    @pytest.mark.parametrize("plan", sorted(PLANS))
    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_in_process_cells_recover_bit_identical(self, backend, plan):
        machine, wrapper = _faulty_machine(
            backend, PLANS[plan], retry=2, timeout=scale_timeout(3))
        try:
            recovered = machine.run(_chaos_program)
        finally:
            machine.close()
        assert wrapper.runs_started == 2  # first attempt faulted, replay clean
        assert recovered.cost_report.retries == 1
        assert recovered.results == _clean_reference(backend)[0]

    @pytest.mark.parametrize("transport,persistent", PROCESS_CELLS)
    def test_process_cells_recover_from_crash(self, transport, persistent):
        machine, wrapper = _faulty_machine(
            "process", PLANS["crash-rank1-mid"], retry=2,
            timeout=scale_timeout(8), transport=transport, persistent=persistent)
        try:
            recovered = machine.run(_chaos_program)
            again = machine.run(_chaos_program)  # the healed fleet keeps serving
        finally:
            machine.close()
        reference = _clean_reference("process", runs=2, transport=transport)
        assert wrapper.runs_started == 3  # fault, replay, second run
        assert recovered.cost_report.retries == 1
        assert recovered.cost_report.recovery_seconds > 0.0
        assert recovered.results == reference[0]
        assert again.results == reference[1]  # stream parity survives healing

    @pytest.mark.slow
    @pytest.mark.parametrize("plan", sorted(PLANS))
    def test_persistent_fleet_recovers_every_committed_plan(self, plan):
        machine, wrapper = _faulty_machine(
            "process", PLANS[plan], retry=2, timeout=scale_timeout(4),
            transport="sharedmem", persistent=True)
        try:
            recovered = machine.run(_chaos_program)
        finally:
            machine.close()
        assert wrapper.runs_started == 2
        assert recovered.cost_report.retries == 1
        assert recovered.results == _clean_reference("process")[0]


class TestSupervisionMechanics:
    def test_heal_respawns_only_the_dead_ranks(self):
        # The program has no cross-rank dependency, so when rank 1 crashes
        # its siblings still finish their epoch and keep serving their
        # queues; heal() must respawn rank 1 into the standing fabric and
        # leave the surviving ranks' processes untouched.
        machine, _wrapper = _faulty_machine(
            "process", [CrashRank(rank=1, at_op=0)], retry=None,
            timeout=scale_timeout(8), persistent=True)
        try:
            # _rank_pid_program performs no fabric ops, so the every-run
            # crash cannot fire on the pid snapshots.
            before = dict(machine.run(_rank_pid_program).results)
            pool = machine.backend.backend._pools[P]  # unwrap the fault layer
            with pytest.raises(TransientBackendError, match="rank 1"):
                machine.run(_independent_rank_program)
            assert pool.poisoned
            assert pool.heal()
            assert not pool.poisoned
            after = dict(machine.run(_rank_pid_program).results)
        finally:
            machine.close()
        assert after[1] != before[1]  # the crashed rank was respawned...
        for rank in (0, 2, 3):
            assert after[rank] == before[rank]  # ...its siblings were not

    def test_retries_disabled_stays_poison_and_raise(self):
        machine, _wrapper = _faulty_machine(
            "process", [CrashRank(rank=0, at_op=0)], retry=None,
            timeout=scale_timeout(8), persistent=True)
        try:
            with pytest.raises(TransientBackendError, match="rank 0"):
                machine.run(_chaos_program)
            # Without a policy nobody heals: the fleet stays poisoned and
            # every later run refuses up front, exactly as before.
            with pytest.raises(TransientBackendError, match="poisoned"):
                machine.run(_chaos_program)
        finally:
            machine.close()

    def test_worker_traceback_is_chained_into_the_caller(self):
        machine = PROMachine(P, seed=SEED, backend="process",
                             timeout=scale_timeout(15))
        try:
            with pytest.raises(BackendError, match="rank 1") as excinfo:
                machine.run(_raise_original_sin)
        finally:
            machine.close()
        causes, exc = [], excinfo.value
        while exc is not None:
            causes.append(exc)
            exc = exc.__cause__
        remote = [c for c in causes if isinstance(c, RemoteTraceback)]
        assert remote, f"no RemoteTraceback in the cause chain: {causes!r}"
        text = str(remote[0])
        assert "original sin on rank 1" in text
        assert "Traceback (most recent call last)" in text

    def test_deadline_is_typed_and_bounded(self):
        policy = RetryPolicy(max_attempts=1, deadline=1.0)
        machine = PROMachine(P, seed=SEED, backend="process", persistent=True,
                             retry=policy, timeout=scale_timeout(30))
        started = time.monotonic()
        try:
            with pytest.raises(DeadlineError, match="deadline"):
                machine.run(_rank0_stalls)
            # Bounded by the budget, not by the 30s fabric timeout or the
            # 8s stall: the parent-side collect loop consults the deadline.
            # (close() is timed separately: reaping the stalled rank may
            # legitimately spend the shutdown grace.)
            elapsed = time.monotonic() - started
        finally:
            machine.close()
        assert elapsed < scale_timeout(5)

    def test_fallback_degrades_process_to_thread_bit_identical(self):
        # The crash fires on every run, so the process backend can never
        # succeed; the run must land on the thread backend with the same
        # per-rank streams and record the degradation.
        policy = RetryPolicy(max_attempts=1, fallback=("thread",))
        machine, _wrapper = _faulty_machine(
            "process", [CrashRank(rank=2, at_op=0)], retry=policy,
            timeout=scale_timeout(8), persistent=True)
        try:
            degraded = machine.run(_chaos_program)
        finally:
            machine.close()
        assert degraded.cost_report.degraded_to == "thread"
        assert degraded.cost_report.retries == 1
        assert degraded.results == _clean_reference("thread")[0]

    def test_driver_retry_matches_fault_free_driver(self):
        data = np.arange(20_000)
        recovered = random_permutation(
            data, n_procs=P, backend="process", seed=31,
            retry=RetryPolicy(max_attempts=2))
        clean = random_permutation(data, n_procs=P, backend="process", seed=31)
        assert np.array_equal(recovered, clean)


class TestHealLeaksNothing:
    def test_respawn_is_leak_free_under_warning_errors(self):
        """Crash -> heal -> replay -> close must trip neither ``-W error``
        nor the multiprocessing resource tracker (leaked segment warnings
        appear on stderr at interpreter exit, so check a subprocess)."""
        script = textwrap.dedent("""
            from repro.pro.backends.faults import CrashRank, FaultInjectingBackend
            from repro.pro.backends.pool import clear_default_pools
            from repro.pro.machine import PROMachine
            from repro.util.timeouts import scale_timeout

            def program(ctx):
                value = float(ctx.rng.random())
                gathered = ctx.comm.alltoall([value] * ctx.comm.size)
                ctx.comm.barrier()
                return value, gathered

            faulty = FaultInjectingBackend(
                "process", [CrashRank(rank=1, at_op=1, at_run=0)],
                persistent=True)
            machine = PROMachine(4, seed=7, backend=faulty, retry=2,
                                 timeout=scale_timeout(8))
            recovered = machine.run(program).results
            again = machine.run(program).results

            clean = PROMachine(4, seed=7, backend="process",
                               timeout=scale_timeout(8))
            assert recovered == clean.run(program).results
            assert again == clean.run(program).results
            clean.close()
            machine.close()
            clear_default_pools()
        """)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-W", "error", "-c", script],
            capture_output=True, text=True, env=env,
            timeout=scale_timeout(180),
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr
