"""Integration tests: the full Algorithm-1 pipeline across subsystems.

These tests exercise machine + communicator + matrix sampling + permutation
together, on larger inputs and every matrix algorithm, and verify the
resource claims of Theorem 1 (per-processor memory, work, communication and
random variates all O(n/p + p)).
"""

import numpy as np
import pytest

from repro.core.blocks import BlockDistribution
from repro.core.permutation import permute_distributed, random_permutation
from repro.pro.machine import PROMachine


class TestLargeRuns:
    @pytest.mark.parametrize("matrix_algorithm", ["root", "alg5", "alg6"])
    def test_fifty_thousand_items(self, matrix_algorithm):
        n, p = 50_000, 8
        data = np.arange(n, dtype=np.int64)
        out = random_permutation(data, n_procs=p, seed=17, matrix_algorithm=matrix_algorithm)
        assert out.shape == (n,)
        assert np.array_equal(np.sort(out), data)
        # A permutation of 50k items that leaves more than 1% of items in
        # place is essentially impossible (expected fixed points = 1).
        assert int(np.sum(out == data)) < n // 100

    def test_many_processors_small_blocks(self):
        out = random_permutation(np.arange(128), n_procs=32, seed=3)
        assert sorted(out.tolist()) == list(range(128))

    def test_repeated_runs_on_one_machine_differ(self):
        machine = PROMachine(4, seed=5)
        data = np.arange(1000)
        first = random_permutation(data, machine=machine)
        second = random_permutation(data, machine=machine)
        assert not np.array_equal(first, second)

    def test_identical_seeds_reproduce_exactly(self):
        data = np.arange(2000)
        a = random_permutation(data, n_procs=4, seed=99)
        b = random_permutation(data, n_procs=4, seed=99)
        assert np.array_equal(a, b)


class TestTheorem1ResourceClaims:
    """Theorem 1: O(m) per processor for memory, time, random numbers, bandwidth."""

    def _run(self, n, p, seed=0):
        data = np.arange(n, dtype=np.int64)
        dist = BlockDistribution.balanced(n, p)
        blocks = [b.copy() for b in dist.split(data)]
        machine = PROMachine(p, seed=seed, count_random_variates=True)
        out_blocks, run = permute_distributed(blocks, machine=machine)
        return run

    def test_communication_per_processor_is_linear_in_block_size(self):
        p = 4
        run_small = self._run(4_000, p)
        run_large = self._run(16_000, p)
        small = run_small.cost_report.max_over_ranks("words_sent")
        large = run_large.cost_report.max_over_ranks("words_sent")
        # Quadrupling n should roughly quadruple the per-processor traffic.
        assert 3.0 < large / small < 5.0

    def test_communication_per_processor_shrinks_with_p(self):
        n = 16_000
        words = {}
        for p in (2, 8):
            words[p] = self._run(n, p).cost_report.max_over_ranks("words_sent")
        assert words[8] < words[2]

    def test_random_variates_per_processor_linear_in_block_size(self):
        p = 4
        small = self._run(4_000, p).cost_report.max_over_ranks("random_variates")
        large = self._run(16_000, p).cost_report.max_over_ranks("random_variates")
        assert 3.0 < large / small < 5.0

    def test_memory_per_processor_is_order_block_size(self):
        n, p = 16_000, 8
        run = self._run(n, p)
        peak = run.cost_report.max_over_ranks("memory_words_peak")
        assert peak <= 4 * (n // p) + 4 * p

    def test_balance_across_processors(self):
        run = self._run(20_000, 5)
        report = run.cost_report
        assert report.imbalance("compute_ops") < 1.3
        assert report.imbalance("words_sent") < 1.5
        assert report.imbalance("random_variates") < 1.3

    def test_total_work_is_linear_in_n(self):
        p = 4
        ops_small = self._run(4_000, p).cost_report.total("compute_ops")
        ops_large = self._run(16_000, p).cost_report.total("compute_ops")
        assert 3.0 < ops_large / ops_small < 5.0


class TestRedistributionScenarios:
    def test_gather_layout(self):
        """All data funnelled to the first half of the processors."""
        blocks = [np.arange(i * 10, (i + 1) * 10) for i in range(6)]
        target = [20, 20, 20, 0, 0, 0]
        out_blocks, _ = permute_distributed(blocks, target_sizes=target, seed=8)
        assert [len(b) for b in out_blocks] == target
        assert sorted(np.concatenate(out_blocks[:3]).tolist()) == list(range(60))

    def test_rebalance_skewed_input(self):
        from repro.workloads.generators import load_balancing_scenario
        blocks, target = load_balancing_scenario(600, 6, skew=5.0, seed=4)
        out_blocks, _ = permute_distributed(blocks, target_sizes=target, seed=9)
        sizes = [len(b) for b in out_blocks]
        assert max(sizes) - min(sizes) <= 1
        total_in = np.sort(np.concatenate(blocks))
        total_out = np.sort(np.concatenate(out_blocks))
        assert np.allclose(total_in, total_out)

    def test_expand_to_more_loaded_targets(self):
        blocks = [np.arange(30), np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)]
        out_blocks, _ = permute_distributed(blocks, target_sizes=[10, 10, 10], seed=10)
        assert [len(b) for b in out_blocks] == [10, 10, 10]
