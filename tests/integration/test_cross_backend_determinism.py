"""Cross-backend determinism: same seed => bit-identical results everywhere.

The per-rank random streams are derived in the parent machine and shipped to
wherever the rank executes, so the inline, thread, process and sim backends
must produce exactly the same matrices and permutations for a fixed seed.
These tests pin that contract (it is what makes each backend a drop-in
replacement rather than a different sampler) across every payload transport
(``pickle`` / ``sharedmem``), both persistence modes of the process backend
(one-shot spawn vs the standing worker pool), and the sim backend's
schedule seeds (interleavings must never change results; the exhaustive
schedule sweep lives in ``tests/simulation/``).

The CI determinism matrix runs this module once per OS runner and
persistence mode; set ``REPRO_PERSISTENT=0`` or ``1`` to narrow the
process-backend cells to one mode (unset runs both).
"""

import os

import numpy as np
import pytest

from repro.core.api import sample_communication_matrix
from repro.core.parallel_matrix import sample_matrix_parallel
from repro.core.permutation import random_permutation
from repro.pro.machine import PROMachine
from repro.util.errors import ValidationError

ALGORITHMS = ["alg5", "alg6", "root"]
MULTI_RANK_BACKENDS = ["thread", "process", "sim"]
ALL_BACKENDS = ["inline", "thread", "process", "sim"]


def _persistent_modes() -> list:
    forced = os.environ.get("REPRO_PERSISTENT")
    if forced is None or forced == "":
        return [False, True]
    return [forced not in ("0", "false", "no")]


#: Process-backend persistence modes exercised by this run (see module doc).
PERSISTENT_MODES = _persistent_modes()


class TestMatrixDeterminism:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_backends_agree_at_p1(self, algorithm):
        matrices = [
            sample_matrix_parallel([12], [5, 7], algorithm=algorithm, backend=backend, seed=33)[0]
            for backend in ALL_BACKENDS
        ]
        for matrix in matrices[1:]:
            assert np.array_equal(matrices[0], matrix)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("n_procs", [2, 4, 5])
    def test_multirank_backends_identical(self, algorithm, n_procs):
        row_sums = np.arange(1, n_procs + 1) * 3
        matrices = {}
        for backend in MULTI_RANK_BACKENDS:
            matrices[backend], _ = sample_matrix_parallel(
                row_sums, algorithm=algorithm, backend=backend, seed=101
            )
        for backend in MULTI_RANK_BACKENDS[1:]:
            assert np.array_equal(matrices["thread"], matrices[backend]), backend
        assert np.array_equal(matrices["thread"].sum(axis=1), row_sums)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("schedule_seed", [0, 1, 17])
    def test_sim_schedule_seeds_never_change_results(self, algorithm, schedule_seed):
        row_sums = np.arange(1, 5) * 4
        reference, _ = sample_matrix_parallel(row_sums, algorithm=algorithm,
                                              backend="thread", seed=246)
        matrix, _ = sample_matrix_parallel(
            row_sums, algorithm=algorithm, backend="sim",
            schedule_seed=schedule_seed, seed=246,
        )
        assert np.array_equal(reference, matrix)

    @pytest.mark.parametrize("tile_strategy", ["sequential", "batched"])
    def test_alg6_tile_strategies_backend_invariant(self, tile_strategy):
        matrices = [
            sample_matrix_parallel(
                [6, 6, 6, 6], algorithm="alg6", backend=backend, seed=7,
                tile_strategy=tile_strategy,
            )[0]
            for backend in MULTI_RANK_BACKENDS
        ]
        for matrix in matrices[1:]:
            assert np.array_equal(matrices[0], matrix)

    def test_api_level_acceptance(self):
        """sample_communication_matrix(..., backend=...) end-to-end parity."""
        reference = None
        for backend in MULTI_RANK_BACKENDS:
            matrix = sample_communication_matrix(
                [8, 8, 8, 8], parallel=True, backend=backend, seed=2003
            )
            if reference is None:
                reference = matrix
            else:
                assert np.array_equal(reference, matrix)
        inline = sample_communication_matrix([24], [8, 8, 8], parallel=True,
                                             backend="inline", seed=2003)
        assert inline.sum() == 24

    def test_backend_and_machine_mutually_exclusive(self):
        machine = PROMachine(2, seed=0)
        with pytest.raises(ValidationError):
            sample_matrix_parallel([4, 4], machine=machine, backend="process")

    def test_tile_strategy_rejected_for_alg5(self):
        with pytest.raises(ValidationError, match="alg5"):
            sample_matrix_parallel([4, 4], algorithm="alg5", seed=0,
                                   tile_strategy="batched")

    def test_rng_rejected_on_parallel_path(self):
        with pytest.raises(ValidationError, match="per-rank"):
            sample_communication_matrix(
                [4, 4], parallel=True, rng=np.random.default_rng(0)
            )

    def test_backend_rejected_on_sequential_path(self):
        with pytest.raises(ValidationError, match="parallel"):
            sample_communication_matrix([4, 4], backend="process")


class TestTransportDeterminism:
    """pickle vs sharedmem payload transport: bit-identical for a fixed seed.

    The transports only move bytes; they never touch the per-rank random
    streams, so every (backend, transport) combination must agree exactly.
    """

    TRANSPORTS = ["pickle", "sharedmem"]

    def test_matrix_identical_across_transports(self):
        row_sums = np.arange(1, 5) * 7
        reference, _ = sample_matrix_parallel(row_sums, backend="thread", seed=404)
        for transport in self.TRANSPORTS:
            matrix, _ = sample_matrix_parallel(
                row_sums, backend="process", transport=transport, seed=404
            )
            assert np.array_equal(reference, matrix), transport

    @pytest.mark.parametrize("matrix_algorithm", ALGORITHMS)
    def test_permutation_identical_across_transports(self, matrix_algorithm):
        data = np.arange(4000, dtype=np.int64)
        outputs = [
            random_permutation(data, n_procs=4, backend="thread",
                               matrix_algorithm=matrix_algorithm, seed=77)
        ]
        outputs += [
            random_permutation(data, n_procs=4, backend="process",
                               transport=transport,
                               matrix_algorithm=matrix_algorithm, seed=77)
            for transport in self.TRANSPORTS
        ]
        for out in outputs[1:]:
            assert np.array_equal(outputs[0], out)
        assert sorted(outputs[0].tolist()) == list(range(4000))

    def test_transport_and_machine_mutually_exclusive(self):
        machine = PROMachine(2, seed=0)
        with pytest.raises(ValidationError):
            sample_matrix_parallel([4, 4], machine=machine, transport="sharedmem")

    def test_transport_rejected_for_thread_backend(self):
        with pytest.raises(ValidationError, match="does not accept"):
            sample_matrix_parallel([4, 4], backend="thread", transport="sharedmem")

    def test_api_level_transport_parity(self):
        matrices = [
            sample_communication_matrix([9, 9, 9], parallel=True, backend="process",
                                        transport=transport, seed=55)
            for transport in self.TRANSPORTS
        ]
        assert np.array_equal(matrices[0], matrices[1])

    def test_transport_rejected_on_sequential_path(self):
        with pytest.raises(ValidationError, match="parallel"):
            sample_communication_matrix([4, 4], transport="sharedmem")


class TestPersistentDeterminism:
    """Standing worker pool vs one-shot spawn: bit-identical for a fixed seed.

    Persistence only changes where the ranks live and how runs reach them
    (dispatch queue vs fork-per-run); the per-rank streams are still built
    in the parent for every run, so every {inline, thread, process} x
    {pickle, sharedmem} x {persistent, cold} combination must agree.
    """

    TRANSPORTS = ["pickle", "sharedmem"]

    @pytest.mark.parametrize("persistent", PERSISTENT_MODES,
                             ids=lambda v: "persistent" if v else "cold")
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_matrix_identical_across_persistence(self, transport, persistent):
        row_sums = np.arange(1, 5) * 6
        reference, _ = sample_matrix_parallel(row_sums, backend="thread", seed=321)
        matrix, _ = sample_matrix_parallel(
            row_sums, backend="process", transport=transport,
            persistent=persistent, seed=321,
        )
        assert np.array_equal(reference, matrix), (transport, persistent)

    @pytest.mark.parametrize("persistent", PERSISTENT_MODES)
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("matrix_algorithm", ALGORITHMS)
    def test_permutation_identical_across_persistence(self, matrix_algorithm,
                                                      transport, persistent):
        data = np.arange(3000, dtype=np.int64)
        reference = random_permutation(data, n_procs=4, backend="thread",
                                       matrix_algorithm=matrix_algorithm, seed=88)
        out = random_permutation(data, n_procs=4, backend="process",
                                 transport=transport, persistent=persistent,
                                 matrix_algorithm=matrix_algorithm, seed=88)
        assert np.array_equal(reference, out), (transport, persistent)
        assert sorted(out.tolist()) == list(range(3000))

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_run_sequences_agree_between_modes(self, transport):
        """k runs on one standing pool == k one-shot runs, same seed."""
        if True not in PERSISTENT_MODES:
            pytest.skip("persistent cells disabled by REPRO_PERSISTENT")
        options = {"transport": transport}
        persistent = PROMachine(3, seed=17, backend="process",
                                backend_options=options, persistent=True)
        cold = PROMachine(3, seed=17, backend="process", backend_options=options)
        try:
            for iteration in range(3):
                a = random_permutation(np.arange(900), machine=persistent)
                b = random_permutation(np.arange(900), machine=cold)
                assert np.array_equal(a, b), iteration
        finally:
            persistent.close()

    def test_persistent_and_machine_mutually_exclusive(self):
        machine = PROMachine(2, seed=0)
        with pytest.raises(ValidationError):
            sample_matrix_parallel([4, 4], machine=machine, persistent=True)

    def test_persistent_rejected_for_thread_backend(self):
        with pytest.raises(ValidationError, match="does not accept"):
            sample_matrix_parallel([4, 4], backend="thread", persistent=True)

    def test_persistent_rejected_on_sequential_path(self):
        with pytest.raises(ValidationError, match="parallel"):
            sample_communication_matrix([4, 4], persistent=True)

    def test_api_level_persistent_parity(self):
        if True not in PERSISTENT_MODES:
            pytest.skip("persistent cells disabled by REPRO_PERSISTENT")
        reference = sample_communication_matrix([7, 7, 7], parallel=True,
                                                backend="thread", seed=61)
        matrix = sample_communication_matrix([7, 7, 7], parallel=True,
                                             backend="process",
                                             persistent=True, seed=61)
        assert np.array_equal(reference, matrix)


class TestPermutationDeterminism:
    def test_multirank_backends_permute_identically(self):
        data = np.arange(60, dtype=np.int64)
        outputs = [
            random_permutation(data, n_procs=4, backend=backend, seed=11)
            for backend in MULTI_RANK_BACKENDS
        ]
        for out in outputs[1:]:
            assert np.array_equal(outputs[0], out)
        assert sorted(outputs[0].tolist()) == list(range(60))

    @pytest.mark.parametrize("matrix_algorithm", ALGORITHMS)
    def test_matrix_algorithm_choice_backend_invariant(self, matrix_algorithm):
        data = np.arange(30, dtype=np.int64)
        a = random_permutation(data, n_procs=3, backend="thread",
                               matrix_algorithm=matrix_algorithm, seed=5)
        for backend in MULTI_RANK_BACKENDS[1:]:
            b = random_permutation(data, n_procs=3, backend=backend,
                                   matrix_algorithm=matrix_algorithm, seed=5)
            assert np.array_equal(a, b), backend

    def test_schedule_seed_and_machine_mutually_exclusive(self):
        machine = PROMachine(2, seed=0, backend="sim")
        with pytest.raises(ValidationError):
            sample_matrix_parallel([4, 4], machine=machine, schedule_seed=3)

    def test_schedule_seed_rejected_for_thread_backend(self):
        with pytest.raises(ValidationError, match="does not accept"):
            sample_matrix_parallel([4, 4], backend="thread", schedule_seed=3)

    def test_schedule_seed_rejected_on_sequential_path(self):
        from repro.core.api import sample_communication_matrix

        with pytest.raises(ValidationError, match="parallel"):
            sample_communication_matrix([4, 4], schedule_seed=3)


class TestKernelTierDeterminism:
    """REPRO_KERNELS axis: kernel tiers never change what a seed produces.

    The compiled tier consumes raw words from the same per-rank bit
    generators the NumPy code would have used (see
    ``repro.core.kernels.wordstream``), so every backend x tier cell of the
    grid must agree bit for bit -- whether the tier is requested per call
    (``kernels=``) or process-wide (the ``REPRO_KERNELS`` environment
    variable).  The CI numba cell reruns this module with
    ``REPRO_KERNELS=numba`` to pin the compiled tier against these same
    seeds; without numba ``"auto"``/``"numba"`` degrade to the NumPy tier,
    which keeps the cells meaningful (equal by construction) rather than
    skipped.
    """

    KERNEL_TIERS = ["numpy", "auto", "numba"]

    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        from repro.core.kernels import reset_kernels

        reset_kernels()
        yield
        reset_kernels()

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    @pytest.mark.parametrize("backend", MULTI_RANK_BACKENDS)
    def test_matrix_identical_across_tiers_and_backends(self, backend, kernels):
        reference, _ = sample_matrix_parallel([5, 6, 7], backend="thread",
                                              seed=808, kernels="numpy")
        matrix, _ = sample_matrix_parallel([5, 6, 7], backend=backend,
                                           seed=808, kernels=kernels)
        assert np.array_equal(reference, matrix), (backend, kernels)

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    def test_inline_backend_agrees_at_p1(self, kernels):
        reference, _ = sample_matrix_parallel([12], [5, 7], backend="inline",
                                              seed=808, kernels="numpy")
        matrix, _ = sample_matrix_parallel([12], [5, 7], backend="inline",
                                           seed=808, kernels=kernels)
        assert np.array_equal(reference, matrix), kernels

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    @pytest.mark.parametrize("matrix_algorithm", ALGORITHMS)
    def test_permutation_identical_across_tiers(self, matrix_algorithm, kernels):
        data = np.arange(2000, dtype=np.int64)
        reference = random_permutation(data, n_procs=4, backend="thread",
                                       matrix_algorithm=matrix_algorithm,
                                       seed=909, kernels="numpy")
        out = random_permutation(data, n_procs=4, backend="thread",
                                 matrix_algorithm=matrix_algorithm,
                                 seed=909, kernels=kernels)
        assert np.array_equal(reference, out), kernels
        assert sorted(out.tolist()) == list(range(2000))

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    def test_environment_variable_matches_explicit_request(self, kernels,
                                                           monkeypatch):
        explicit = random_permutation(np.arange(600), n_procs=3, seed=515,
                                      kernels=kernels)
        monkeypatch.setenv("REPRO_KERNELS", kernels)
        from repro.core.kernels import reset_kernels

        reset_kernels()
        ambient = random_permutation(np.arange(600), n_procs=3, seed=515)
        assert np.array_equal(explicit, ambient), kernels

    def test_tier_repatriated_through_process_backend(self):
        _, run = sample_matrix_parallel(
            [6, 6, 6], seed=42, backend="process", persistent=False,
            kernels="numpy",
        )
        tiers = run.cost_report.kernel_tiers()
        assert [tier for tier, _ in tiers] == ["numpy"] * 3

    def test_kernels_and_machine_mutually_exclusive(self):
        machine = PROMachine(2, seed=0)
        try:
            with pytest.raises(ValidationError, match="kernels"):
                sample_matrix_parallel([4, 4], machine=machine, kernels="numpy")
        finally:
            machine.close()

    def test_api_level_tier_parity(self):
        matrices = [
            sample_communication_matrix([8, 8, 8], parallel=True,
                                        backend="thread", seed=626,
                                        kernels=kernels)
            for kernels in self.KERNEL_TIERS
        ]
        for matrix in matrices[1:]:
            assert np.array_equal(matrices[0], matrix)
        sequential = [
            sample_communication_matrix([8, 8, 8], algorithm="batched",
                                        seed=626, kernels=kernels)
            for kernels in self.KERNEL_TIERS
        ]
        for matrix in sequential[1:]:
            assert np.array_equal(sequential[0], matrix)


class TestWarmDriverDeterminism:
    """Warm-by-default drivers vs the forced-cold path: bit-identical.

    Driver calls with ``backend="process"`` reuse the process-wide default
    pool cache (``persistent=None`` means warm); ``persistent=False``
    forces the historic cold spawn.  Warmth changes where the ranks live,
    never what they draw, so a k-call sequence of warm driver calls must
    equal the same k cold calls seed by seed -- across both transports.
    """

    TRANSPORTS = ["pickle", "sharedmem"]

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_k_driver_calls_warm_equals_cold(self, transport):
        if True not in PERSISTENT_MODES:
            pytest.skip("persistent cells disabled by REPRO_PERSISTENT")
        from repro.pro.backends.pool import clear_default_pools, default_pools

        clear_default_pools()
        try:
            for k, seed in enumerate((301, 302, 303)):
                warm = random_permutation(np.arange(2500), n_procs=4,
                                          backend="process",
                                          transport=transport, seed=seed)
                cold = random_permutation(np.arange(2500), n_procs=4,
                                          backend="process",
                                          transport=transport, seed=seed,
                                          persistent=False)
                assert np.array_equal(warm, cold), (transport, k)
            assert len(default_pools()) == 1  # all warm calls shared one fleet
        finally:
            clear_default_pools()

    def test_warm_matrix_matches_thread_reference(self):
        if True not in PERSISTENT_MODES:
            pytest.skip("persistent cells disabled by REPRO_PERSISTENT")
        reference, _ = sample_matrix_parallel([5, 6, 7], backend="thread",
                                              seed=99)
        warm, _ = sample_matrix_parallel([5, 6, 7], backend="process", seed=99)
        assert np.array_equal(reference, warm)


class TestExploredScheduleReplay:
    """Explored-schedule replay axis: traces the explorer records replay
    bit-identically under ``SimBackend(schedule=...)``, with telemetry on
    and off.

    The explorer (``repro.pro.explore``) commits shrunk decision traces
    as reproducers; those files are only trustworthy if (a) replaying a
    recorded trace reproduces the recorded run exactly and (b) passive
    telemetry collection cannot perturb the schedule or the results.
    """

    SEED = 8128

    def _explored_traces(self):
        """Record a spread of distinct interleavings via PCT policies."""
        from repro.pro.explore import PCTPolicy

        traces = []
        for pct_seed in (0, 1, 2):
            machine = PROMachine(
                4, seed=self.SEED, backend="sim",
                backend_options={"policy": PCTPolicy(pct_seed)},
            )
            matrix, _ = sample_matrix_parallel(
                [5, 6, 7, 8], algorithm="alg5", machine=machine)
            traces.append((list(machine.backend.last_schedule), matrix))
        return traces

    def test_recorded_traces_replay_bit_identically(self):
        for trace, matrix in self._explored_traces():
            replay = PROMachine(4, seed=self.SEED, backend="sim",
                                backend_options={"schedule": trace})
            replayed, _ = sample_matrix_parallel(
                [5, 6, 7, 8], algorithm="alg5", machine=replay)
            assert np.array_equal(replayed, matrix)
            assert replay.backend.last_schedule == trace

    def test_replay_is_telemetry_invariant(self):
        from repro.pro.telemetry import Telemetry

        for trace, matrix in self._explored_traces():
            telemetry = Telemetry()
            watched = PROMachine(4, seed=self.SEED, backend="sim",
                                 backend_options={"schedule": trace},
                                 telemetry=telemetry)
            replayed, _ = sample_matrix_parallel(
                [5, 6, 7, 8], algorithm="alg5", machine=watched)
            assert np.array_equal(replayed, matrix)
            assert watched.backend.last_schedule == trace
            assert telemetry.last is not None  # collection actually ran

    def test_explorer_cell_replay_is_deterministic_end_to_end(self):
        from repro.pro.explore import replay_cell

        collect = {}
        first = replay_cell("alg6", 4, machine_seed=self.SEED, _collect=collect)
        again = replay_cell("alg6", 4, machine_seed=self.SEED,
                            schedule=collect["schedule"])
        assert first[0] == "ok"
        assert again == first
