"""Integration tests: the parallel matrix samplers follow the exact law of Problem 2.

Algorithm 5 and Algorithm 6 must induce exactly the same distribution over
communication matrices as the sequential Algorithm 3 (and as the definition:
the law induced by a uniform permutation).  These tests run the samplers on
real PRO machines and compare against the enumerated exact law and against
the hypergeometric marginals of Proposition 3.
"""

import numpy as np
import pytest

from repro.core.parallel_matrix import sample_matrix_parallel
from repro.pro.machine import PROMachine

from repro.stats.matrix_tests import chi_square_matrix_law, entry_marginal_test, merged_matrix_test

# Enumerating exact laws over thousands of machine runs is multi-second
# work; the fast CI set (-m "not slow") skips it.
pytestmark = pytest.mark.slow


class TestExactLawSmallCases:
    @pytest.mark.parametrize("algorithm", ["alg5", "alg6", "root"])
    def test_two_processors_uneven(self, algorithm):
        rows, cols = [3, 2], [2, 3]
        machine = PROMachine(2, seed=hash(algorithm) % 2**31)

        def sampler():
            matrix, _ = sample_matrix_parallel(rows, cols, machine=machine, algorithm=algorithm)
            return matrix

        result = chi_square_matrix_law(sampler, rows, cols, 4000)
        assert result.p_value > 1e-4, (algorithm, result)

    @pytest.mark.parametrize("algorithm", ["alg5", "alg6"])
    def test_three_processors(self, algorithm):
        rows, cols = [2, 1, 2], [1, 2, 2]
        machine = PROMachine(3, seed=31 + hash(algorithm) % 1000)

        def sampler():
            matrix, _ = sample_matrix_parallel(rows, cols, machine=machine, algorithm=algorithm)
            return matrix

        result = chi_square_matrix_law(sampler, rows, cols, 3000)
        assert result.p_value > 1e-4, (algorithm, result)


class TestMarginalsLargerCases:
    @pytest.mark.parametrize("algorithm", ["alg5", "alg6"])
    def test_entry_marginal_is_hypergeometric(self, algorithm):
        rows = [10, 14, 8, 12]
        cols = [11, 11, 11, 11]
        machine = PROMachine(4, seed=77)
        matrices = []
        for _ in range(800):
            matrix, _ = sample_matrix_parallel(rows, cols, machine=machine, algorithm=algorithm)
            matrices.append(matrix)
        result = entry_marginal_test(matrices, 1, 2, rows, cols)
        assert result.p_value > 1e-4, (algorithm, result)

    def test_merged_blocks_follow_merged_law(self):
        rows = cols = [6, 6, 6, 6, 6]
        machine = PROMachine(5, seed=78)
        matrices = []
        for _ in range(800):
            matrix, _ = sample_matrix_parallel(rows, cols, machine=machine, algorithm="alg6")
            matrices.append(matrix)
        result = merged_matrix_test(
            matrices, [[0, 1], [2, 3, 4]], [[0, 1, 2], [3, 4]], rows, cols
        )
        assert result.p_value > 1e-4, result

    def test_alg5_and_alg6_agree_on_entry_means(self):
        rows = cols = [8] * 6
        machine5 = PROMachine(6, seed=79)
        machine6 = PROMachine(6, seed=80)
        mats5 = np.array([
            sample_matrix_parallel(rows, cols, machine=machine5, algorithm="alg5")[0]
            for _ in range(400)
        ], dtype=float)
        mats6 = np.array([
            sample_matrix_parallel(rows, cols, machine=machine6, algorithm="alg6")[0]
            for _ in range(400)
        ], dtype=float)
        expected = np.full((6, 6), 8 * 8 / 48)
        assert np.allclose(mats5.mean(axis=0), expected, atol=0.5)
        assert np.allclose(mats6.mean(axis=0), expected, atol=0.5)
