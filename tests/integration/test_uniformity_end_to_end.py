"""Integration tests for experiment E7: end-to-end uniformity of Algorithm 1.

These are the statistically strongest tests in the suite: they check that
the *full parallel pipeline* (local shuffles + matrix sampling + exchange)
induces the uniform distribution over permutations, exhaustively for small
``n`` and through necessary conditions for moderate ``n``.  Seeds are fixed;
the acceptance thresholds leave very comfortable margins for a correct
sampler.
"""

import numpy as np
import pytest

from repro.core.permutation import random_permutation_indices
from repro.pro.machine import PROMachine
from repro.stats.uniformity import (
    chi_square_permutation_uniformity,
    fixed_points_summary,
    position_occupancy_test,
)

# Thousands of full pipeline runs per test: statistically strong but
# multi-second -- the fast CI set (-m "not slow") skips them.
pytestmark = pytest.mark.slow


def make_sampler(n, p, seed, matrix_algorithm="root"):
    machine = PROMachine(p, seed=seed)
    return lambda: random_permutation_indices(n, machine=machine, matrix_algorithm=matrix_algorithm)


class TestExhaustiveUniformity:
    @pytest.mark.parametrize("p,matrix_algorithm", [(2, "root"), (2, "alg5"), (3, "alg6")])
    def test_n4_all_permutations_equally_likely(self, p, matrix_algorithm):
        sampler = make_sampler(4, p, seed=1000 + p, matrix_algorithm=matrix_algorithm)
        result = chi_square_permutation_uniformity(sampler, 4, 6000)
        assert result.p_value > 1e-4, result

    def test_n5_with_three_processors(self):
        sampler = make_sampler(5, 3, seed=555)
        result = chi_square_permutation_uniformity(sampler, 5, 12000)
        assert result.p_value > 1e-4, result


class TestNecessaryConditions:
    def test_position_occupancy_n12(self):
        sampler = make_sampler(12, 4, seed=777)
        result = position_occupancy_test(sampler, 12, 3000)
        assert result.p_value > 1e-4, result

    def test_position_occupancy_uneven_blocks(self):
        from repro.core.blocks import BlockDistribution
        from repro.core.permutation import random_permutation
        machine = PROMachine(3, seed=888)
        dist = BlockDistribution([6, 1, 3])

        def sampler():
            return random_permutation(np.arange(10), n_procs=3, machine=machine, distribution=dist)

        result = position_occupancy_test(sampler, 10, 3000)
        assert result.p_value > 1e-4, result

    def test_fixed_points_statistic_moderate_n(self):
        sampler = make_sampler(60, 5, seed=999)
        summary = fixed_points_summary(sampler, 60, 1200)
        assert abs(summary.z_score) < 5, summary


class TestBaselineContrast:
    """The same machinery must expose methods that are balanced but not uniform.

    The textbook shortcut -- exchange *fixed* slices between the processors
    (so the layout is perfectly balanced) and only shuffle locally -- fails
    uniformity because an item can never reach most positions.  This is the
    kind of method the paper's introduction rules out, and it is the reason
    the communication matrix must be sampled from the right distribution
    rather than fixed a priori.
    """

    @staticmethod
    def _deterministic_exchange_sampler(n, p, seed):
        rng = np.random.default_rng(seed)
        block = n // p

        def sampler():
            data = np.arange(n)
            # deterministic "rotation" exchange: block i goes, whole, to block (i+1) mod p
            blocks = [data[i * block:(i + 1) * block] for i in range(p)]
            rotated = [blocks[(i - 1) % p] for i in range(p)]
            shuffled = [rng.permutation(b) for b in rotated]
            return np.concatenate(shuffled)

        return sampler

    def test_deterministic_exchange_with_local_shuffles_is_not_uniform(self):
        sampler = self._deterministic_exchange_sampler(4, 2, seed=4321)
        result = chi_square_permutation_uniformity(sampler, 4, 4000)
        assert result.p_value < 1e-6, (
            "a deterministic exchange passed the uniformity test; "
            "the test has lost its power"
        )

    def test_dart_throwing_violates_the_prescribed_layout(self):
        """Dart throwing is (globally) random but does not respect the target
        block sizes -- the balance criterion of the paper."""
        from repro.baselines.dart_throwing import dart_throwing_permutation
        machine = PROMachine(4, seed=4322)
        deviations = 0
        for _ in range(15):
            _, run = dart_throwing_permutation(np.arange(32), machine=machine)
            sizes = [len(b) for b in run.results]
            if sizes != [8, 8, 8, 8]:
                deviations += 1
        assert deviations > 0

    def test_parallel_algorithm_passes_where_the_shortcut_fails(self):
        sampler = make_sampler(4, 2, seed=2222)
        result = chi_square_permutation_uniformity(sampler, 4, 4000)
        assert result.p_value > 1e-4
