"""Fault injection across the backend matrix.

Every injected failure -- rank crash, dropped message, barrier timeout,
mid-transfer abort -- must surface in the caller as a clean
:class:`~repro.util.errors.BackendError` (root cause preferred over broken
-barrier symptoms), siblings must fail fast, and out-of-address-space
backends must release every in-flight resource (no leaked shared-memory
segments under ``-W error``).  Delayed-but-delivered messages, by contrast,
must change *nothing*: receives match on tags and park strays, so delivery
order within a superstep is immaterial (Proposition 1's non-blocking
assumption).
"""

import os
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.core.parallel_matrix import sample_matrix_parallel
from repro.pro.backends.faults import (
    AbortTransfer,
    BarrierTimeout,
    CrashRank,
    DelayMessage,
    DropMessage,
    FaultInjectingBackend,
    FaultPlan,
    InjectedFault,
    shrink_schedule,
)
from repro.pro.machine import PROMachine
from repro.util.errors import BackendError, CommunicationError, ValidationError
from repro.util.timeouts import scale_timeout

pytestmark = pytest.mark.sim


def _exchange(ctx):
    out = ctx.comm.alltoall([ctx.rank * 10 + j for j in range(ctx.comm.size)])
    ctx.comm.barrier()
    return out


def _two_barriers(ctx):
    ctx.comm.barrier()
    ctx.comm.barrier()
    return ctx.rank


class TestFaultPlan:
    def test_rejects_unknown_records(self):
        with pytest.raises(ValidationError, match="unknown fault"):
            FaultPlan(["drop rank 3"])

    def test_owned_by_addresses_actors(self):
        plan = FaultPlan([CrashRank(rank=1), DropMessage(src=0, dst=2),
                          BarrierTimeout(rank=2)])
        assert plan.owned_by(0) == (DropMessage(src=0, dst=2),)
        assert plan.owned_by(1) == (CrashRank(rank=1),)
        assert len(plan) == 3

    def test_wrapper_delegates_capabilities_and_name(self):
        backend = FaultInjectingBackend("sim", [CrashRank(rank=0)])
        assert backend.name == "faulty+sim"
        assert backend.capabilities.deterministic_schedule
        assert backend.plan.faults == (CrashRank(rank=0),)


class TestSimFaults:
    def test_rank_crash_surfaces_as_backend_error(self):
        backend = FaultInjectingBackend("sim", [CrashRank(rank=1, at_op=2)])
        with pytest.raises(BackendError, match="rank 1") as excinfo:
            PROMachine(3, seed=0, backend=backend).run(_exchange)
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_crash_preferred_over_deadlock_symptoms(self):
        # Rank 2 crashes; ranks 0/1 then starve waiting for its payloads.
        # The reported root cause must be the injected crash, not the
        # CommunicationError symptoms it provoked in the siblings.
        backend = FaultInjectingBackend("sim", [CrashRank(rank=2, at_op=0)])
        with pytest.raises(BackendError, match="rank 2"):
            PROMachine(3, seed=0, backend=backend).run(_exchange)

    def test_dropped_message_proved_as_deadlock_instantly(self):
        backend = FaultInjectingBackend("sim", [DropMessage(src=0, dst=2)])
        start = time.perf_counter()
        with pytest.raises(BackendError, match="deadlock"):
            PROMachine(3, seed=0, backend=backend, timeout=3600.0).run(_exchange)
        assert time.perf_counter() - start < 5.0

    def test_barrier_timeout_breaks_barrier_for_everyone(self):
        backend = FaultInjectingBackend("sim", [BarrierTimeout(rank=1, nth=1)])
        with pytest.raises(BackendError, match="barrier"):
            PROMachine(3, seed=0, backend=backend).run(_two_barriers)

    def test_abort_mid_transfer(self):
        backend = FaultInjectingBackend("sim", [AbortTransfer(src=0, dst=1)])
        with pytest.raises(BackendError, match="rank 0") as excinfo:
            PROMachine(2, seed=0, backend=backend).run(_exchange)
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_delayed_message_changes_nothing(self):
        reference = PROMachine(3, seed=4).run(_exchange).results
        backend = FaultInjectingBackend(
            "sim", [DelayMessage(src=0, dst=2, by=4)], schedule_seed=5,
        )
        out = PROMachine(3, seed=4, backend=backend).run(_exchange).results
        assert out == reference

    def test_faults_fire_under_every_schedule(self):
        for schedule_seed in range(10):
            backend = FaultInjectingBackend(
                "sim", [CrashRank(rank=0, at_op=3)], schedule_seed=schedule_seed,
            )
            with pytest.raises(BackendError, match="rank 0"):
                PROMachine(4, seed=0, backend=backend).run(_exchange)
            assert backend.backend.last_schedule  # reproducer recorded

    def test_fault_plan_through_driver_layer(self):
        # Drop the root's scatter message to rank 2: rank 2 can never see
        # its row, so the driver-level call must fail (and fail fast).
        backend = FaultInjectingBackend("sim", [DropMessage(src=0, dst=2)])
        with pytest.raises(BackendError):
            sample_matrix_parallel([5, 5, 5], algorithm="root",
                                   backend=backend, seed=3)


class TestThreadFaults:
    """The same plans against real concurrency (the wrapper is generic)."""

    def test_rank_crash(self):
        backend = FaultInjectingBackend("thread", [CrashRank(rank=1, at_op=2)])
        with pytest.raises(BackendError, match="rank 1"):
            PROMachine(3, seed=0, backend=backend,
                       timeout=scale_timeout(5)).run(_exchange)

    def test_dropped_message_times_out(self):
        backend = FaultInjectingBackend("thread", [DropMessage(src=0, dst=2)])
        with pytest.raises(BackendError):
            PROMachine(3, seed=0, backend=backend,
                       timeout=scale_timeout(0.4)).run(_exchange)

    def test_barrier_timeout(self):
        backend = FaultInjectingBackend("thread", [BarrierTimeout(rank=0)])
        with pytest.raises(BackendError, match="barrier"):
            PROMachine(3, seed=0, backend=backend,
                       timeout=scale_timeout(5)).run(_two_barriers)

    def test_delayed_message_changes_nothing(self):
        reference = PROMachine(3, seed=4).run(_exchange).results
        backend = FaultInjectingBackend("thread", [DelayMessage(src=2, dst=0, by=2)])
        out = PROMachine(3, seed=4, backend=backend,
                         timeout=scale_timeout(10)).run(_exchange).results
        assert out == reference


def _bulk_exchange(ctx, n):
    data = np.arange(n, dtype=np.int64) + ctx.rank
    for dst in range(ctx.comm.size):
        if dst != ctx.rank:
            ctx.comm.send(data, dst, tag=5)
    received = [ctx.comm.recv(src, tag=5)
                for src in range(ctx.comm.size) if src != ctx.rank]
    return sum(int(arr.sum()) for arr in received)


@pytest.mark.subprocess
@pytest.mark.slow
class TestProcessFaults:
    """Faults crossing the address-space gap: the plan travels pickled.

    Unlike the sim backend these runs really wait out the communication
    timeout of the starved ranks, so the class is marked ``slow``.
    """

    @pytest.mark.parametrize("transport", ["pickle", "sharedmem"])
    def test_rank_crash(self, transport):
        backend = FaultInjectingBackend(
            "process", [CrashRank(rank=1, at_op=1)], transport=transport,
        )
        with pytest.raises(BackendError, match="rank 1"):
            PROMachine(2, seed=0, backend=backend,
                       timeout=scale_timeout(2)).run(_bulk_exchange, 2000)

    def test_abort_mid_transfer_disposes_in_flight_segments(self):
        # Bulk sharedmem payloads are in flight when the abort fires; the
        # fabric shutdown must dispose them (asserted process-wide by
        # test_no_leaked_segments_under_w_error below).
        backend = FaultInjectingBackend("process", [AbortTransfer(src=0, dst=1)])
        with pytest.raises(BackendError):
            PROMachine(3, seed=0, backend=backend,
                       timeout=scale_timeout(2)).run(_bulk_exchange, 50_000)

    def test_faulted_persistent_pool_is_poisoned(self):
        backend = FaultInjectingBackend(
            "process", [CrashRank(rank=0, at_op=0)], persistent=True,
        )
        machine = PROMachine(2, seed=0, backend=backend,
                             timeout=scale_timeout(10))
        try:
            with pytest.raises(BackendError, match="rank 0"):
                machine.run(_bulk_exchange, 20_000)
            with pytest.raises(BackendError, match="poisoned"):
                machine.run(_bulk_exchange, 20_000)
        finally:
            machine.close()

    def test_no_leaked_segments_under_w_error(self):
        """Crash + drop + abort faults leave no shared-memory leaks."""
        script = textwrap.dedent("""
            import numpy as np
            from repro.pro.backends.faults import (
                AbortTransfer, CrashRank, DropMessage, FaultInjectingBackend)
            from repro.pro.machine import PROMachine
            from repro.util.errors import BackendError
            from repro.util.timeouts import scale_timeout

            def bulk(ctx, n):
                data = np.arange(n, dtype=np.int64) + ctx.rank
                for dst in range(ctx.comm.size):
                    if dst != ctx.rank:
                        ctx.comm.send(data, dst, tag=5)
                out = [ctx.comm.recv(src, tag=5)
                       for src in range(ctx.comm.size) if src != ctx.rank]
                return sum(int(a.sum()) for a in out)

            for plan in ([CrashRank(rank=1, at_op=1)],
                         [DropMessage(src=0, dst=1)],
                         [AbortTransfer(src=1, dst=0)]):
                backend = FaultInjectingBackend("process", plan)
                try:
                    PROMachine(2, seed=0, backend=backend,
                               timeout=scale_timeout(1.0)).run(bulk, 40_000)
                    raise SystemExit(f"plan {plan} did not fail")
                except BackendError:
                    pass
        """)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-W", "error", "-c", script],
            capture_output=True, text=True, env=env,
            timeout=scale_timeout(120),
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr


class TestShrinking:
    """Find a schedule-dependent failure, then minimise its reproducer."""

    @staticmethod
    def _racy_program(shared):
        def racy(ctx):
            ctx.comm.barrier()
            shared.append(ctx.rank)  # unsynchronised shared-state race
            ctx.comm.barrier()
            if ctx.rank == 0 and shared[-1] != 0:
                raise RuntimeError("rank 0 lost the race")
            return None

        return racy

    def _fails(self, schedule, shared):
        shared.clear()
        machine = PROMachine(2, seed=0, backend="sim",
                             backend_options={"schedule": list(schedule)})
        try:
            machine.run(self._racy_program(shared))
            return False
        except BackendError:
            return True

    def test_sweep_find_shrink_replay(self):
        shared: list = []
        program = self._racy_program(shared)
        failing_trace = None
        for schedule_seed in range(64):
            shared.clear()
            machine = PROMachine(2, seed=0, backend="sim",
                                 backend_options={"schedule_seed": schedule_seed})
            try:
                machine.run(program)
            except BackendError:
                failing_trace = machine.backend.last_schedule
                break
        assert failing_trace is not None, "no seed exposed the race"

        shrunk = shrink_schedule(lambda s: self._fails(s, shared), failing_trace)
        assert len(shrunk) <= len(failing_trace)
        assert len(shrunk) <= 4  # the race needs only a couple of decisions
        assert self._fails(shrunk, shared)  # the reproducer still reproduces

    def test_shrink_rejects_passing_schedule(self):
        shared: list = []
        with pytest.raises(ValidationError, match="failing schedule"):
            shrink_schedule(lambda s: self._fails(s, shared), [0, 0, 0])

    def test_injected_fault_is_not_a_communication_error(self):
        # The root-cause preference of every backend relies on this.
        assert not issubclass(InjectedFault, CommunicationError)
