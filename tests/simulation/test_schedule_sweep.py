"""Schedule sweeps: hundreds of interleavings, one result.

The paper's parallel algorithms are only trustworthy if their output is a
function of the machine seed alone -- never of how the ranks happened to
interleave.  The sim backend makes that property *testable*: every
``schedule_seed`` replays a distinct deterministic interleaving of the
head/worker protocols of Algorithms 5 and 6 in microseconds, so this module
sweeps ``>= 100`` distinct schedules per algorithm across ``p in {2, 4, 8}``
and asserts bit-identical results against the thread-backend reference.

Because blocking in the sim backend never consults a wall clock, the whole
sweep runs in seconds -- this is the scenario-diversity engine that real
concurrency (slow, irreproducible) cannot provide.
"""

import numpy as np
import pytest

from repro.core.parallel_matrix import sample_matrix_parallel
from repro.core.permutation import random_permutation
from repro.pro.machine import PROMachine

pytestmark = pytest.mark.sim

PROC_COUNTS = (2, 4, 8)
ALGORITHMS = ("alg5", "alg6")
#: Schedule seeds swept per (algorithm, p) cell; the acceptance criterion
#: ("demonstrate >= 100 distinct schedule seeds over alg5/alg6") is checked
#: explicitly by ``test_sweep_covers_at_least_100_schedules``.
SEEDS_PER_CELL = 20
MACHINE_SEED = 8128


def _row_sums(n_procs: int) -> np.ndarray:
    # Uneven marginals so the protocols actually move different amounts.
    return (np.arange(1, n_procs + 1) * 3) % 7 + 2


@pytest.fixture(scope="module")
def reference_matrices():
    """Thread-backend reference per (algorithm, p), computed once."""
    references = {}
    for algorithm in ALGORITHMS:
        for n_procs in PROC_COUNTS:
            references[algorithm, n_procs], _ = sample_matrix_parallel(
                _row_sums(n_procs), algorithm=algorithm, backend="thread",
                seed=MACHINE_SEED,
            )
    return references


class TestMatrixScheduleSweep:
    @pytest.mark.parametrize("n_procs", PROC_COUNTS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_schedule_yields_the_reference_matrix(
            self, algorithm, n_procs, reference_matrices):
        reference = reference_matrices[algorithm, n_procs]
        seen_traces = set()
        for schedule_seed in range(SEEDS_PER_CELL):
            machine = PROMachine(
                n_procs, seed=MACHINE_SEED, backend="sim",
                backend_options={"schedule_seed": schedule_seed},
            )
            matrix, _ = sample_matrix_parallel(
                _row_sums(n_procs), algorithm=algorithm, machine=machine,
            )
            assert np.array_equal(reference, matrix), (
                f"{algorithm} p={n_procs} diverged under schedule seed "
                f"{schedule_seed}; replay with SimBackend(schedule="
                f"{machine.backend.last_schedule!r})"
            )
            seen_traces.add(tuple(machine.backend.last_schedule))
        if n_procs > 2:
            # The sweep must genuinely explore: with >= 3 ranks the seeds
            # cannot all collapse onto one interleaving.
            assert len(seen_traces) > 1

    def test_sweep_covers_at_least_100_schedules(self):
        cells = len(ALGORITHMS) * len(PROC_COUNTS) * SEEDS_PER_CELL
        assert cells >= 100  # 2 algorithms x {2,4,8} x 20 seeds = 120


class TestPermutationScheduleSweep:
    @pytest.mark.parametrize("matrix_algorithm", ALGORITHMS)
    def test_full_permutation_schedule_invariant(self, matrix_algorithm):
        data = np.arange(600, dtype=np.int64)
        reference = random_permutation(
            data, n_procs=4, backend="thread",
            matrix_algorithm=matrix_algorithm, seed=31,
        )
        for schedule_seed in range(10):
            out = random_permutation(
                data, n_procs=4, backend="sim", schedule_seed=schedule_seed,
                matrix_algorithm=matrix_algorithm, seed=31,
            )
            assert np.array_equal(reference, out), schedule_seed
        assert sorted(reference.tolist()) == list(range(600))

    def test_recorded_sweep_schedule_replays(self):
        """Any interleaving found by a sweep can be replayed exactly."""
        machine = PROMachine(4, seed=1, backend="sim",
                             backend_options={"schedule_seed": 13})
        first = random_permutation(np.arange(200), machine=machine)
        trace = machine.backend.last_schedule
        replay = PROMachine(4, seed=1, backend="sim",
                            backend_options={"schedule": trace})
        second = random_permutation(np.arange(200), machine=replay)
        assert np.array_equal(first, second)
        assert replay.backend.last_schedule == trace
