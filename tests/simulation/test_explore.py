"""The explorer itself: coverage guidance, findings, shrinking, reporting.

The acceptance bar of the exploration layer (pinned here, not just in CI):

* coverage guidance must beat plain random ``schedule_seed`` draws by at
  least 5x distinct trace fingerprints on alg5 at ``p = 4``;
* the planted order-dependent program (``racy-append``) must be *found*
  within a small budget and auto-shrunk to a <= 10 decision reproducer --
  the mutation self-check that gates the explorer against silent
  blindness.
"""

import json
import subprocess
import sys

import pytest

from repro.pro.explore import (
    DEFAULT_PROGRAMS,
    EXPLORE_PROGRAMS,
    ExplorationReport,
    baseline_distinct,
    committed_plans_for,
    explore,
    generated_fault_plans,
    outcomes_equivalent,
    replay_cell,
    write_reproducer,
)
from repro.pro.telemetry import event_seq, events_since
from repro.util.errors import ValidationError

pytestmark = pytest.mark.sim

MACHINE_SEED = 8128


class TestReplayCell:
    def test_ok_outcome_is_digested_and_deterministic(self):
        first = replay_cell("alg5", 4, machine_seed=MACHINE_SEED)
        second = replay_cell("alg5", 4, machine_seed=MACHINE_SEED)
        assert first[0] == "ok"
        assert first == second

    def test_every_registered_program_runs_clean_at_p4(self):
        for name in DEFAULT_PROGRAMS:
            outcome = replay_cell(name, 4, machine_seed=MACHINE_SEED)
            assert outcome[0] == "ok", (name, outcome)

    def test_fault_plan_changes_the_outcome(self):
        plans = committed_plans_for(4)
        outcome = replay_cell("alg5", 4, machine_seed=MACHINE_SEED,
                              plan=plans["crash-root-early"])
        assert outcome[0] == "fail"

    def test_hang_is_surfaced_in_bounded_time(self):
        outcome = replay_cell("alg5", 4, machine_seed=MACHINE_SEED, max_decisions=3)
        assert outcome == ("hang", "no termination within 3 decisions")

    def test_collect_exposes_partial_trace_on_failure(self):
        collect = {}
        replay_cell("alg5", 4, machine_seed=MACHINE_SEED,
                    plan=committed_plans_for(4)["crash-root-early"],
                    _collect=collect)
        assert collect["schedule"]  # partial, but never empty or missing
        assert collect["decisions"]

    def test_unknown_program_is_rejected(self):
        with pytest.raises(ValidationError, match="unknown explore program"):
            replay_cell("no-such-program", 4)

    def test_outcome_equivalence_rules(self):
        assert outcomes_equivalent(("ok", "abc"), ("ok", "abc"))
        assert not outcomes_equivalent(("ok", "abc"), ("ok", "xyz"))
        # Which rank's error class wins is schedule-dependent and benign.
        assert outcomes_equivalent(("fail", "BackendError"), ("fail", "InjectedFault"))
        assert not outcomes_equivalent(("fail", "BackendError"), ("hang", "x"))


class TestGeneratedPlans:
    def test_plans_follow_the_op_log(self):
        collect = {}
        replay_cell("alg5", 4, machine_seed=MACHINE_SEED, _collect=collect)
        plans = generated_fault_plans(collect["op_log"], 4)
        assert plans  # alg5 communicates, so there is something to break
        names = set(plans)
        assert any(name.startswith("crash-") for name in names)
        assert any(name.startswith("drop-") for name in names)
        # alg5 has no barriers: no barrier-timeout plans may be invented.
        assert not any(name.startswith("barrier-timeout") for name in names)

    def test_generation_is_deterministic(self):
        collect = {}
        replay_cell("alg6", 4, machine_seed=MACHINE_SEED, _collect=collect)
        once = generated_fault_plans(collect["op_log"], 4)
        again = generated_fault_plans(list(collect["op_log"]), 4)
        assert once == again

    def test_committed_plans_filtered_by_rank_bound(self):
        assert "barrier-timeout-last-rank" in committed_plans_for(4)
        assert "barrier-timeout-last-rank" not in committed_plans_for(2)


class TestAcceptance:
    """ISSUE 10 acceptance: guidance beats 500 random draws by >= 5x."""

    @pytest.mark.slow
    def test_explorer_beats_random_draws_five_fold_on_alg5_p4(self):
        report = explore(programs=["alg5"], procs=[4], budget=500,
                         machine_seed=MACHINE_SEED, baseline_draws=500)
        assert report.baseline is not None
        assert report.baseline["draws"] == 500
        ratio = report.coverage_ratio()
        assert ratio is not None and ratio >= 5.0, report.summary()
        # No schedule-dependence in the product code itself.
        assert report.findings == []

    def test_small_budget_slice_still_beats_random(self):
        # The fast-suite version of the criterion: same shape, 60 runs.
        report = explore(programs=["alg5"], procs=[4], budget=60,
                         machine_seed=MACHINE_SEED, baseline_draws=60)
        assert report.coverage_ratio() >= 5.0, report.summary()
        assert report.findings == []


class TestMutationSelfCheck:
    """The planted bug must be found, shrunk small, and reproducible."""

    def test_planted_bug_found_and_shrunk_within_budget(self, tmp_path):
        report = explore(programs=["racy-append"], procs=[4], plans="none",
                         budget=60, machine_seed=MACHINE_SEED,
                         commit_dir=tmp_path)
        assert report.findings, "explorer is blind: planted bug not found"
        finding = report.findings[0]
        assert finding.kind == "divergence"
        assert len(finding.schedule) <= 10, finding.schedule
        assert finding.original_length >= len(finding.schedule)
        # The shrunk schedule really does reproduce the divergence.
        observed = replay_cell("racy-append", 4, machine_seed=MACHINE_SEED,
                               schedule=finding.schedule)
        reference = replay_cell("racy-append", 4, machine_seed=MACHINE_SEED,
                                schedule=[])
        assert not outcomes_equivalent(observed, reference)
        # And the committed reproducer file is a runnable pytest module
        # that FAILS while the bug exists (it guards the fix).
        assert finding.reproducer is not None
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
             finding.reproducer],
            capture_output=True, text=True, cwd="/root/repo",
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "test_interleaving_is_schedule_independent" in proc.stdout

    def test_findings_are_deduplicated_per_cell(self):
        report = explore(programs=["racy-append"], procs=[4], plans="none",
                         budget=60, machine_seed=MACHINE_SEED)
        witnesses = {(f.kind, tuple(f.schedule)) for f in report.findings}
        assert len(witnesses) == len(report.findings)
        assert len(report.findings) <= 3

    def test_telemetry_events_are_emitted(self):
        since = event_seq()
        explore(programs=["racy-append"], procs=[2], plans="none", budget=20,
                machine_seed=MACHINE_SEED)
        kinds = [event["kind"] for event in events_since(since)]
        assert "explore-start" in kinds
        assert "explore-divergence" in kinds
        assert "explore-shrink" in kinds


class TestReport:
    def test_report_schema_round_trips_through_json(self):
        report = explore(programs=["alg5"], procs=[2], plans="committed",
                         budget=25, machine_seed=MACHINE_SEED, baseline_draws=10)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["schema"] == ExplorationReport.SCHEMA
        assert payload["runs_used"] <= payload["budget"]
        assert payload["distinct_total"] == sum(c["distinct"] for c in payload["cells"])
        assert payload["baseline"]["draws"] == 10
        for cell in payload["cells"]:
            assert "fingerprints" not in cell  # internal detail, not schema
            assert cell["runs"] >= 0 and cell["distinct"] >= 0
        assert isinstance(payload["findings"], list)
        assert "coverage_ratio" in payload

    def test_budget_is_respected(self):
        report = explore(programs=["alg5"], procs=[2], budget=10,
                         machine_seed=MACHINE_SEED)
        assert report.runs_used <= 10

    def test_summary_mentions_cells_and_baseline(self):
        report = explore(programs=["alg5"], procs=[2], plans="none", budget=12,
                         machine_seed=MACHINE_SEED, baseline_draws=6)
        text = report.summary()
        assert "distinct trace fingerprints" in text
        assert "baseline" in text

    def test_bad_plans_mode_is_rejected(self):
        with pytest.raises(ValidationError, match="plans must be"):
            explore(programs=["alg5"], procs=[2], plans="bogus", budget=5)


class TestReproducerEmission:
    def test_reproducer_is_self_contained_and_plan_importable(self, tmp_path):
        from repro.pro.backends.faults import DropMessage
        from repro.pro.explore import Finding

        finding = Finding(
            program="alg5", n_procs=4, plan_name="drop-demo",
            plan=(DropMessage(src=0, dst=1, nth=0),),
            kind="failure", schedule=[0, 2, 1], original_length=12,
            observed=("fail", "BackendError"), reference=("ok", "abc"),
        )
        path = write_reproducer(finding, tmp_path, machine_seed=MACHINE_SEED)
        source = (tmp_path / path.split("/")[-1]).read_text()
        assert "DropMessage" in source
        assert "SCHEDULE = [0, 2, 1]" in source
        assert "pytest.mark.sim" in source
        compile(source, path, "exec")  # emitted file must at least parse

    def test_baseline_distinct_collapses_for_schedule_independent_code(self):
        fingerprints = baseline_distinct("alg5", 4, 25, machine_seed=MACHINE_SEED)
        assert len(fingerprints) == 1


def test_program_registry_covers_defaults():
    assert set(DEFAULT_PROGRAMS) <= set(EXPLORE_PROGRAMS)
    assert "racy-append" in EXPLORE_PROGRAMS
    assert "racy-append" not in DEFAULT_PROGRAMS
