"""Semantics of the deterministic simulation backend.

The sim backend's promises (see :mod:`repro.pro.backends.sim`): exactly one
rank executes at any instant, the interleaving is fully determined by
``schedule_seed``/``schedule``, every run records its decision trace for
replay, results are schedule-invariant, and blocking never consults a wall
clock -- deadlocks are proved and reported immediately.
"""

import time

import pytest

from repro.pro.backends.registry import backend_capabilities, get_backend
from repro.pro.backends.sim import SimBackend, SimFabric
from repro.pro.machine import PROMachine
from repro.util.errors import BackendError, CommunicationError, ValidationError

pytestmark = pytest.mark.sim


def _allreduce(ctx):
    return ctx.comm.allreduce(ctx.rank)


def _ring_pass(ctx, value):
    """Send around the ring; exercises p2p blocking in both directions."""
    right = (ctx.rank + 1) % ctx.n_procs
    left = (ctx.rank - 1) % ctx.n_procs
    ctx.comm.send(value + ctx.rank, right, tag=1)
    got = ctx.comm.recv(left, tag=1)
    ctx.comm.barrier()
    return got


def _tag_order(ctx):
    """Out-of-order tags: the late tag must be parked, not lost."""
    if ctx.rank == 0:
        ctx.comm.send("first", 1, tag=10)
        ctx.comm.send("second", 1, tag=20)
        return None
    second = ctx.comm.recv(0, tag=20)  # sent later, received first
    first = ctx.comm.recv(0, tag=10)
    return (first, second)


def _sim_machine(n, *, seed=0, **options):
    return PROMachine(n, seed=seed, backend="sim", backend_options=options)


class TestCooperativeExecution:
    @pytest.mark.parametrize("n_procs", [1, 2, 3, 4, 5, 8])
    def test_collectives_across_sizes(self, n_procs):
        expected = sum(range(n_procs))
        run = _sim_machine(n_procs).run(_allreduce)
        assert run.results == [expected] * n_procs

    def test_ring_pass_blocking_p2p(self):
        results = _sim_machine(4).run(_ring_pass, 100).results
        assert results == [103, 100, 101, 102]

    def test_out_of_order_tags_are_parked(self):
        results = _sim_machine(2).run(_tag_order).results
        assert results[1] == ("first", "second")

    def test_shared_state_interleaving_is_reproducible(self):
        # The user-visible cooperative-execution promise: the order in
        # which ranks touch *shared state* is fixed by the schedule seed,
        # so two runs observe the identical mutation log (threads give a
        # different, nondeterministic order every run).
        def logged(ctx, log):
            for step in range(4):
                log.append((ctx.rank, step))
                ctx.comm.barrier()
            return None

        logs = []
        for _ in range(2):
            log = []
            _sim_machine(4, **{"schedule_seed": 3}).run(logged, log)
            logs.append(log)
        assert logs[0] == logs[1] and len(logs[0]) == 16

    def test_cost_accounting_matches_thread_backend(self):
        sim = _sim_machine(3, seed=7).run(_ring_pass, 5).cost_report
        thread = PROMachine(3, seed=7).run(_ring_pass, 5).cost_report
        for field in ("words_sent", "words_received", "messages_sent"):
            assert sim.total(field) == thread.total(field)

    def test_capabilities_registered(self):
        caps = backend_capabilities("sim")
        assert caps.multirank and caps.blocking_p2p
        assert caps.deterministic_schedule
        assert not caps.true_parallelism
        assert backend_capabilities("thread").deterministic_schedule is False


class TestSchedules:
    def test_same_seed_replays_same_trace(self):
        machines = [_sim_machine(4, **{"schedule_seed": 11}) for _ in range(2)]
        runs = [m.run(_ring_pass, 0).results for m in machines]
        traces = [m.backend.last_schedule for m in machines]
        assert runs[0] == runs[1]
        assert traces[0] == traces[1] and len(traces[0]) > 0

    def test_different_seeds_explore_different_interleavings(self):
        traces = set()
        for seed in range(8):
            machine = _sim_machine(4, **{"schedule_seed": seed})
            machine.run(_ring_pass, 0)
            traces.add(tuple(machine.backend.last_schedule))
        assert len(traces) > 1  # genuinely different schedules...
        results = {
            tuple(_sim_machine(4, seed=5, **{"schedule_seed": s}).run(_ring_pass, 0).results)
            for s in range(8)
        }
        assert len(results) == 1  # ...but identical results

    def test_run_to_block_default_is_deterministic(self):
        machine_a = _sim_machine(3)
        machine_b = _sim_machine(3)
        machine_a.run(_allreduce)
        machine_b.run(_allreduce)
        assert machine_a.backend.last_schedule == machine_b.backend.last_schedule

    def test_recorded_schedule_replays_exactly(self):
        recorder = _sim_machine(4, **{"schedule_seed": 99})
        recorded = recorder.run(_ring_pass, 7).results
        trace = recorder.backend.last_schedule
        replayer = _sim_machine(4, **{"schedule": trace})
        assert replayer.run(_ring_pass, 7).results == recorded
        assert replayer.backend.last_schedule == trace

    def test_truncated_schedule_still_valid(self):
        recorder = _sim_machine(4, **{"schedule_seed": 2})
        recorder.run(_ring_pass, 7)
        half = recorder.backend.last_schedule[: len(recorder.backend.last_schedule) // 2]
        results = _sim_machine(4, **{"schedule": half}).run(_ring_pass, 7).results
        assert results == [10, 7, 8, 9]  # rank i receives 7 + left neighbour

    def test_schedule_options_validated(self):
        with pytest.raises(ValidationError):
            SimBackend(schedule_seed="not-an-int")
        with pytest.raises(ValidationError):
            SimBackend(schedule="nonsense")
        with pytest.raises(ValidationError, match="does not accept"):
            PROMachine(2, backend="thread", backend_options={"schedule_seed": 1})


class TestFailFast:
    def test_deadlock_detected_without_waiting_for_timeout(self):
        def starved(ctx):
            if ctx.rank == 0:
                return ctx.comm.recv(1, tag=5)  # never sent
            return None

        machine = PROMachine(2, seed=0, backend="sim", timeout=3600.0)
        start = time.perf_counter()
        with pytest.raises(BackendError, match="deadlock"):
            machine.run(starved)
        assert time.perf_counter() - start < 5.0  # not the 3600s timeout

    def test_barrier_deadlock_detected(self):
        def half_barrier(ctx):
            if ctx.rank != 0:
                ctx.comm.barrier()  # rank 0 never arrives
            return None

        with pytest.raises(BackendError, match="barrier"):
            PROMachine(3, seed=0, backend="sim", timeout=3600.0).run(half_barrier)

    def test_crash_prefers_root_cause_over_symptom(self):
        def crash(ctx):
            if ctx.rank == 2:
                raise RuntimeError("genuine bug on rank 2")
            ctx.comm.barrier()
            return ctx.rank

        with pytest.raises(BackendError, match="rank 2") as excinfo:
            _sim_machine(4).run(crash)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_keyboard_interrupt_propagates_unwrapped(self):
        def interrupt(ctx):
            if ctx.rank == 1:
                raise KeyboardInterrupt
            ctx.comm.barrier()

        with pytest.raises(KeyboardInterrupt):
            _sim_machine(2).run(interrupt)

    def test_failing_run_still_records_its_schedule(self):
        def crash(ctx):
            if ctx.rank == 1:
                raise RuntimeError("boom")
            ctx.comm.barrier()

        machine = _sim_machine(3, **{"schedule_seed": 8})
        with pytest.raises(BackendError):
            machine.run(crash)
        assert machine.backend.last_schedule  # the reproducer is available

    def test_fabric_unusable_outside_a_run(self):
        fabric = SimFabric(2)
        with pytest.raises(BackendError, match="sim fabric"):
            fabric.put(0, 1, "tag", None)
        with pytest.raises(BackendError):
            fabric.barrier_wait()

    def test_foreign_contexts_rejected(self):
        backend = get_backend("sim")
        thread_machine = PROMachine(2, seed=0)
        contexts = thread_machine._build_contexts()
        with pytest.raises(BackendError, match="SimFabric"):
            backend.run(contexts, _allreduce, (), {})

    def test_abort_breaks_later_barriers(self):
        def late_barrier(ctx):
            if ctx.rank == 0:
                ctx.comm._fabric.abort()
                with pytest.raises(CommunicationError):
                    ctx.comm.barrier()
            return "survived"

        assert _sim_machine(1).run(late_barrier).results == ["survived"]


class TestRunIntrospection:
    """Partial traces, decision/op logs, policies, decision bounds.

    The exploration layer (``repro.pro.explore``) is built entirely on
    these surfaces; their semantics are pinned here, next to the backend.
    """

    def test_mid_run_raise_records_partial_trace_and_logs(self):
        def crash_after_talking(ctx):
            ctx.comm.send(ctx.rank, (ctx.rank + 1) % ctx.n_procs, tag=1)
            got = ctx.comm.recv((ctx.rank - 1) % ctx.n_procs, tag=1)
            if ctx.rank == 1:
                raise RuntimeError("boom mid-run")
            return got

        machine = _sim_machine(3)
        with pytest.raises(BackendError, match="boom mid-run"):
            machine.run(crash_after_talking)
        backend = machine.backend
        assert backend.last_schedule  # partial, but present
        assert backend.last_decisions
        assert backend.last_op_log
        # Decision log and trace describe the same run.
        assert [d[2] for d in backend.last_decisions] == backend.last_schedule
        # The replay of the partial trace is a valid schedule (prefix
        # semantics): the same crash reproduces under it.
        replay = _sim_machine(3, schedule=backend.last_schedule)
        with pytest.raises(BackendError, match="boom mid-run"):
            replay.run(crash_after_talking)

    def test_keyboard_interrupt_still_records_partial_trace(self):
        def interrupt(ctx):
            ctx.comm.barrier()
            if ctx.rank == 1:
                raise KeyboardInterrupt
            ctx.comm.barrier()

        machine = _sim_machine(2)
        with pytest.raises(KeyboardInterrupt):
            machine.run(interrupt)
        assert machine.backend.last_schedule
        assert machine.backend.last_op_log  # the first barrier completed

    def test_stale_trace_cleared_when_a_new_run_starts(self):
        backend = SimBackend()
        machine = PROMachine(2, seed=0, backend=backend)
        machine.run(_allreduce)
        assert backend.last_schedule
        # A run that is rejected before any rank steps must not leave the
        # previous run's trace looking like its own.
        thread_machine = PROMachine(2, seed=0)
        contexts = thread_machine._build_contexts()
        with pytest.raises(BackendError, match="SimFabric"):
            backend.run(contexts, _allreduce, (), {})
        assert backend.last_schedule is None
        assert backend.last_decisions is None
        assert backend.last_op_log is None

    def test_op_log_matches_the_programs_communication(self):
        machine = _sim_machine(2)
        machine.run(_ring_pass, 7)
        ops = machine.backend.last_op_log
        assert ops.count(("put", 0, 1)) == 1
        assert ops.count(("put", 1, 0)) == 1
        assert ops.count(("get", 1, 0)) == 1  # rank 0 receives from rank 1
        assert ops.count(("get", 0, 1)) == 1
        assert sum(1 for op in ops if op[0] == "barrier") == 2
        # Decisions carry the pending ops of every runnable rank.
        kinds = {op[0] for _, pendings, _ in machine.backend.last_decisions
                 for op in pendings if op is not None}
        assert kinds <= {"put", "get", "barrier"}

    def test_policy_steers_the_schedule(self):
        class HighestFirst:
            def choose(self, step, runnable, pending):
                assert set(pending) == set(runnable)
                return max(runnable)

        machine = _sim_machine(3, policy=HighestFirst())
        run = machine.run(_allreduce)
        assert run.results == [3, 3, 3]
        # The first decision went to the highest rank, not run-to-block's 0.
        assert machine.backend.last_schedule[0] == 2

    def test_policy_and_schedule_seed_are_mutually_exclusive(self):
        class AnyPolicy:
            def choose(self, step, runnable, pending):
                return runnable[0]

        with pytest.raises(ValidationError, match="mutually exclusive"):
            SimBackend(schedule_seed=1, policy=AnyPolicy())
        with pytest.raises(ValidationError, match="choose"):
            SimBackend(policy=object())

    def test_max_decisions_surfaces_hangs_in_bounded_time(self):
        from repro.pro.backends.sim import ScheduleLimitExceeded

        machine = _sim_machine(3, max_decisions=2)
        with pytest.raises(ScheduleLimitExceeded, match="2 decisions"):
            machine.run(_ring_pass, 0)
        # The partial trace up to the bound is still available for replay.
        assert len(machine.backend.last_schedule) == 2

    def test_max_decisions_validation(self):
        with pytest.raises(ValidationError, match="max_decisions"):
            SimBackend(max_decisions=0)
        with pytest.raises(ValidationError, match="max_decisions"):
            SimBackend(max_decisions="lots")

    def test_generous_max_decisions_changes_nothing(self):
        plain = _sim_machine(4).run(_allreduce).results
        bounded = _sim_machine(4, max_decisions=10_000).run(_allreduce).results
        assert bounded == plain
