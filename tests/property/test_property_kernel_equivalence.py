"""Property-based bit-exactness of the kernel tier (hypothesis).

Randomized parameter sweeps over the same contract
``tests/unit/test_kernel_equivalence.py`` pins on fixed grids: for every
(seed, parameters) pair the portable kernel bodies must produce exactly the
arrays NumPy produces *and* leave the generator on exactly the same stream
position.  Without numba installed the bodies run as plain Python, which is
the same arithmetic the JIT compiles.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import hypergeometric as hg
from repro.core.engine import SamplerEngine
from repro.core.kernels import wordstream
from repro.core.kernels.numba_tier import NumbaKernels

_TIER = NumbaKernels().warm_up()
_ORACLE = SamplerEngine("auto", kernels="numpy")

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _pair(seed):
    return np.random.default_rng(seed), np.random.default_rng(seed)


class TestPermutationProperties:
    @given(seed=seeds, n=st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_shuffle_and_stream(self, seed, n):
        g1, g2 = _pair(seed)
        perm = _TIER.permutation(g1, n)
        ref = np.arange(n)
        g2.shuffle(ref)
        assert np.array_equal(perm, ref)
        assert np.array_equal(g1.random(2), g2.random(2))


class TestRepeatProperties:
    @given(
        seed=seeds,
        w=st.integers(min_value=1, max_value=400),
        b=st.integers(min_value=1, max_value=400),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_generator_hypergeometric(self, seed, w, b, data):
        # Non-degenerate draws only: the engine resolves trivial parameters
        # before the tier is consulted.
        t = data.draw(st.integers(min_value=1, max_value=w + b - 1))
        size = data.draw(st.integers(min_value=1, max_value=30))
        g1, g2 = _pair(seed)
        mine = _TIER.repeat_hypergeometric(g1, w, b, t, size)
        ref = g2.hypergeometric(w, b, t, size)
        assert np.array_equal(mine, ref)
        assert np.array_equal(g1.random(2), g2.random(2))


class TestBlockedScalarProperties:
    @given(
        seed=seeds,
        w=st.integers(min_value=1, max_value=120),
        b=st.integers(min_value=1, max_value=120),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_blocked_hin_matches_loop(self, seed, w, b, data):
        t = data.draw(st.integers(min_value=1, max_value=w + b - 1))
        g1, g2 = _pair(seed)
        mine, used = wordstream.blocked_scalar_many(g1, "hin", t, w, b, 12)
        ref = np.array([hg.sample_hin(t, w, b, g2) for _ in range(12)])
        assert np.array_equal(mine, ref)
        assert np.array_equal(g1.random(2), g2.random(2))
        assert used.sum() >= 12  # HIN draws at least one uniform per variate

    @given(
        seed=seeds,
        w=st.integers(min_value=12, max_value=200),
        b=st.integers(min_value=12, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_blocked_hrua_matches_loop(self, seed, w, b, data):
        # HRUA's own validity region: 10 <= sample <= good + bad - 10.
        t = data.draw(st.integers(min_value=10, max_value=w + b - 10))
        g1, g2 = _pair(seed)
        mine, _ = wordstream.blocked_scalar_many(g1, "hrua", t, w, b, 12)
        ref = np.array([hg.sample_hrua(t, w, b, g2) for _ in range(12)])
        assert np.array_equal(mine, ref)
        assert np.array_equal(g1.random(2), g2.random(2))


class TestTreeProperties:
    @given(
        seed=seeds,
        sizes=st.lists(
            st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=7),
            min_size=1,
            max_size=3,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_multivariate_batch_matches_engine(self, seed, sizes, data):
        sizes = np.asarray(sizes, dtype=np.int64)
        draws = np.array(
            [data.draw(st.integers(min_value=0, max_value=int(row.sum())))
             for row in sizes],
            dtype=np.int64,
        )
        g1, g2 = _pair(seed)
        mine = _TIER.multivariate_batch(g1, draws, sizes)
        ref = _ORACLE.multivariate_batch(draws, sizes, g2)
        assert np.array_equal(mine, ref)
        assert np.array_equal(g1.random(2), g2.random(2))

    @given(
        seed=seeds,
        rows=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=6),
        n_cols=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_sample_matrix_matches_engine(self, seed, rows, n_cols, data):
        rows = np.asarray(rows, dtype=np.int64)
        total = int(rows.sum())
        # Random column split with the same total (valid marginals).
        cuts = sorted(
            data.draw(st.integers(min_value=0, max_value=total))
            for _ in range(n_cols - 1)
        )
        cols = np.diff([0, *cuts, total]).astype(np.int64)
        g1, g2 = _pair(seed)
        mine = _TIER.sample_matrix(g1, rows, cols)
        ref = _ORACLE.sample_matrix_batched(rows, cols, g2)
        assert np.array_equal(mine, ref)
        assert np.array_equal(g1.random(2), g2.random(2))
