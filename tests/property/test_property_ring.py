"""Stateful property test of the circular ``_SenderRing`` slot allocator.

The ring is the heart of the shared-memory transport's sustained-traffic
path (see :mod:`repro.pro.backends.sharedmem`): senders bump-allocate
contiguous slots from a circular buffer, receivers acknowledge slots once
their zero-copy views die, and the allocator reclaims the contiguous acked
prefix.  Hypothesis drives random alloc/ack/oversize/duplicate-ack
sequences against a model and checks the safety invariants that, if ever
violated, would silently corrupt message payloads:

* a returned slot is 64-byte aligned, physically contiguous and entirely
  inside the buffer;
* a returned slot never overlaps any slot that is still unreclaimed
  (allocated, not yet freed by the contiguous-acked-prefix rule);
* slots are reclaimed exactly in allocation order, only once acked;
* unknown and duplicate receipts are ignored;
* the allocator never refuses when the ring is empty and the request fits
  (and, the liveness half: when every ack keeps pace, traffic cycles
  through the buffer indefinitely -- it never degrades).
"""

from types import SimpleNamespace

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.pro.backends.sharedmem import _ALIGN, _SenderRing

CAPACITY = 64 * _ALIGN  # 4 KiB ring: small enough to wrap constantly


def _fresh_ring(size: int = CAPACITY) -> _SenderRing:
    # The allocator only consults shm.size; no real segment needed.
    return _SenderRing(SimpleNamespace(size=size))


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


class RingAllocatorMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ring = _fresh_ring()
        # Unreclaimed slots in allocation order: dicts with position, size
        # (aligned), receipt, acked.
        self.outstanding: list[dict] = []
        self.last_reclaimed = 0

    # -- helpers -------------------------------------------------------------
    def _reclaim_prefix(self) -> None:
        # Specification of the ring's release rule: the contiguous acked
        # prefix (in allocation order) becomes reusable.
        while self.outstanding and self.outstanding[0]["acked"]:
            self.outstanding.pop(0)

    # -- rules ---------------------------------------------------------------
    @rule(nbytes=st.integers(min_value=1, max_value=CAPACITY))
    def allocate(self, nbytes):
        slot = self.ring.allocate(nbytes)
        if slot is None:
            # Refusal is only legitimate while unreclaimed slots exist.
            assert self.outstanding, (
                f"empty ring refused a fitting allocation of {nbytes} bytes"
            )
            return
        position, receipt = slot
        size = _aligned(nbytes)
        assert position % _ALIGN == 0
        assert 0 <= position and position + size <= self.ring.capacity, (
            "slot not physically contiguous inside the buffer"
        )
        for other in self.outstanding:
            assert (position + size <= other["position"]
                    or other["position"] + other["size"] <= position), (
                f"slot [{position}, {position + size}) overlaps live slot "
                f"[{other['position']}, {other['position'] + other['size']})"
            )
        self.outstanding.append(
            {"position": position, "size": size, "receipt": receipt, "acked": False}
        )

    @precondition(lambda self: any(not s["acked"] for s in self.outstanding))
    @rule(index=st.integers(min_value=0, max_value=200))
    def ack_some_live_slot(self, index):
        live = [s for s in self.outstanding if not s["acked"]]
        slot = live[index % len(live)]
        slot["acked"] = True
        self.ring.ack(slot["receipt"])
        self._reclaim_prefix()

    @rule(receipt=st.integers())
    def ack_unknown_receipt_is_ignored(self, receipt):
        known = {s["receipt"] for s in self.outstanding}
        if receipt in known:
            return
        head, tail = self.ring.head, self.ring.tail
        self.ring.ack(receipt)
        assert (self.ring.head, self.ring.tail) == (head, tail)

    @precondition(lambda self: any(s["acked"] for s in self.outstanding))
    @rule()
    def duplicate_ack_is_ignored(self):
        slot = next(s for s in self.outstanding if s["acked"])
        head, tail = self.ring.head, self.ring.tail
        self.ring.ack(slot["receipt"])
        assert (self.ring.head, self.ring.tail) == (head, tail)

    @rule(extra=st.integers(min_value=1, max_value=4 * CAPACITY))
    def oversize_is_always_refused(self, extra):
        assert self.ring.allocate(CAPACITY + extra) is None

    # -- invariants ----------------------------------------------------------
    @invariant()
    def live_bytes_fit_the_capacity(self):
        assert 0 <= self.ring.tail <= self.ring.head
        assert self.ring.head - self.ring.tail <= self.ring.capacity

    @invariant()
    def reclaimed_bytes_monotonic(self):
        assert self.ring.reclaimed_bytes >= self.last_reclaimed
        self.last_reclaimed = self.ring.reclaimed_bytes


RingAllocatorMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None,
)
TestRingAllocator = RingAllocatorMachine.TestCase


@given(sizes=st.lists(st.integers(min_value=1, max_value=CAPACITY // 2),
                      min_size=50, max_size=200))
@settings(max_examples=40, deadline=None)
def test_acked_traffic_never_degrades(sizes):
    """When acks keep pace, the ring serves unbounded traffic (liveness)."""
    ring = _fresh_ring()
    for nbytes in sizes:
        slot = ring.allocate(nbytes)
        assert slot is not None, (
            f"promptly acked ring refused {nbytes} bytes after "
            f"{ring.wraps} wraps"
        )
        ring.ack(slot[1])
    assert ring.head - ring.tail == 0  # everything reclaimed


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_windowed_acks_sustain_wrapping(seed):
    """A bounded in-flight window (receiver lag) still cycles forever."""
    import random

    rng = random.Random(seed)
    ring = _fresh_ring()
    in_flight: list[int] = []
    for _ in range(300):
        slot = ring.allocate(rng.randrange(1, CAPACITY // 8))
        if slot is None:
            # Full up: the oldest receipts must free space again.
            assert in_flight, "empty ring refused an eighth-capacity slot"
            ring.ack(in_flight.pop(0))
            continue
        in_flight.append(slot[1])
        while len(in_flight) > 4:  # receiver lags at most 4 messages
            ring.ack(in_flight.pop(0))
    assert ring.wraps > 0  # the window is tiny; 300 messages must wrap
