"""Property-based tests (hypothesis) for the hypergeometric distribution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import hypergeometric as hg
from repro.rng.counting import CountingRNG

# Keep the parameter space modest so the pmf sums stay cheap.
urn = st.tuples(
    st.integers(min_value=0, max_value=60),   # white
    st.integers(min_value=0, max_value=60),   # black
).filter(lambda wb: wb[0] + wb[1] > 0)


@st.composite
def urn_and_draws(draw):
    w, b = draw(urn)
    t = draw(st.integers(min_value=0, max_value=w + b))
    return t, w, b


class TestPmfProperties:
    @given(params=urn_and_draws())
    @settings(max_examples=80, deadline=None)
    def test_pmf_sums_to_one(self, params):
        t, w, b = params
        lo, hi = hg.support(t, w, b)
        total = sum(hg.pmf(k, t, w, b) for k in range(lo, hi + 1))
        assert total == pytest.approx(1.0, abs=1e-9)

    @given(params=urn_and_draws())
    @settings(max_examples=80, deadline=None)
    def test_mean_matches_first_moment(self, params):
        t, w, b = params
        lo, hi = hg.support(t, w, b)
        first_moment = sum(k * hg.pmf(k, t, w, b) for k in range(lo, hi + 1))
        assert first_moment == pytest.approx(hg.mean(t, w, b), abs=1e-8)

    @given(params=urn_and_draws())
    @settings(max_examples=80, deadline=None)
    def test_symmetry_in_colours(self, params):
        """Counting whites among t draws vs blacks: P[X=k] == P[X'=t-k]."""
        t, w, b = params
        lo, hi = hg.support(t, w, b)
        for k in range(lo, hi + 1):
            assert hg.pmf(k, t, w, b) == pytest.approx(hg.pmf(t - k, t, b, w), abs=1e-10)

    @given(params=urn_and_draws())
    @settings(max_examples=80, deadline=None)
    def test_complement_symmetry_in_draws(self, params):
        """Drawing t or leaving t balls behind is the same experiment:
        P[X_{t} = k] == P[X_{n-t} = w - k]."""
        t, w, b = params
        n = w + b
        lo, hi = hg.support(t, w, b)
        for k in range(lo, hi + 1):
            assert hg.pmf(k, t, w, b) == pytest.approx(hg.pmf(w - k, n - t, w, b), abs=1e-10)

    @given(params=urn_and_draws())
    @settings(max_examples=60, deadline=None)
    def test_mode_is_argmax(self, params):
        t, w, b = params
        lo, hi = hg.support(t, w, b)
        probs = {k: hg.pmf(k, t, w, b) for k in range(lo, hi + 1)}
        best = max(probs.values())
        assert probs[hg.mode(t, w, b)] == pytest.approx(best, rel=1e-9)


class TestSamplerProperties:
    @given(params=urn_and_draws(), seed=st.integers(min_value=0, max_value=2**32 - 1),
           method=st.sampled_from(["hin", "hrua", "auto"]))
    @settings(max_examples=150, deadline=None)
    def test_samples_in_support(self, params, seed, method):
        t, w, b = params
        lo, hi = hg.support(t, w, b)
        value = hg.sample(t, w, b, np.random.default_rng(seed), method=method)
        assert lo <= value <= hi

    @given(params=urn_and_draws(), seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_sampling_is_deterministic_given_stream(self, params, seed):
        t, w, b = params
        a = hg.sample(t, w, b, np.random.default_rng(seed))
        b_ = hg.sample(t, w, b, np.random.default_rng(seed))
        assert a == b_

    @given(params=urn_and_draws(), seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_hin_uniform_consumption_bounded_by_draws(self, params, seed):
        t, w, b = params
        rng = CountingRNG(np.random.default_rng(seed))
        hg.sample_hin(t, w, b, rng)
        assert rng.uniforms_drawn <= max(t, 1)
