"""Property-based tests for the multivariate hypergeometric and the matrix samplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import commmatrix as cm
from repro.core import matrix_distribution as md
from repro.core import multivariate as mv

class_sizes_strategy = st.lists(st.integers(min_value=0, max_value=25), min_size=1, max_size=8).filter(
    lambda sizes: sum(sizes) > 0
)


@st.composite
def mvh_instance(draw):
    sizes = draw(class_sizes_strategy)
    n_draws = draw(st.integers(min_value=0, max_value=sum(sizes)))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return n_draws, sizes, seed


@st.composite
def marginal_pair(draw):
    """Row and column marginals with equal totals."""
    rows = draw(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=6))
    total = sum(rows)
    n_cols = draw(st.integers(min_value=1, max_value=6))
    # Split `total` into n_cols non-negative parts deterministically from drawn cuts.
    cuts = sorted(draw(st.lists(st.integers(min_value=0, max_value=total), min_size=n_cols - 1, max_size=n_cols - 1)))
    cols = []
    previous = 0
    for cut in cuts + [total]:
        cols.append(cut - previous)
        previous = cut
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return rows, cols, seed


class TestMultivariateProperties:
    @given(instance=mvh_instance(), strategy=st.sampled_from(["sequential", "recursive", "batched"]))
    @settings(max_examples=120, deadline=None)
    def test_counts_sum_and_respect_capacities(self, instance, strategy):
        n_draws, sizes, seed = instance
        counts = mv.sample(n_draws, sizes, np.random.default_rng(seed), strategy=strategy)
        assert int(counts.sum()) == n_draws
        assert np.all(counts >= 0)
        assert np.all(counts <= np.asarray(sizes))

    @given(instance=mvh_instance())
    @settings(max_examples=60, deadline=None)
    def test_pmf_of_sample_is_positive(self, instance):
        n_draws, sizes, seed = instance
        counts = mv.sample_sequential(n_draws, sizes, np.random.default_rng(seed))
        assert mv.pmf(counts, n_draws, sizes) > 0.0

    @given(instance=mvh_instance())
    @settings(max_examples=60, deadline=None)
    def test_mean_vector_sums_to_draws(self, instance):
        n_draws, sizes, _ = instance
        assert mv.mean(n_draws, sizes).sum() == pytest.approx(n_draws)


class TestMatrixProperties:
    @given(pair=marginal_pair(), strategy=st.sampled_from(["sequential", "recursive", "batched"]))
    @settings(max_examples=100, deadline=None)
    def test_marginals_hold(self, pair, strategy):
        rows, cols, seed = pair
        matrix = cm.sample_matrix(rows, cols, np.random.default_rng(seed), strategy=strategy)
        assert cm.is_valid_communication_matrix(matrix, rows, cols)

    @given(pair=marginal_pair())
    @settings(max_examples=60, deadline=None)
    def test_sample_has_positive_probability(self, pair):
        rows, cols, seed = pair
        matrix = cm.sample_matrix(rows, cols, np.random.default_rng(seed))
        assert md.log_pmf(matrix, rows, cols) > float("-inf")

    @given(pair=marginal_pair())
    @settings(max_examples=50, deadline=None)
    def test_merge_to_single_block_gives_total(self, pair):
        rows, cols, seed = pair
        matrix = cm.sample_matrix(rows, cols, np.random.default_rng(seed))
        merged = md.merge_blocks(matrix, [list(range(len(rows)))], [list(range(len(cols)))])
        assert merged[0, 0] == sum(rows)

    @given(pair=marginal_pair())
    @settings(max_examples=40, deadline=None)
    def test_expected_matrix_has_matching_marginals(self, pair):
        rows, cols, _ = pair
        expected = md.expected_matrix(rows, cols)
        assert np.allclose(expected.sum(axis=1), rows)
        assert np.allclose(expected.sum(axis=0), cols)
