"""Property tests: the vectorized row-cut kernel equals the loop version.

Algorithm 1's exchange superstep and the external-memory distribution pass
now cut blocks with the bulk NumPy kernel
:func:`repro.core.permutation.cut_rows`.  These tests pin its equivalence
to the straightforward per-piece Python loop on random communication
matrices, so the vectorization can never drift from the paper's
formulation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.permutation import cut_rows
from repro.util.errors import ValidationError


def loop_cut(values, counts):
    """Reference implementation: per-piece Python slicing."""
    pieces = []
    start = 0
    for count in counts:
        pieces.append(values[start:start + count])
        start += count
    return pieces


@st.composite
def row_and_values(draw):
    counts = draw(st.lists(st.integers(min_value=0, max_value=25),
                           min_size=1, max_size=12))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    values = rng.integers(-1000, 1000, size=int(sum(counts)))
    return counts, values


class TestCutRows:
    @given(data=row_and_values())
    @settings(max_examples=150, deadline=None)
    def test_matches_loop_version(self, data):
        counts, values = data
        vectorized = cut_rows(values, counts)
        reference = loop_cut(values, counts)
        assert len(vectorized) == len(reference)
        for vec, ref in zip(vectorized, reference):
            assert np.array_equal(vec, ref)

    @given(data=row_and_values())
    @settings(max_examples=100, deadline=None)
    def test_pieces_reassemble_to_input(self, data):
        counts, values = data
        assert np.array_equal(np.concatenate(cut_rows(values, counts)), values)

    def test_whole_random_matrix(self):
        # Every row of a random communication matrix cuts its (shuffled)
        # source block exactly as the loop formulation does.
        rng = np.random.default_rng(7)
        from repro.core.commmatrix import sample_matrix
        rows = cols = np.full(6, 40, dtype=np.int64)
        matrix = sample_matrix(rows, cols, rng, strategy="batched")
        for i in range(rows.size):
            block = rng.integers(0, 100, size=int(rows[i]))
            for vec, ref in zip(cut_rows(block, matrix[i]), loop_cut(block, matrix[i])):
                assert np.array_equal(vec, ref)

    def test_count_sum_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            cut_rows(np.arange(5), [2, 2])

    def test_empty_counts_require_empty_values(self):
        assert cut_rows(np.empty(0, dtype=np.int64), []) == []
        with pytest.raises(ValidationError):
            cut_rows(np.arange(5), [])

    def test_views_not_copies(self):
        values = np.arange(10)
        piece = cut_rows(values, [4, 6])[1]
        assert piece.base is values
