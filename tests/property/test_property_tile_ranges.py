"""Property tests for Algorithm 6's deterministic tile layout.

``final_tile_ranges`` is the shared map every processor recomputes locally
to know which tile each rank ends up with; the redistribution step is only
correct if those tiles *exactly* partition the ``p x p'`` grid -- including
for non-power-of-two processor counts, where the alternating halving
produces unequal tiles.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.parallel_matrix import final_tile_ranges


@st.composite
def tile_instance(draw):
    n_procs = draw(st.integers(min_value=1, max_value=24))
    n_rows = n_procs  # one matrix row per processor, as Algorithm 6 requires
    n_cols = draw(st.integers(min_value=1, max_value=31))
    return n_procs, n_rows, n_cols


class TestFinalTileRanges:
    @given(instance=tile_instance())
    @settings(max_examples=200, deadline=None)
    def test_tiles_exactly_partition_the_grid(self, instance):
        n_procs, n_rows, n_cols = instance
        tiles = final_tile_ranges(n_procs, n_rows, n_cols)
        assert len(tiles) == n_procs
        coverage = np.zeros((n_rows, n_cols), dtype=np.int64)
        for row_lo, row_hi, col_lo, col_hi in tiles:
            assert 0 <= row_lo <= row_hi <= n_rows
            assert 0 <= col_lo <= col_hi <= n_cols
            coverage[row_lo:row_hi, col_lo:col_hi] += 1
        # every cell covered exactly once: no gaps, no overlaps
        assert np.all(coverage == 1)

    @given(instance=tile_instance())
    @settings(max_examples=100, deadline=None)
    def test_redistribution_pieces_tile_each_row(self, instance):
        """The pieces rank i receives in step 4 cover its row exactly once.

        A matrix row may be split across several owners' column ranges
        (alternating splits make that the common case for p > 2); the
        redistribution is correct iff, for every row, those column ranges
        are disjoint and their union is [0, n_cols).
        """
        n_procs, n_rows, n_cols = instance
        tiles = final_tile_ranges(n_procs, n_rows, n_cols)
        for row in range(n_rows):
            pieces = sorted(
                (col_lo, col_hi)
                for row_lo, row_hi, col_lo, col_hi in tiles
                if row_lo <= row < row_hi
            )
            cursor = 0
            for col_lo, col_hi in pieces:
                assert col_lo == cursor
                cursor = col_hi
            assert cursor == n_cols

    def test_single_processor_owns_everything(self):
        assert final_tile_ranges(1, 1, 9) == [(0, 1, 0, 9)]
