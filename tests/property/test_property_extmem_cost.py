"""Property-based tests for the external-memory layer and the cost model."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.extmem.blockstore import CachedBlockStore, MemoryBlockStore
from repro.extmem.permutation import external_random_permutation
from repro.pro.cost import MachineParameters, SuperstepCost
from repro.bench.scaling import ORIGIN_SCALING_MODEL


class TestExternalPermutationProperties:
    @given(
        n_items=st.integers(min_value=0, max_value=300),
        block_size=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_pass_preserves_multiset_and_layout(self, n_items, block_size, seed):
        source = MemoryBlockStore()
        source.load_vector(np.arange(n_items), block_size=block_size)
        input_sizes = [source._read(i).size for i in source.block_ids()]
        source.io.reset()
        target = MemoryBlockStore()
        result = external_random_permutation(source, target, seed=seed)
        out = target.dump_vector()
        assert sorted(out.astype(np.int64).tolist()) == list(range(n_items))
        assert [target._read(i).size for i in target.block_ids()] == input_sizes
        assert result.n_items == n_items

    @given(
        n_blocks=st.integers(min_value=1, max_value=12),
        block_size=st.integers(min_value=1, max_value=40),
        capacity=st.integers(min_value=1, max_value=6),
        accesses=st.lists(st.integers(min_value=0, max_value=11), max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_cache_counters_are_consistent(self, n_blocks, block_size, capacity, accesses):
        backing = MemoryBlockStore()
        backing.load_vector(np.arange(n_blocks * block_size), block_size=block_size)
        backing.io.reset()
        cached = CachedBlockStore(backing, capacity_blocks=capacity)
        for access in accesses:
            cached.read_block(access % n_blocks)
        assert cached.hits + cached.misses == len(accesses)
        assert backing.io.blocks_read == cached.misses
        assert 0.0 <= cached.miss_rate <= 1.0


class TestCostModelProperties:
    @given(
        compute=st.integers(min_value=0, max_value=10**6),
        sent=st.integers(min_value=0, max_value=10**6),
        received=st.integers(min_value=0, max_value=10**6),
        messages=st.integers(min_value=0, max_value=1000),
        variates=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=80, deadline=None)
    def test_superstep_time_is_nonnegative_and_monotone(self, compute, sent, received, messages, variates):
        params = MachineParameters()
        step = SuperstepCost(
            compute_ops=compute, words_sent=sent, words_received=received,
            messages_sent=messages, messages_received=messages, random_variates=variates,
        )
        base = params.superstep_time(step)
        assert base >= 0
        bigger = SuperstepCost(
            compute_ops=compute + 1, words_sent=sent, words_received=received,
            messages_sent=messages, messages_received=messages, random_variates=variates,
        )
        assert params.superstep_time(bigger) >= base

    @given(
        n_items=st.integers(min_value=10_000, max_value=10**9),
        p=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=80, deadline=None)
    def test_scaling_model_bounds(self, n_items, p):
        model = ORIGIN_SCALING_MODEL
        sequential = model.sequential_time(n_items)
        parallel = model.parallel_time(n_items, p)
        assert parallel > 0
        # The parallel time can never beat a perfect p-fold split of the two
        # local shuffles alone (a lower bound of the model).
        assert parallel >= 2.0 * (n_items / p) * model.seconds_per_item_shuffle - 1e-9
        # And speed-up can never exceed p by construction of the model terms.
        if p >= 1:
            assert sequential / parallel <= max(p, 1) + 1e-9
