"""Property-based tests for the communicator collectives.

The collectives are built from point-to-point messages with tree schedules;
these tests check, over random machine sizes, roots and payload shapes, that
the results agree with the obvious sequential specification.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.pro.communicator import payload_words
from repro.pro.machine import PROMachine


def run(n_procs, program):
    return PROMachine(n_procs, seed=7).run(program).results


class TestCollectiveSemantics:
    @given(p=st.integers(min_value=1, max_value=9), root=st.integers(min_value=0, max_value=8),
           payload=st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_bcast_delivers_roots_value(self, p, root, payload):
        root = root % p

        def program(ctx):
            value = payload if ctx.rank == root else None
            return ctx.comm.bcast(value, root=root)

        assert run(p, program) == [payload] * p

    @given(p=st.integers(min_value=1, max_value=9), root=st.integers(min_value=0, max_value=8),
           values=st.lists(st.integers(min_value=-50, max_value=50), min_size=9, max_size=9))
    @settings(max_examples=30, deadline=None)
    def test_reduce_equals_python_sum(self, p, root, values):
        root = root % p
        local_values = values[:p]

        def program(ctx):
            return ctx.comm.reduce(local_values[ctx.rank], root=root)

        results = run(p, program)
        assert results[root] == sum(local_values)
        assert all(r is None for i, r in enumerate(results) if i != root)

    @given(p=st.integers(min_value=1, max_value=9),
           values=st.lists(st.integers(min_value=-50, max_value=50), min_size=9, max_size=9))
    @settings(max_examples=30, deadline=None)
    def test_allgather_collects_in_rank_order(self, p, values):
        local_values = values[:p]

        def program(ctx):
            return ctx.comm.allgather(local_values[ctx.rank])

        assert run(p, program) == [local_values] * p

    @given(p=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_alltoall_transposes(self, p):
        def program(ctx):
            return ctx.comm.alltoall([(ctx.rank, dest) for dest in range(ctx.n_procs)])

        results = run(p, program)
        for receiver in range(p):
            assert results[receiver] == [(src, receiver) for src in range(p)]

    @given(p=st.integers(min_value=1, max_value=8),
           values=st.lists(st.integers(min_value=0, max_value=20), min_size=8, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_scan_matches_cumulative_sum(self, p, values):
        local_values = values[:p]

        def program(ctx):
            return ctx.comm.scan(local_values[ctx.rank])

        expected = np.cumsum(local_values).tolist()
        assert run(p, program) == expected


class TestPayloadWordsProperties:
    @given(shape=st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_array_words_equal_size(self, shape):
        assert payload_words(np.zeros(shape)) == shape

    @given(items=st.lists(st.integers(), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_list_words_equal_length(self, items):
        assert payload_words(items) == len(items)
