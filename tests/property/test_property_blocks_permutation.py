"""Property-based tests for block distributions and the end-to-end permutation."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.blocks import BlockDistribution
from repro.core.permutation import permute_distributed, random_permutation
from repro.util.hashing import lehmer_rank, lehmer_unrank, permutation_fingerprint


class TestBlockDistributionProperties:
    @given(sizes=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_offsets_are_prefix_sums(self, sizes):
        dist = BlockDistribution(sizes)
        assert dist.offsets[0] == 0
        assert dist.offsets[-1] == sum(sizes)
        assert np.all(np.diff(dist.offsets) == np.asarray(sizes))

    @given(sizes=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=10).filter(lambda s: sum(s) > 0))
    @settings(max_examples=100, deadline=None)
    def test_owner_and_local_index_consistent(self, sizes):
        dist = BlockDistribution(sizes)
        for g in range(dist.total):
            block, offset = dist.local_index(g)
            assert 0 <= offset < sizes[block]
            assert dist.global_index(block, offset) == g

    @given(sizes=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_split_concatenate_roundtrip(self, sizes):
        dist = BlockDistribution(sizes)
        data = np.arange(dist.total) * 3
        assert np.array_equal(dist.concatenate(dist.split(data)), data)

    @given(n=st.integers(min_value=0, max_value=200), p=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_balanced_blocks_differ_by_at_most_one(self, n, p):
        dist = BlockDistribution.balanced(n, p)
        assert dist.total == n
        assert dist.sizes.max() - dist.sizes.min() <= 1


class TestLehmerProperties:
    @given(rank=st.integers(min_value=0, max_value=719), n=st.just(6))
    @settings(max_examples=100, deadline=None)
    def test_rank_unrank_roundtrip(self, rank, n):
        assert lehmer_rank(lehmer_unrank(rank, n)) == rank

    @given(perm=st.permutations(list(range(7))))
    @settings(max_examples=100, deadline=None)
    def test_fingerprint_detects_any_reordering(self, perm):
        identity = list(range(7))
        if list(perm) == identity:
            assert permutation_fingerprint(perm) == permutation_fingerprint(identity)
        else:
            assert permutation_fingerprint(perm) != permutation_fingerprint(identity)


class TestPermutationProperties:
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=6),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        algorithm=st.sampled_from(["root", "alg5", "alg6"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_distributed_permutation_invariants(self, sizes, seed, algorithm):
        """Output blocks keep the sizes, the multiset of items and nothing else."""
        dist = BlockDistribution(sizes)
        data = np.arange(dist.total)
        blocks = [b.copy() for b in dist.split(data)]
        out_blocks, run = permute_distributed(blocks, seed=seed, matrix_algorithm=algorithm)
        assert [len(b) for b in out_blocks] == list(sizes)
        merged = np.concatenate([np.asarray(b) for b in out_blocks]) if dist.total else np.empty(0)
        assert sorted(merged.tolist()) == list(range(dist.total))
        assert run.n_procs == len(sizes)

    @given(
        n=st.integers(min_value=0, max_value=60),
        p=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_in_memory_permutation_is_a_permutation(self, n, p, seed):
        out = random_permutation(np.arange(n), n_procs=p, seed=seed)
        assert sorted(out.tolist()) == list(range(n))
