"""Property-based tests: trace fingerprinting is canonical.

The explorer's coverage metric is the canonical fingerprint of a run's
fabric-op sequence (the Foata normal form of its Mazurkiewicz trace under
:func:`repro.pro.explore.ops_conflict`).  The whole point of the canonical
form is captured by two properties over arbitrary op sequences:

* **commutation invariance** -- swapping adjacent *independent* ops (any
  number of times, anywhere) never changes the fingerprint;
* **conflict sensitivity** -- swapping two adjacent *conflicting* (and
  unequal) ops always changes it.

Together these say the fingerprint identifies exactly the commutation
class: scheduler noise collapses, behavioural differences never do.
"""

from hypothesis import given, settings, strategies as st

from repro.pro.explore import (
    canonical_fingerprint,
    foata_normal_form,
    interleaving_fingerprint,
    ops_conflict,
)

RANKS = 4


def _ops():
    kinds = st.sampled_from(["put", "get", "barrier"])
    rank = st.integers(min_value=0, max_value=RANKS - 1)

    def build(kind, a, b):
        if kind == "barrier":
            return ("barrier", a, a)
        return (kind, a, b)

    return st.builds(build, kinds, rank, rank)


def _op_sequences(min_size=0, max_size=10):
    return st.lists(_ops(), min_size=min_size, max_size=max_size)


def _independent_shuffle(ops, choices):
    """Apply adjacent swaps of independent ops, driven by ``choices``."""
    ops = list(ops)
    for raw in choices:
        if len(ops) < 2:
            break
        i = raw % (len(ops) - 1)
        if not ops_conflict(ops[i], ops[i + 1]):
            ops[i], ops[i + 1] = ops[i + 1], ops[i]
    return ops


class TestCommutationInvariance:
    @given(ops=_op_sequences(),
           choices=st.lists(st.integers(min_value=0, max_value=10 ** 6),
                            max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_independent_swaps_preserve_fingerprint(self, ops, choices):
        shuffled = _independent_shuffle(ops, choices)
        assert canonical_fingerprint(shuffled) == canonical_fingerprint(ops)
        assert foata_normal_form(shuffled) == foata_normal_form(ops)

    @given(ops=_op_sequences())
    @settings(max_examples=100, deadline=None)
    def test_normal_form_preserves_the_multiset_of_ops(self, ops):
        layered = [op for layer in foata_normal_form(ops) for op in layer]
        assert sorted(layered) == sorted(ops)

    @given(ops=_op_sequences())
    @settings(max_examples=100, deadline=None)
    def test_layers_only_hold_pairwise_independent_ops(self, ops):
        for layer in foata_normal_form(ops):
            for i, a in enumerate(layer):
                for b in layer[i + 1:]:
                    assert not ops_conflict(a, b), (a, b)


class TestConflictSensitivity:
    @given(ops=_op_sequences(min_size=2),
           position=st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=200, deadline=None)
    def test_conflicting_swap_changes_fingerprint(self, ops, position):
        i = position % (len(ops) - 1)
        a, b = ops[i], ops[i + 1]
        if a == b or not ops_conflict(a, b):
            return  # only unequal conflicting neighbours are informative
        swapped = list(ops)
        swapped[i], swapped[i + 1] = b, a
        assert canonical_fingerprint(swapped) != canonical_fingerprint(ops)

    @given(ops=_op_sequences())
    @settings(max_examples=50, deadline=None)
    def test_outcome_is_folded_into_both_fingerprints(self, ops):
        ok = ("ok", "digest-a")
        other = ("ok", "digest-b")
        assert canonical_fingerprint(ops, ok) != canonical_fingerprint(ops, other)
        assert interleaving_fingerprint(ops, ok) != interleaving_fingerprint(ops, other)


class TestConflictRelationShape:
    @given(a=_ops(), b=_ops())
    @settings(max_examples=200, deadline=None)
    def test_conflict_is_symmetric(self, a, b):
        assert ops_conflict(a, b) == ops_conflict(b, a)

    @given(a=_ops())
    @settings(max_examples=50, deadline=None)
    def test_conflict_is_reflexive(self, a):
        assert ops_conflict(a, a)
