"""Unit tests for sequential communication-matrix sampling (Algorithms 3-4)."""

import numpy as np
import pytest

from repro.core import commmatrix as cm
from repro.rng.counting import CountingRNG
from repro.core.hypergeometric import SampleRecorder
from repro.util.errors import ValidationError


class TestValidityHelpers:
    def test_is_valid_accepts_good_matrix(self):
        matrix = np.array([[1, 2], [1, 1]])
        assert cm.is_valid_communication_matrix(matrix, [3, 2], [2, 3])

    def test_is_valid_rejects_wrong_marginals(self):
        matrix = np.array([[2, 1], [1, 1]])
        assert not cm.is_valid_communication_matrix(matrix, [3, 2], [2, 3])

    def test_is_valid_rejects_wrong_shape(self):
        assert not cm.is_valid_communication_matrix(np.zeros((2, 2), dtype=int), [3, 2, 1], [2, 3, 1])

    def test_is_valid_rejects_negative(self):
        matrix = np.array([[4, -1], [-1, 4]])
        assert not cm.is_valid_communication_matrix(matrix, [3, 3], [3, 3])

    def test_is_valid_rejects_floats(self):
        matrix = np.array([[1.0, 2.0], [1.0, 1.0]])
        assert not cm.is_valid_communication_matrix(matrix, [3, 2], [2, 3])

    def test_check_matrix_returns_int64(self):
        out = cm.check_matrix([[1, 2], [1, 1]], [3, 2], [2, 3])
        assert out.dtype == np.int64

    def test_check_matrix_accepts_integral_floats(self):
        out = cm.check_matrix(np.array([[1.0, 2.0], [1.0, 1.0]]), [3, 2], [2, 3])
        assert out.dtype == np.int64

    def test_check_matrix_rejects_fractional(self):
        with pytest.raises(ValidationError):
            cm.check_matrix(np.array([[1.5, 1.5], [1.0, 1.0]]), [3, 2], [2, 3])

    def test_check_matrix_rejects_bad_row_sums(self):
        with pytest.raises(ValidationError, match="equation"):
            cm.check_matrix([[2, 0], [0, 3]], [3, 2], [2, 3])

    def test_check_matrix_rejects_negative(self):
        with pytest.raises(ValidationError):
            cm.check_matrix([[4, -1], [-2, 4]], [3, 2], [2, 3])

    def test_marginal_total_mismatch(self):
        with pytest.raises(ValidationError):
            cm.sample_matrix([1, 2], [4])


class TestSequentialSampler:
    @pytest.mark.parametrize("strategy", ["sequential", "recursive"])
    def test_marginals_always_respected(self, strategy, rng):
        rows, cols = [5, 0, 7, 3], [4, 4, 4, 3]
        for _ in range(25):
            matrix = cm.sample_matrix(rows, cols, rng, strategy=strategy)
            assert cm.is_valid_communication_matrix(matrix, rows, cols)

    def test_rectangular_matrices(self, rng):
        rows, cols = [4, 4, 4], [6, 6]
        matrix = cm.sample_matrix(rows, cols, rng)
        assert matrix.shape == (3, 2)
        assert cm.is_valid_communication_matrix(matrix, rows, cols)

    def test_single_row(self, rng):
        matrix = cm.sample_matrix([10], [3, 3, 4], rng)
        assert matrix.tolist() == [[3, 3, 4]]

    def test_single_column(self, rng):
        matrix = cm.sample_matrix([3, 3, 4], [10], rng)
        assert matrix.ravel().tolist() == [3, 3, 4]

    def test_zero_total(self, rng):
        matrix = cm.sample_matrix([0, 0], [0, 0], rng)
        assert matrix.tolist() == [[0, 0], [0, 0]]

    def test_empty_dimensions(self, rng):
        assert cm.sample_matrix_sequential([], [], rng).shape == (0, 0)

    def test_deterministic_when_forced(self, rng):
        # Column capacities force everything into column 1.
        matrix = cm.sample_matrix([2, 3], [0, 5], rng)
        assert matrix.tolist() == [[0, 2], [0, 3]]

    def test_reproducibility(self):
        a = cm.sample_matrix([5, 5, 5], [5, 5, 5], np.random.default_rng(4))
        b = cm.sample_matrix([5, 5, 5], [5, 5, 5], np.random.default_rng(4))
        assert np.array_equal(a, b)

    def test_unknown_strategy(self):
        with pytest.raises(ValidationError):
            cm.sample_matrix([2, 2], [2, 2], strategy="parallel")

    def test_recursive_leaf_rows_parameter(self, rng):
        matrix = cm.sample_matrix_recursive([3, 3, 3, 3], [4, 4, 4], rng, leaf_rows=2)
        assert cm.is_valid_communication_matrix(matrix, [3, 3, 3, 3], [4, 4, 4])

    def test_number_of_h_calls_is_quadratic(self):
        """Proposition 7: O(p * p') calls to h(,)."""
        rng = CountingRNG(0)
        p = 8
        rows = cols = [100] * p
        with SampleRecorder() as rec:
            cm.sample_matrix_sequential(rows, cols, rng)
        assert rec.n_calls == p * p

    def test_expectation_matches_outer_product(self):
        rng = np.random.default_rng(6)
        rows, cols = [20, 10], [15, 15]
        samples = np.array([cm.sample_matrix(rows, cols, rng) for _ in range(2000)], dtype=float)
        expected = np.outer(rows, cols) / 30
        assert np.allclose(samples.mean(axis=0), expected, atol=0.35)
