"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.workloads.generators import (
    balanced_block_sizes,
    integer_vector,
    load_balancing_scenario,
    matrix_marginals,
    record_vector,
    skewed_block_sizes,
)


class TestIntegerVector:
    def test_distinct_is_arange(self):
        assert np.array_equal(integer_vector(5), np.arange(5))

    def test_dtype_respected(self):
        assert integer_vector(5, dtype=np.int32).dtype == np.int32

    def test_non_distinct_reproducible(self):
        a = integer_vector(100, distinct=False, seed=1)
        b = integer_vector(100, distinct=False, seed=1)
        assert np.array_equal(a, b)

    def test_zero_items(self):
        assert integer_vector(0).size == 0


class TestRecordVector:
    def test_fields_and_shape(self):
        records = record_vector(10, payload_words=4, seed=0)
        assert records.shape == (10,)
        assert records["payload"].shape == (10, 4)
        assert np.array_equal(records["key"], np.arange(10))

    def test_payload_words_positive(self):
        with pytest.raises(ValidationError):
            record_vector(10, payload_words=0)


class TestBlockSizes:
    def test_balanced(self):
        assert balanced_block_sizes(10, 4).tolist() == [3, 3, 2, 2]

    def test_skewed_totals(self):
        sizes = skewed_block_sizes(1000, 8, skew=4.0)
        assert sizes.sum() == 1000
        assert sizes[0] > sizes[-1]

    def test_skew_ratio_roughly_respected(self):
        sizes = skewed_block_sizes(10000, 4, skew=5.0)
        assert sizes[0] / max(sizes[-1], 1) > 2.0

    def test_skew_one_is_flat(self):
        sizes = skewed_block_sizes(100, 4, skew=1.0)
        assert max(sizes) - min(sizes) <= 1

    def test_skew_below_one_rejected(self):
        with pytest.raises(ValidationError):
            skewed_block_sizes(100, 4, skew=0.5)


class TestMatrixMarginals:
    def test_balanced(self):
        rows, cols = matrix_marginals(4, 10, layout="balanced")
        assert rows.tolist() == [10] * 4
        assert cols.tolist() == [10] * 4

    def test_uneven_totals_match(self):
        rows, cols = matrix_marginals(5, 20, layout="uneven", seed=1)
        assert rows.sum() == cols.sum() == 100

    def test_gather_concentrates_targets(self):
        rows, cols = matrix_marginals(6, 10, layout="gather")
        assert rows.sum() == cols.sum() == 60
        assert np.count_nonzero(cols) == 3

    def test_unknown_layout(self):
        with pytest.raises(ValidationError):
            matrix_marginals(4, 10, layout="spiral")


class TestLoadBalancingScenario:
    def test_shapes_and_totals(self):
        blocks, target = load_balancing_scenario(200, 4, skew=3.0, seed=0)
        assert len(blocks) == 4
        assert sum(len(b) for b in blocks) == 200
        assert target.sum() == 200
        assert max(len(b) for b in blocks) > min(len(b) for b in blocks)

    def test_costs_are_positive(self):
        blocks, _ = load_balancing_scenario(50, 2, seed=1)
        assert all((b > 0).all() for b in blocks if len(b))

    def test_reproducible(self):
        a, _ = load_balancing_scenario(100, 4, seed=3)
        b, _ = load_balancing_scenario(100, 4, seed=3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
