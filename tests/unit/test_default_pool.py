"""Tests for the process-wide default pool cache (warm-by-default drivers).

Contract (see :mod:`repro.pro.backends.pool`): driver calls with
``backend="process"`` transparently reuse a keyed standing worker fleet
(pid-stable across calls), different configurations get different fleets,
a poisoned fleet is evicted and respawned, ``clear_default_pools()`` and
the interpreter-exit hook release everything leak-free, and warm calls
stay bit-identical to the cold path for a fixed seed.  Bulk dispatch
arguments are encoded once per *run*, not once per rank (multi-consumer
segments), pinned here through the transport counters.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.parallel_matrix import sample_matrix_parallel
from repro.core.permutation import random_permutation
from repro.pro.backends.pool import (
    clear_default_pools,
    default_pools,
    get_default_pool,
)
from repro.pro.backends.transport import resolve_transport
from repro.pro.machine import resolve_machine
from repro.util.errors import BackendError
from repro.util.timeouts import scale_timeout

pytestmark = pytest.mark.subprocess  # every test may spawn a worker fleet


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts and ends with an empty default pool cache."""
    clear_default_pools()
    yield
    clear_default_pools()


def _raise_program(ctx):
    raise RuntimeError("boom")


def _slow_program(ctx):
    import time

    time.sleep(0.4)
    return ctx.rank


def _default_pool_pids():
    pools = default_pools()
    assert len(pools) == 1, f"expected exactly one cached pool, got {pools}"
    return next(iter(pools.values())).worker_pids()


class TestWarmDrivers:
    def test_driver_calls_reuse_one_fleet_pid_stable(self):
        out1 = random_permutation(np.arange(4000), n_procs=3,
                                  backend="process", seed=7)
        pids1 = _default_pool_pids()
        out2 = random_permutation(np.arange(4000), n_procs=3,
                                  backend="process", seed=7)
        pids2 = _default_pool_pids()
        assert pids1 == pids2  # the standing fleet survived both calls
        assert os.getpid() not in pids1
        assert np.array_equal(out1, out2)  # same seed, same machine build

    def test_matrix_driver_shares_the_cache(self):
        sample_matrix_parallel([8, 8, 8], backend="process", seed=1)
        pids1 = _default_pool_pids()
        sample_matrix_parallel([9, 9, 9], backend="process", seed=2)
        assert _default_pool_pids() == pids1  # same (p, transport) key

    def test_persistent_false_forces_cold_path(self):
        random_permutation(np.arange(1000), n_procs=2, backend="process",
                           seed=0, persistent=False)
        assert default_pools() == {}  # nothing cached: the call was cold

    def test_explicit_persistent_true_uses_the_shared_fleet(self):
        random_permutation(np.arange(1000), n_procs=2, backend="process",
                           seed=0, persistent=True)
        pids = _default_pool_pids()
        random_permutation(np.arange(1000), n_procs=2, backend="process",
                           seed=0)  # implicit warm default: same fleet
        assert _default_pool_pids() == pids

    def test_warm_calls_bit_identical_to_cold_k_call_sequence(self):
        # k warm driver calls == k cold driver calls, call by call: the
        # standing fleet changes where ranks live, never what they draw.
        for seed in (11, 12, 13):
            warm = random_permutation(np.arange(3000), n_procs=4,
                                      backend="process", seed=seed)
            cold = random_permutation(np.arange(3000), n_procs=4,
                                      backend="process", seed=seed,
                                      persistent=False)
            thread = random_permutation(np.arange(3000), n_procs=4,
                                        backend="thread", seed=seed)
            assert np.array_equal(warm, cold), seed
            assert np.array_equal(warm, thread), seed

    def test_args_encoded_once_per_run_not_per_rank(self):
        # The pool's dispatch writes one run's bulk arguments into one
        # multi-consumer segment: p ranks, but exactly one shared encode
        # and one multi segment per driver call.
        random_permutation(np.arange(50_000), n_procs=4, backend="process",
                           seed=0)
        stats = next(iter(default_pools().values())).fabric.transport.stats
        first = stats.snapshot()
        assert first["shared_encode_calls"] == 1
        assert first["multi_segments_created"] == 1
        random_permutation(np.arange(50_000), n_procs=4, backend="process",
                           seed=0)
        second = stats.snapshot()
        assert second["shared_encode_calls"] == first["shared_encode_calls"] + 1
        assert (second["multi_segments_created"]
                == first["multi_segments_created"] + 1)


class TestKeyedIsolation:
    def test_different_rank_counts_get_different_fleets(self):
        random_permutation(np.arange(1000), n_procs=2, backend="process", seed=0)
        random_permutation(np.arange(1000), n_procs=3, backend="process", seed=0)
        pools = default_pools()
        assert len(pools) == 2
        sizes = sorted(pool.n_procs for pool in pools.values())
        assert sizes == [2, 3]

    def test_different_transports_get_different_fleets(self):
        random_permutation(np.arange(1000), n_procs=2, backend="process",
                           transport="sharedmem", seed=0)
        random_permutation(np.arange(1000), n_procs=2, backend="process",
                           transport="pickle", seed=0)
        pools = default_pools()
        assert len(pools) == 2
        names = sorted(pool.fabric.transport.name for pool in pools.values())
        assert names == ["pickle", "sharedmem"]

    def test_lru_cap_closes_coldest_fleet(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_POOL_CAP", "2")
        transport = resolve_transport("sharedmem")
        pools = [get_default_pool(p, timeout=scale_timeout(20),
                                  transport=transport) for p in (1, 2, 3)]
        assert pools[0].closed  # evicted as least recently used
        assert not pools[1].closed and not pools[2].closed
        assert len(default_pools()) == 2

    def test_unkeyable_transport_declines_the_cache(self):
        class DuckTransport:
            def encode(self, payload, **kw):
                return payload

            def decode(self, record, **kw):
                return record

        assert get_default_pool(2, transport=DuckTransport()) is None
        assert default_pools() == {}


class TestPoisonEviction:
    def test_poisoned_fleet_is_healed_in_place(self):
        # Built exactly as the drivers build theirs, so the poisoned
        # fleet lands under the same cache key the next driver call uses.
        machine = resolve_machine(2, backend="process", seed=0)
        with pytest.raises(BackendError):
            machine.run(_raise_program)
        poisoned = next(iter(default_pools().values()))
        assert poisoned.poisoned
        poisoned_pids = poisoned.worker_pids()
        # The next driver call heals the cache *in place*: the standing
        # fleet object survives under the same key, the failed ranks are
        # respawned (here every rank raised, so every pid changes) and
        # the run succeeds as if the fleet had never been poisoned.
        out = random_permutation(np.arange(1000), n_procs=2,
                                 backend="process", seed=5)
        fresh = next(iter(default_pools().values()))
        assert fresh is poisoned  # healed, not evicted
        assert not fresh.poisoned and not fresh.closed
        assert set(fresh.worker_pids()).isdisjoint(poisoned_pids)
        assert sorted(out.tolist()) == list(range(1000))

    def test_clear_default_pools_is_idempotent_and_respawns(self):
        random_permutation(np.arange(500), n_procs=2, backend="process", seed=0)
        pids = _default_pool_pids()
        clear_default_pools()
        clear_default_pools()
        assert default_pools() == {}
        random_permutation(np.arange(500), n_procs=2, backend="process", seed=0)
        assert set(_default_pool_pids()).isdisjoint(pids)


class TestSharing:
    def test_concurrent_threads_share_the_fleet_safely(self):
        # The default cache hands two threads the same fleet; WorkerPool
        # serialises the runs internally, so both calls must succeed with
        # correct (seed-exact) results instead of corrupting each other's
        # epochs on the shared result queue.
        import threading

        results: dict = {}
        errors: list = []

        def call(tid):
            try:
                results[tid] = random_permutation(
                    np.arange(5000), n_procs=2, backend="process",
                    seed=100 + tid)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append((tid, exc))

        random_permutation(np.arange(100), n_procs=2, backend="process",
                           seed=0)  # warm the fleet first
        threads = [threading.Thread(target=call, args=(tid,))
                   for tid in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=scale_timeout(60))
        assert not errors, errors
        assert len(default_pools()) == 1
        for tid, out in results.items():
            cold = random_permutation(np.arange(5000), n_procs=2,
                                      backend="process", seed=100 + tid,
                                      persistent=False)
            assert np.array_equal(out, cold), tid

    def test_close_waits_for_an_inflight_run(self):
        # Eviction (LRU overflow, poison healing, clear_default_pools)
        # closes fleets that another thread may still be running on;
        # close() must serialise behind the in-flight run instead of
        # tearing the fabric down underneath it.
        import threading
        import time

        from repro.pro.machine import PROMachine

        machine = PROMachine(2, backend="process", persistent=True,
                             timeout=scale_timeout(20))
        outcome: dict = {}

        def runner():
            try:
                outcome["results"] = machine.run(_slow_program).results
            except Exception as exc:  # pragma: no cover - the failure mode
                outcome["error"] = exc

        try:
            machine.run(_slow_program)  # spawn the fleet before timing
            thread = threading.Thread(target=runner)
            thread.start()
            time.sleep(0.15)  # let the run dispatch and begin computing
            machine.backend._pools[2].close()  # what eviction would do
            thread.join(timeout=scale_timeout(30))
            assert "error" not in outcome, outcome["error"]
            assert outcome["results"] == [0, 1]
        finally:
            machine.close()

    def test_forked_child_does_not_reuse_the_parents_fleet(self):
        # A forked child inherits the cache and its pools but must not
        # drive (or at exit try to reap) the parent's worker processes:
        # it spawns its own fleet, and the parent's stays healthy.
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        random_permutation(np.arange(2000), n_procs=2, backend="process",
                           seed=1)
        parent_pids = set(_default_pool_pids())

        def child_main(conn):
            try:
                out = random_permutation(np.arange(2000), n_procs=2,
                                         backend="process", seed=1)
                child_pids = set(_default_pool_pids())
                conn.send(("ok", sorted(child_pids), out.tolist()))
            except Exception as exc:  # pragma: no cover - the failure mode
                conn.send(("error", repr(exc), None))

        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        child = ctx.Process(target=child_main, args=(child_conn,))
        child.start()
        status, payload, child_out = parent_conn.recv()
        child.join(timeout=scale_timeout(60))
        assert status == "ok", payload
        assert child.exitcode == 0  # atexit in the child reaped cleanly
        assert parent_pids.isdisjoint(payload)  # fresh fleet, not the parent's
        # the parent's fleet survived the child's lifecycle untouched
        out = random_permutation(np.arange(2000), n_procs=2,
                                 backend="process", seed=1)
        assert set(_default_pool_pids()) == parent_pids
        assert out.tolist() == child_out  # same seed, same machine build


class TestLifecycleHygiene:
    def test_atexit_teardown_leaks_nothing_under_w_error(self):
        """Warm driver calls left *without* explicit cleanup must be
        reaped by the atexit hook: no resource_tracker warnings, no
        leaked segments (checked in a subprocess because the warnings
        appear at interpreter exit)."""
        script = textwrap.dedent("""
            import numpy as np
            from repro.core.permutation import random_permutation
            from repro.pro.backends.pool import default_pools

            for seed in range(3):
                out = random_permutation(np.arange(20_000), n_procs=3,
                                         backend="process", seed=seed)
                assert out.shape == (20_000,)
            assert len(default_pools()) == 1  # one warm fleet, never closed here
        """)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-W", "error", "-c", script],
            capture_output=True, text=True, env=env,
            timeout=scale_timeout(120),
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr

    def test_clear_default_pools_releases_segments_promptly(self):
        random_permutation(np.arange(30_000), n_procs=2, backend="process",
                           seed=0)
        clear_default_pools()
        leftovers = _shm_segments()
        assert not leftovers, f"segments survived clear_default_pools: {leftovers}"


def _shm_segments():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("pro")}
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()
