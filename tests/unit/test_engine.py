"""Unit tests for the SamplerEngine (method dispatch + batched kernels)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core import commmatrix as cm
from repro.core import hypergeometric as hg
from repro.core import multivariate as mv
from repro.core.engine import VALID_METHODS, SamplerEngine, get_engine
from repro.rng.counting import CountingRNG
from repro.util.errors import ValidationError


class TestEngineConstruction:
    def test_valid_methods(self):
        for method in VALID_METHODS:
            assert SamplerEngine(method).method == method

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError, match="unknown method"):
            SamplerEngine("bogus")

    def test_get_engine_caches_per_method(self):
        assert get_engine("auto") is get_engine("auto")
        assert get_engine("hin") is not get_engine("hrua")

    def test_get_engine_passes_instances_through(self):
        engine = SamplerEngine("hrua")
        assert get_engine(engine) is engine

    def test_get_engine_rejects_unknown(self):
        with pytest.raises(ValidationError):
            get_engine("bogus")


class TestMethodDispatch:
    def test_auto_resolution_threshold(self):
        engine = SamplerEngine("auto")
        assert engine.resolve_method(5) == "hin"
        assert engine.resolve_method(50) == "hrua"

    def test_fixed_methods_resolve_to_themselves(self):
        assert SamplerEngine("hin").resolve_method(10**6) == "hin"
        assert SamplerEngine("numpy").resolve_method(3) == "numpy"

    def test_sample_delegates_to_engine(self):
        # hypergeometric.sample and engine.draw use the same stream the same way.
        a = hg.sample(30, 40, 50, np.random.default_rng(7), method="hrua")
        b = get_engine("hrua").draw(30, 40, 50, np.random.default_rng(7))
        assert a == b

    def test_unknown_method_through_sample(self):
        with pytest.raises(ValidationError, match="unknown method"):
            hg.sample(5, 5, 5, np.random.default_rng(0), method="bogus")

    def test_draw_many_shape(self):
        out = get_engine().draw_many(5, 10, 10, 7, np.random.default_rng(0))
        assert out.shape == (7,)
        assert out.dtype == np.int64


class TestMultivariateBatch:
    def test_single_batch_matches_constraints(self):
        engine = get_engine()
        sizes = np.array([[3, 0, 7, 2, 5]])
        counts = engine.multivariate_batch([9], sizes, np.random.default_rng(0))
        assert counts.shape == (1, 5)
        assert counts.sum() == 9
        assert np.all(counts >= 0)
        assert np.all(counts <= sizes)

    def test_batch_rows_independent_constraints(self):
        engine = get_engine()
        rng = np.random.default_rng(42)
        sizes = rng.integers(0, 20, size=(50, 7))
        draws = np.array([int(rng.integers(0, s.sum() + 1)) for s in sizes])
        counts = engine.multivariate_batch(draws, sizes, rng)
        assert np.array_equal(counts.sum(axis=1), draws)
        assert np.all(counts >= 0)
        assert np.all(counts <= sizes)

    def test_single_class_gets_all_draws(self):
        counts = get_engine().multivariate_batch([4], [[9]], np.random.default_rng(0))
        assert counts.tolist() == [[4]]

    def test_overdraw_rejected(self):
        with pytest.raises(ValidationError):
            get_engine().multivariate_batch([100], [[3, 4]], np.random.default_rng(0))

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValidationError):
            get_engine().multivariate_batch([-1], [[3, 4]], np.random.default_rng(0))
        with pytest.raises(ValidationError):
            get_engine().multivariate_batch([1], [[-3, 4]], np.random.default_rng(0))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValidationError):
            get_engine().multivariate_batch([1], [3, 4], np.random.default_rng(0))

    def test_counting_rng_accepted(self):
        rng = CountingRNG(np.random.default_rng(0))
        counts = get_engine().multivariate_batch([5, 3], [[4, 4], [2, 6]], rng)
        assert counts.sum(axis=1).tolist() == [5, 3]

    def test_marginal_law_matches_univariate_hypergeometric(self):
        # The count of class 0 in MVH(m, (m0, rest)) is h(m, m0, rest).
        engine = get_engine()
        rng = np.random.default_rng(2024)
        sizes = np.tile([4, 16], (4000, 1))
        counts = engine.multivariate_batch(np.full(4000, 5), sizes, rng)[:, 0]
        dist = scipy_stats.hypergeom(20, 4, 5)
        ks = np.arange(0, 5)
        observed = np.array([(counts == k).sum() for k in ks])
        expected = dist.pmf(ks) * 4000
        mask = expected > 5
        chi2 = float(((observed[mask] - expected[mask]) ** 2 / expected[mask]).sum())
        assert scipy_stats.chi2.sf(chi2, int(mask.sum()) - 1) > 1e-4


class TestBatchedMatrix:
    def test_marginals_hold_power_of_two(self):
        rows = cols = np.full(8, 10, dtype=np.int64)
        matrix = get_engine().sample_matrix_batched(rows, cols, np.random.default_rng(0))
        assert cm.is_valid_communication_matrix(matrix, rows, cols)

    @pytest.mark.parametrize("p,pp", [(1, 1), (3, 5), (7, 2), (13, 13)])
    def test_marginals_hold_awkward_sizes(self, p, pp):
        rng = np.random.default_rng(p * 31 + pp)
        rows = rng.integers(0, 30, p)
        total = int(rows.sum())
        cols = np.full(pp, total // pp, dtype=np.int64)
        cols[: total % pp] += 1
        matrix = get_engine().sample_matrix_batched(rows, cols, rng)
        assert cm.is_valid_communication_matrix(matrix, rows, cols)

    def test_mean_matrix_matches_theory(self):
        # E[a_ij] = m_i * m'_j / n under the law of Problem 2.
        rows = np.array([4, 2, 6])
        cols = np.array([5, 3, 4])
        rng = np.random.default_rng(99)
        reps = 3000
        acc = np.zeros((3, 3))
        for _ in range(reps):
            acc += get_engine().sample_matrix_batched(rows, cols, rng)
        expected = np.outer(rows, cols) / rows.sum()
        assert np.abs(acc / reps - expected).max() < 0.12

    def test_strategy_reachable_through_sample_matrix(self):
        matrix = cm.sample_matrix([5, 5], [4, 6], np.random.default_rng(0), strategy="batched")
        assert cm.is_valid_communication_matrix(matrix, [5, 5], [4, 6])

    def test_strategy_reachable_through_multivariate_sample(self):
        counts = mv.sample(6, [3, 4, 5], np.random.default_rng(0), strategy="batched")
        assert counts.sum() == 6

    def test_mismatched_totals_rejected(self):
        with pytest.raises(ValidationError):
            get_engine().sample_matrix_batched([4, 4], [3, 3], np.random.default_rng(0))

    def test_seed_reproducible(self):
        rows = cols = np.full(16, 25, dtype=np.int64)
        a = get_engine().sample_matrix_batched(rows, cols, np.random.default_rng(5))
        b = get_engine().sample_matrix_batched(rows, cols, np.random.default_rng(5))
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("method", ["hin", "hrua"])
    def test_scalar_methods_rejected_by_batched_kernels(self, method):
        # The batched kernels always use numpy's vectorized sampler; a
        # request for a specific scalar sampler must not be silently ignored.
        with pytest.raises(ValidationError, match="batched"):
            cm.sample_matrix([5, 5], [4, 6], np.random.default_rng(0),
                             method=method, strategy="batched")
        with pytest.raises(ValidationError, match="batched"):
            get_engine(method).multivariate_batch([3], [[2, 4]], np.random.default_rng(0))

    def test_counting_rng_charges_vectorized_draws(self):
        rng = CountingRNG(np.random.default_rng(0))
        rows = cols = np.full(8, 20, dtype=np.int64)
        get_engine().sample_matrix_batched(rows, cols, rng)
        # Every nontrivial split consumes one variate; an 8x8 matrix needs
        # far more than the handful of vectorized calls that produce them.
        assert rng.uniforms_drawn > 8
